//! Per-price winner-set schedules (Algorithm 1, lines 1–15) and the exact
//! price PMF of the exponential mechanism.
//!
//! All engines operate on the CSR [`SparseCoverage`] core: the covering
//! problem is materialized once per schedule build — `O(nnz + K)` straight
//! from the bundles, never through a dense `N×K` matrix — and every
//! selector walks compressed rows with cached static totals. See the
//! `mcs_types::coverage` module docs for the bit-exactness contract that
//! makes the sparse and dense paths observationally identical.

use rand::Rng;

use mcs_num::{sample_logits, softmax_from_logits};
use mcs_types::{
    CandidateIndex, CoverageView, Instance, McsError, Price, SparseCoverage, TaskId, WorkerId,
};

use crate::engine::Strategy;
use crate::outcome::AuctionOutcome;

/// Residual coverage below this threshold counts as satisfied.
pub(crate) const COVER_EPS: f64 = 1e-9;

/// Which winner-selection rule fills each price's winner set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionRule {
    /// Algorithm 1's greedy rule: each step picks the worker with the
    /// largest *marginal* coverage `Σ_j min(Q'_j, q_ij)` against the
    /// current residual.
    MarginalCoverage,
    /// The §VII-A baseline: workers are taken in descending order of their
    /// *static* total score `Σ_j q_ij`, ignoring how much of it is still
    /// needed.
    StaticTotal,
}

/// The winner set for every feasible candidate price.
///
/// Winner sets are constant on the interval between two consecutive bidding
/// prices, so the schedule stores one distinct set per non-empty interval
/// and maps each grid price to its interval — this is exactly the
/// compression that makes Algorithm 1's complexity independent of `|P|`
/// (Theorem 5).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceSchedule {
    /// Feasible grid prices, ascending (the suffix of `P` at which the
    /// error-bound constraints are satisfiable).
    prices: Vec<Price>,
    /// `set_of[i]` indexes into `sets` for `prices[i]`.
    set_of: Vec<usize>,
    /// Distinct winner sets, each sorted by worker id.
    sets: Vec<Vec<WorkerId>>,
}

impl PriceSchedule {
    /// Number of feasible candidate prices `|P|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Returns `true` if no price is feasible (never — construction fails
    /// instead).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// The feasible prices, ascending.
    #[inline]
    pub fn prices(&self) -> &[Price] {
        &self.prices
    }

    /// The `idx`-th feasible price.
    #[inline]
    pub fn price(&self, idx: usize) -> Price {
        self.prices[idx]
    }

    /// The winner set at the `idx`-th feasible price.
    #[inline]
    pub fn winners(&self, idx: usize) -> &[WorkerId] {
        &self.sets[self.set_of[idx]]
    }

    /// The total payment `x · |S(x)|` at the `idx`-th feasible price.
    pub fn total_payment(&self, idx: usize) -> Price {
        self.prices[idx] * self.winners(idx).len()
    }

    /// All total payments, aligned with [`PriceSchedule::prices`].
    pub fn total_payments(&self) -> Vec<Price> {
        (0..self.len()).map(|i| self.total_payment(i)).collect()
    }

    /// The outcome at the `idx`-th feasible price — the `(price, winners)`
    /// pair a run would produce if the exponential mechanism drew `idx`.
    ///
    /// Lets callers that hold a shared (e.g. cached) schedule materialize
    /// outcomes without re-running winner determination.
    pub fn outcome(&self, idx: usize) -> AuctionOutcome {
        AuctionOutcome::new(self.price(idx), self.winners(idx).to_vec())
    }

    /// The number of *distinct* winner sets stored.
    #[inline]
    pub fn num_distinct_sets(&self) -> usize {
        self.sets.len()
    }

    /// The smallest total payment over all feasible prices, or `None` for
    /// an empty schedule.
    ///
    /// Construction never yields an empty schedule today; making the empty
    /// case explicit (rather than a silent [`Price::ZERO`]) keeps callers
    /// honest if future internal changes ever produce one — a zero minimum
    /// reads as "the platform pays nothing", which is the wrong conclusion
    /// to draw from "there are no feasible prices".
    pub fn min_total_payment(&self) -> Option<Price> {
        (0..self.len()).map(|i| self.total_payment(i)).min()
    }
}

/// Worker order used throughout Algorithm 1: ascending bidding price, ties
/// by worker id.
pub(crate) fn workers_by_price(instance: &Instance) -> Vec<WorkerId> {
    let mut ids: Vec<WorkerId> = (0..instance.num_workers())
        .map(|i| WorkerId(i as u32))
        .collect();
    ids.sort_by_key(|&w| (instance.bids().bid(w).price(), w));
    ids
}

/// A cached marginal-coverage bound for one candidate, ordered so that a
/// [`std::collections::BinaryHeap`] pops the candidate the eager rescan
/// would pick: largest gain first, ties on the *earliest* candidate index
/// (the cheapest bidder, then smallest worker id).
#[derive(Debug, Clone, Copy)]
struct LazyGain {
    /// Last-computed marginal coverage — an upper bound on the current one.
    gain: f64,
    /// Index into the candidate slice.
    ci: usize,
}

impl PartialEq for LazyGain {
    fn eq(&self, other: &Self) -> bool {
        self.ci == other.ci && self.gain.total_cmp(&other.gain).is_eq()
    }
}

impl Eq for LazyGain {}

impl PartialOrd for LazyGain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LazyGain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Gains are finite and positive here (entries at or below
        // `COVER_EPS` are never pushed), so `total_cmp` agrees with the
        // eager implementation's `>` comparisons.
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.ci.cmp(&self.ci))
    }
}

/// The typed error for a candidate pool that ran dry with coverage still
/// outstanding: names the first task whose requirement is unmet.
///
/// Callers establish feasibility before selecting, so reaching this means
/// either an internal inconsistency or an explicitly partial (residual)
/// selection — both must surface as data, not a panic, now that fault
/// injection can drive the schedule path with arbitrary coverage states.
fn coverage_shortfall(residual: &[f64], requirements: &[f64]) -> McsError {
    for (j, &r) in residual.iter().enumerate() {
        if r > COVER_EPS {
            return McsError::CoverageShortfall {
                task: TaskId(j as u32),
                required: requirements[j].max(0.0),
                achieved: (requirements[j] - r).max(0.0),
            };
        }
    }
    McsError::CoverageShortfall {
        task: TaskId(0),
        required: 0.0,
        achieved: 0.0,
    }
}

/// The marginal coverage `Σ_j min(Q'_j, q_ij)` of one worker against a
/// residual requirement vector. All selectors share this single
/// implementation so gains are bit-for-bit comparable across engines:
/// entries come in ascending task order and accumulation starts at `+0.0`.
#[inline]
pub(crate) fn marginal_gain(cover: &SparseCoverage, w: WorkerId, residual: &[f64]) -> f64 {
    cover
        .row(w.index())
        .map(|(j, q)| q.min(residual[j].max(0.0)))
        .sum()
}

/// Applies one accepted worker to the residual, decrementing the running
/// deficit entry by entry (the same accumulation order every selector has
/// always used, so termination thresholds are unchanged).
#[inline]
pub(crate) fn apply_winner(
    cover: &SparseCoverage,
    w: WorkerId,
    residual: &mut [f64],
    remaining: &mut f64,
) {
    for (j, q) in cover.row(w.index()) {
        let take = q.min(residual[j].max(0.0));
        residual[j] -= take;
        *remaining -= take;
    }
}

/// The CELF loop behind [`select_marginal`], seeded with precomputed
/// initial gains and returning winners in *selection order* (unsorted).
///
/// Initial gains against the full requirement vector do not depend on the
/// candidate prefix, which is what lets the ascending price sweep compute
/// them once and warm-start this loop for every interval that diverges.
pub(crate) fn celf_sequence(
    candidates: &[WorkerId],
    cover: &SparseCoverage,
    init: &[f64],
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().sum();
    let mut sequence = Vec::new();

    let mut heap: std::collections::BinaryHeap<LazyGain> = init
        .iter()
        .enumerate()
        .map(|(ci, &gain)| LazyGain { gain, ci })
        .filter(|e| e.gain > COVER_EPS)
        .collect();

    while remaining > COVER_EPS {
        let Some(top) = heap.pop() else {
            return Err(coverage_shortfall(&residual, requirements));
        };
        let w = candidates[top.ci];
        let fresh = marginal_gain(cover, w, &residual);
        if fresh <= COVER_EPS {
            // The candidate's remaining contribution evaporated; gains
            // never grow, so she can be dropped for good.
            continue;
        }
        let current = LazyGain {
            gain: fresh,
            ci: top.ci,
        };
        // Every other cached entry is an upper bound on its true gain, so
        // `current` winning against the best cached bound means it would
        // win the eager rescan too (on ties the smaller candidate index
        // prevails, exactly like the eager strict `>`).
        if let Some(&next) = heap.peek() {
            if current < next {
                heap.push(current);
                continue;
            }
        }
        sequence.push(w);
        apply_winner(cover, w, &mut residual, &mut remaining);
    }
    Ok(sequence)
}

/// Greedy winner selection among `candidates` (Algorithm 1, lines 8–13),
/// evaluated lazily (CELF): each candidate's last-computed marginal
/// coverage is kept in a max-heap and only the top entry is re-evaluated.
/// Because the residual requirements only shrink, coverage gains are
/// submodular — a stale cached gain is always an *upper bound* — so the
/// popped candidate can be accepted as soon as its fresh gain still beats
/// the next cached bound. Picks the exact winner sequence of the eager
/// rescan ([`select_marginal_eager`]), tie-breaking included.
///
/// # Errors
///
/// [`McsError::CoverageShortfall`] if the candidates cannot satisfy the
/// requirements (callers normally establish feasibility first).
fn select_marginal(
    candidates: &[WorkerId],
    cover: &SparseCoverage,
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let init: Vec<f64> = candidates
        .iter()
        .map(|&w| marginal_gain(cover, w, requirements))
        .collect();
    let mut winners = celf_sequence(candidates, cover, &init, requirements)?;
    winners.sort_unstable();
    Ok(winners)
}

/// The pre-lazy reference selector: a full rescan of all candidates on
/// every selection round. Kept as the ground truth the CELF engine is
/// proptested against, and as the baseline the `schedule` bench measures
/// speedups from.
fn select_marginal_eager(
    candidates: &[WorkerId],
    cover: &SparseCoverage,
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().sum();
    let mut used = vec![false; candidates.len()];
    let mut winners = Vec::new();
    while remaining > COVER_EPS {
        let mut best: Option<(usize, f64)> = None;
        for (ci, &w) in candidates.iter().enumerate() {
            if used[ci] {
                continue;
            }
            let gain = marginal_gain(cover, w, &residual);
            if gain <= COVER_EPS {
                continue;
            }
            // Strict `>` keeps ties on the earliest candidate — i.e. the
            // cheapest bidder, then smallest worker id.
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((ci, gain));
            }
        }
        let Some((ci, _)) = best else {
            return Err(coverage_shortfall(&residual, requirements));
        };
        used[ci] = true;
        let w = candidates[ci];
        winners.push(w);
        apply_winner(cover, w, &mut residual, &mut remaining);
    }
    winners.sort_unstable();
    Ok(winners)
}

/// Baseline winner selection: descending static score `Σ_j q_ij`, ties by
/// worker id. Uses the totals cached at CSR build time instead of
/// re-summing rows inside the sort comparator — `O(n log n)` comparisons
/// over precomputed floats rather than `O(n log n · K)` row scans.
fn select_static(
    candidates: &[WorkerId],
    cover: &SparseCoverage,
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let mut order: Vec<WorkerId> = candidates.to_vec();
    order.sort_by(|&a, &b| {
        cover
            .total(b.index())
            .partial_cmp(&cover.total(a.index()))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().sum();
    let mut winners = Vec::new();
    for w in order {
        if remaining <= COVER_EPS {
            break;
        }
        winners.push(w);
        apply_winner(cover, w, &mut residual, &mut remaining);
    }
    if remaining > COVER_EPS {
        return Err(coverage_shortfall(&residual, requirements));
    }
    winners.sort_unstable();
    Ok(winners)
}

/// Replays the previous interval's winner sequence against a grown
/// candidate prefix and reports whether it survives unchanged.
///
/// The ascending sweep's key property: moving to a higher price interval
/// only *appends* candidates (`sorted[prev_prefix..new_prefix]`). Each
/// incumbent in `sequence` was the greedy argmax over the old prefix at a
/// residual this replay reproduces bit-for-bit, and every newcomer has a
/// larger candidate index than every incumbent, so newcomers lose exact
/// ties. The greedy run over the new prefix therefore picks the identical
/// sequence **iff** no newcomer's fresh gain *strictly* exceeds the
/// incumbent's at some step — which is exactly what this checks.
fn replay_confirms(
    cover: &SparseCoverage,
    requirements: &[f64],
    newcomers: &[WorkerId],
    sequence: &[WorkerId],
) -> bool {
    let mut residual = requirements.to_vec();
    for &w in sequence {
        let incumbent = marginal_gain(cover, w, &residual);
        for &nw in newcomers {
            if marginal_gain(cover, nw, &residual) > incumbent {
                return false;
            }
        }
        for (j, q) in cover.row(w.index()) {
            residual[j] -= q.min(residual[j].max(0.0));
        }
    }
    true
}

/// The ascending incremental price sweep: winner sets for a strictly
/// increasing sequence of candidate prefixes, sharing state across
/// adjacent intervals instead of selecting each one from scratch.
///
/// For [`SelectionRule::MarginalCoverage`] the sweep computes every
/// candidate's initial gain (prefix-independent — the residual starts at
/// the full requirements) exactly once, then walks intervals in ascending
/// price order. Each interval first tries [`replay_confirms`]: when the
/// newcomers never strictly beat an incumbent, the previous winner set is
/// reused outright; otherwise the CELF loop restarts warm-seeded from the
/// cached initial gains. In the common case — higher prices admitting
/// expensive workers greedy never picks — an interval costs one replay
/// (`O(|S| · nnz_newcomers)`) instead of a full selection.
///
/// [`SelectionRule::StaticTotal`] needs no residual sharing: with cached
/// static totals each interval is already just a sort of the prefix.
fn sweep_select(
    rule: SelectionRule,
    cover: &SparseCoverage,
    requirements: &[f64],
    sorted: &[WorkerId],
    prefixes: &[usize],
) -> Result<Vec<Vec<WorkerId>>, McsError> {
    match rule {
        SelectionRule::StaticTotal => prefixes
            .iter()
            .map(|&p| select_static(&sorted[..p], cover, requirements))
            .collect(),
        SelectionRule::MarginalCoverage => {
            let init: Vec<f64> = sorted
                .iter()
                .map(|&w| marginal_gain(cover, w, requirements))
                .collect();
            let mut out = Vec::with_capacity(prefixes.len());
            let mut prev_prefix = 0usize;
            let mut sequence: Vec<WorkerId> = Vec::new();
            for &prefix in prefixes {
                let newcomers = &sorted[prev_prefix..prefix];
                let unchanged =
                    prev_prefix > 0 && replay_confirms(cover, requirements, newcomers, &sequence);
                if !unchanged {
                    sequence =
                        celf_sequence(&sorted[..prefix], cover, &init[..prefix], requirements)?;
                }
                prev_prefix = prefix;
                let mut winners = sequence.clone();
                winners.sort_unstable();
                out.push(winners);
            }
            Ok(out)
        }
    }
}

/// Interval-lane width of the lockstep sweep: the per-candidate winner
/// mask is one `u64`, and the per-candidate gain scratch lives on the
/// stack. Wider interval lists run in chunks of this many lanes.
const LOCKSTEP_LANES: usize = 64;

/// The candidate index behind `Strategy::Indexed`'s marginal-coverage
/// sweep (DESIGN.md §5f): all candidates ordered by descending initial
/// gain, with every per-candidate input (worker id, price rank, initial
/// gain, coverage row) copied into flat arrays in that order.
///
/// [`celf_sequence`] costs `O(prefix)` heap traffic *per interval* just to
/// discover that most of the prefix is already covered, and at
/// N = 10⁵–10⁶ workers essentially every interval diverges (a fresh batch
/// of i.i.d. newcomers beats some incumbent with probability approaching
/// one), so that churn dominates the whole sweep. [`RankedCelf::lockstep`]
/// instead runs every interval's greedy selection simultaneously over one
/// cursor walk of the rank order: a candidate is admitted once, evaluated
/// against all interval residuals in one coverage-row fetch, and dropped
/// on the spot from every lane where it evaluates to exact dust. Only
/// candidates still carrying coverage somewhere ever enter the shared
/// working heap, keyed by fresh gains rather than stale initial bounds.
struct RankedCelf {
    /// Worker id by rank position.
    widx: Vec<WorkerId>,
    /// Price-order candidate index by rank position; the prefix filter
    /// and the argmax tie-break both speak price order.
    ci: Vec<u32>,
    /// Initial gain (against the full requirements) by rank position,
    /// descending; ties ordered by ascending price rank.
    init: Vec<f64>,
    /// Coverage rows copied into rank order: `row_off[r]..row_off[r+1]`
    /// spans the `(row_task, row_q)` pairs of rank position `r`, in the
    /// original CSR entry order (gain sums and residual updates must
    /// accumulate in the exact order every other selector uses).
    row_off: Vec<u32>,
    row_task: Vec<u32>,
    row_q: Vec<f64>,
}

/// A working-heap entry for [`RankedCelf`]: a gain bound plus both
/// addresses of its candidate. Ordered exactly like [`LazyGain`] — by
/// gain, ties to the earlier *price-order* candidate — so acceptance
/// decisions match [`celf_sequence`] bit for bit.
#[derive(Debug, Clone, Copy)]
struct RankedGain {
    gain: f64,
    ci: u32,
    /// Rank position, resolving the candidate's row in the flat arrays.
    r: u32,
}

impl PartialEq for RankedGain {
    fn eq(&self, other: &Self) -> bool {
        self.ci == other.ci && self.gain.total_cmp(&other.gain).is_eq()
    }
}

impl Eq for RankedGain {}

impl PartialOrd for RankedGain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedGain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.ci.cmp(&self.ci))
    }
}

/// Max-priority pool of bound entries, split at a moving gain threshold
/// `tau`: entries at or above it live in an exact binary heap, the far
/// larger remainder in an unordered parked vector. The frontier of
/// outstanding bounds only moves down over a lockstep run, so most
/// entries are pushed once below `tau` (a `Vec` append instead of an
/// `O(log n)` sift over a multi-megabyte heap) and are touched again only
/// if the frontier actually reaches them; the hot heap stays small enough
/// to be cache-resident.
///
/// The split is exact, not approximate: parked entries all have gains
/// strictly below every active entry's (pushes compare against the
/// current `tau`, which only decreases, and refills promote everything at
/// or above the new `tau`), so the active top is the true maximum under
/// the full [`RankedGain`] order whenever the pool is non-empty.
struct BoundPool {
    active: std::collections::BinaryHeap<RankedGain>,
    parked: Vec<RankedGain>,
    tau: f64,
}

impl BoundPool {
    fn new() -> Self {
        Self {
            active: std::collections::BinaryHeap::new(),
            parked: Vec::new(),
            tau: f64::INFINITY,
        }
    }

    #[inline]
    fn push(&mut self, e: RankedGain) {
        if e.gain >= self.tau {
            self.active.push(e);
        } else {
            self.parked.push(e);
        }
    }

    /// Promotes parked entries once the active heap drains: the new
    /// threshold halves from the parked maximum (all keys are positive),
    /// so a run performs at most `log2(max_gain / COVER_EPS)` refills,
    /// each a single linear pass over the parked vector.
    fn refill(&mut self) {
        if !self.active.is_empty() || self.parked.is_empty() {
            return;
        }
        let m = self
            .parked
            .iter()
            .map(|e| e.gain)
            .fold(f64::NEG_INFINITY, f64::max);
        self.tau = m * 0.5;
        let mut promoted = Vec::new();
        let tau = self.tau;
        self.parked.retain(|e| {
            if e.gain >= tau {
                promoted.push(*e);
                false
            } else {
                true
            }
        });
        self.active = std::collections::BinaryHeap::from(promoted);
    }

    #[inline]
    fn peek(&mut self) -> Option<RankedGain> {
        self.refill();
        self.active.peek().copied()
    }

    #[inline]
    fn pop(&mut self) -> Option<RankedGain> {
        self.refill();
        self.active.pop()
    }
}

impl RankedCelf {
    /// Builds the rank order and the permuted flat arrays: one sort plus
    /// one pass over the coverage rows, paid once per schedule build and
    /// amortized across every price interval.
    fn new(cover: &SparseCoverage, sorted: &[WorkerId], init_by_ci: &[f64]) -> Self {
        // Sorting 4-byte indices moves a quarter of the bytes that
        // (gain, index) pairs would; at a million candidates the swap
        // traffic outweighs the indirect key reads. The order is total
        // (ties fall to the candidate index), so unstable sorting is
        // deterministic.
        let n = init_by_ci.len();
        let mut rank: Vec<u32> = (0..n as u32).collect();
        rank.sort_unstable_by(|&a, &b| {
            init_by_ci[b as usize]
                .total_cmp(&init_by_ci[a as usize])
                .then(a.cmp(&b))
        });
        let mut this = RankedCelf {
            widx: Vec::with_capacity(n),
            ci: Vec::with_capacity(n),
            init: Vec::with_capacity(n),
            row_off: Vec::with_capacity(n + 1),
            row_task: Vec::with_capacity(cover.nnz()),
            row_q: Vec::with_capacity(cover.nnz()),
        };
        this.row_off.push(0);
        for &ci in &rank {
            let w = sorted[ci as usize];
            this.widx.push(w);
            this.ci.push(ci);
            this.init.push(init_by_ci[ci as usize]);
            for (j, q) in cover.row(w.index()) {
                this.row_task.push(j as u32);
                this.row_q.push(q);
            }
            this.row_off.push(this.row_task.len() as u32);
        }
        this
    }

    /// Fresh marginal gains of rank position `r` against every interval
    /// lane in `lo..m` — per lane, the same terms in the same accumulation
    /// order as [`marginal_gain`], so each lane's sum is bit-identical to
    /// a standalone evaluation against that interval's residual. Tasks
    /// saturated to *exactly* zero in every lane (`rmax[j] == 0`, the
    /// common end state: the final `take` subtracts the whole slot) are
    /// skipped — their term is exactly `0.0` in every lane, so the sums
    /// keep their bits.
    #[inline]
    fn gains_lanes(
        &self,
        r: usize,
        lo: usize,
        m: usize,
        residual: &[f64],
        rmax: &[f64],
        gains: &mut [f64; LOCKSTEP_LANES],
    ) {
        gains[lo..m].fill(0.0);
        let (s, e) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
        for (&j, &q) in self.row_task[s..e].iter().zip(&self.row_q[s..e]) {
            let j = j as usize;
            if rmax[j] <= 0.0 {
                continue;
            }
            let lanes = &residual[j * m..j * m + m];
            for (g, &l) in gains[lo..m].iter_mut().zip(&lanes[lo..m]) {
                *g += q.min(l.max(0.0));
            }
        }
    }

    /// Upper-bounds rank position `r`'s gain in *every* lane at once using
    /// the per-task lane maxima: `q.min(rmax[j]) ≥ q.min(residual_i[j])`
    /// pointwise, so a bound at or below the dust threshold proves the
    /// candidate is exact dust in all lanes without touching the lane
    /// matrix.
    #[inline]
    fn gain_ceiling(&self, r: usize, rmax: &[f64]) -> f64 {
        let (s, e) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
        self.row_task[s..e]
            .iter()
            .zip(&self.row_q[s..e])
            .map(|(&j, &q)| q.min(rmax[j as usize]))
            .sum()
    }

    /// Applies rank position `r` as a winner in interval lane `i` — the
    /// same updates in the same order as [`apply_winner`].
    #[inline]
    fn apply_lane(&self, r: usize, i: usize, m: usize, residual: &mut [f64], remaining: &mut f64) {
        let (s, e) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
        for (&j, &q) in self.row_task[s..e].iter().zip(&self.row_q[s..e]) {
            let slot = &mut residual[j as usize * m + i];
            let take = q.min(slot.max(0.0));
            *slot -= take;
            *remaining -= take;
        }
    }

    /// Greedy selection over *every* prefix at once; returns one winner
    /// sequence per prefix, each in selection order (unsorted) and
    /// bit-identical to [`celf_sequence`] over that prefix. `prefixes`
    /// must be strictly ascending; when a prefix cannot cover, the error
    /// is the one the ascending per-prefix sweep would hit first (prefix
    /// feasibility is monotone, so that is the smallest uncovered prefix).
    ///
    /// Running the intervals in lockstep is what makes the indexed engine
    /// scale on the worker axis: the per-interval greedy runs share one
    /// pass over the rank order, so the heap traffic that a from-scratch
    /// selection pays per interval — `Θ(prefix)` pops just to rediscover
    /// that most of the pool is dust — is paid once for the whole sweep.
    /// Correctness needs no coordination between intervals: each one's
    /// residual lane evolves exactly as its standalone greedy run would,
    /// because both implement the same argmax rule (largest fresh gain,
    /// ties to the earlier price-order candidate, dust at `COVER_EPS`)
    /// and only the accepted sequence is observable.
    fn lockstep(
        &self,
        prefixes: &[usize],
        requirements: &[f64],
    ) -> Result<Vec<Vec<WorkerId>>, McsError> {
        // The per-candidate winner mask is one machine word; wider interval
        // lists run in 64-lane chunks (the chunks share nothing, so this
        // only splits the rank-order pass).
        let mut out = Vec::with_capacity(prefixes.len());
        for chunk in prefixes.chunks(LOCKSTEP_LANES) {
            out.append(&mut self.lockstep_chunk(chunk, requirements)?);
        }
        Ok(out)
    }

    fn lockstep_chunk(
        &self,
        prefixes: &[usize],
        requirements: &[f64],
    ) -> Result<Vec<Vec<WorkerId>>, McsError> {
        let m = prefixes.len();
        debug_assert!(!prefixes.is_empty() && m <= LOCKSTEP_LANES);
        debug_assert!(prefixes.windows(2).all(|w| w[0] < w[1]));
        let n = self.widx.len();
        let k = requirements.len();
        let last = prefixes[m - 1] as u32;
        // Task-major residual lanes: `residual[j * m + i]` is task `j`'s
        // outstanding requirement in interval `i`, so one coverage-row
        // fetch evaluates (or applies) a candidate against adjacent lanes.
        let mut residual = vec![0.0f64; k * m];
        for j in 0..k {
            residual[j * m..(j + 1) * m].fill(requirements[j]);
        }
        let total: f64 = requirements.iter().sum();
        let mut remaining = vec![total; m];
        let mut sequences: Vec<Vec<WorkerId>> = vec![Vec::new(); m];
        // Per-interval incumbent argmax: an *exact* gain against that
        // interval's current residual. The residual only changes when the
        // interval accepts, which clears the slot, so a held best never
        // goes stale.
        let mut best: Vec<Option<RankedGain>> = vec![None; m];
        let mut done = vec![false; m];
        let mut live = m;
        for i in 0..m {
            if remaining[i] <= COVER_EPS {
                done[i] = true;
                live -= 1;
            }
        }
        // Bit `i` set: the rank-`r` candidate already won interval `i`
        // (a candidate can win several intervals; each pays it its own
        // evaluation).
        let mut selected = vec![0u64; n];
        // Evaluated-and-still-live candidates. An entry's key is the max
        // of the candidate's last fresh gains over the intervals where it
        // is neither winner nor incumbent best — gains never grow, so the
        // key upper-bounds the candidate in every interval it must still
        // compete in. Each candidate has at most one *authoritative* entry
        // (key recorded in `live_bound`); re-pushes strand the older entry
        // in the pool, and a popped key that disagrees with `live_bound`
        // identifies such a stray, dropped without re-evaluation — its
        // lanes are covered by the newer entry, whose key was taken as a
        // max over at least the same lanes.
        let mut aux = BoundPool::new();
        let mut live_bound = vec![f64::NEG_INFINITY; n];
        // A (lazily stale-high) upper bound on the largest live incumbent,
        // by the same order: raised at every promotion, recomputed exactly
        // whenever the incumbents are scanned. Lets the hot loop skip the
        // per-lane acceptance scan while no incumbent can possibly
        // dominate the outstanding bound.
        let mut cap: Option<RankedGain> = None;
        // Per-task residual maximum across lanes, clamped at zero. It only
        // shrinks (acceptances refresh the touched tasks), so the ceiling
        // it yields in [`gain_ceiling`] stays a valid all-lane upper bound
        // for the rest of the run; most pops late in the sweep bound out
        // as dust here at `O(row)` cost instead of `O(row × lanes)`.
        let mut rmax: Vec<f64> = requirements.iter().map(|&q| q.max(0.0)).collect();
        let mut cursor = 0usize;
        let mut gains = [0.0f64; LOCKSTEP_LANES];
        while live > 0 {
            while cursor < n && self.ci[cursor] >= last {
                cursor += 1;
            }
            let head = if cursor < n && self.init[cursor] > COVER_EPS {
                Some(RankedGain {
                    gain: self.init[cursor],
                    ci: self.ci[cursor],
                    r: cursor as u32,
                })
            } else {
                // Descending rank order: once the head is dust the whole
                // unadmitted tail is — same filter as `celf_sequence`.
                cursor = n;
                None
            };
            // The largest outstanding bound across *all* intervals: the
            // working pool's top vs the rank head (initial gains; later
            // rank entries are smaller still).
            let bound = match (aux.peek(), head) {
                (Some(a), Some(h)) => Some(if a > h { (a, true) } else { (h, false) }),
                (Some(a), None) => Some((a, true)),
                (None, Some(h)) => Some((h, false)),
                (None, None) => None,
            };
            // Accept every incumbent that dominates the global bound. The
            // global bound over-approximates each interval's own (it may
            // be carried by another interval's gain), so acceptance can
            // only be delayed, never wrong; `RankedGain`'s order ties to
            // the earlier price-order candidate, matching the eager
            // argmax.
            let scan = match (cap, bound) {
                (Some(c), Some((t, _))) => c >= t,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if scan {
                let mut accepted = false;
                let mut rest: Option<RankedGain> = None;
                for i in 0..m {
                    if done[i] {
                        continue;
                    }
                    let Some(b) = best[i] else { continue };
                    let dominates = match bound {
                        Some((t, _)) => b >= t,
                        None => true,
                    };
                    if !dominates {
                        rest = Some(match rest {
                            Some(c) if c >= b => c,
                            _ => b,
                        });
                        continue;
                    }
                    best[i] = None;
                    let r = b.r as usize;
                    selected[r] |= 1u64 << i;
                    sequences[i].push(self.widx[r]);
                    self.apply_lane(r, i, m, &mut residual, &mut remaining[i]);
                    let (s, e) = (self.row_off[r] as usize, self.row_off[r + 1] as usize);
                    for &j in &self.row_task[s..e] {
                        let j = j as usize;
                        rmax[j] = residual[j * m..j * m + m]
                            .iter()
                            .fold(0.0f64, |a, &b| a.max(b));
                    }
                    if remaining[i] <= COVER_EPS {
                        done[i] = true;
                        live -= 1;
                    }
                    accepted = true;
                }
                cap = rest;
                if accepted {
                    continue;
                }
            }
            let Some((t, from_aux)) = bound else {
                // Pool exhausted with uncovered intervals and no incumbent
                // left: report the smallest uncovered prefix, whose lane
                // is bit-identical to its standalone run's residual.
                let i = (0..m).find(|&i| !done[i]).expect("live > 0");
                let lane: Vec<f64> = (0..k).map(|j| residual[j * m + i]).collect();
                return Err(coverage_shortfall(&lane, requirements));
            };
            let r = t.r as usize;
            if from_aux {
                aux.pop();
                if t.gain != live_bound[r] {
                    // A stray superseded by a newer entry for the same
                    // candidate; that entry's key bounds every lane this
                    // one did.
                    continue;
                }
                live_bound[r] = f64::NEG_INFINITY;
            } else {
                cursor += 1;
            }
            if self.gain_ceiling(r, &rmax) <= COVER_EPS {
                // Exact dust in every lane at once: each lane's gain is
                // pointwise below the ceiling, so the full evaluation
                // would `continue` everywhere without a push. Incumbent
                // slots the candidate still holds keep their exact gains.
                continue;
            }
            // The candidate competes exactly in the intervals whose prefix
            // extends past its price rank.
            let lo = prefixes.partition_point(|&p| p <= t.ci as usize);
            self.gains_lanes(r, lo, m, &residual, &rmax, &mut gains);
            let mut back = f64::NEG_INFINITY;
            for i in lo..m {
                if done[i] || selected[r] & (1u64 << i) != 0 {
                    continue;
                }
                if let Some(b) = best[i] {
                    if b.r == t.r {
                        // Already this interval's incumbent; its cached
                        // gain is still exact.
                        continue;
                    }
                }
                let g = gains[i];
                if g <= COVER_EPS {
                    // Exact dust in this interval — saturated tasks yield
                    // exactly zero and gains never grow, so the candidate
                    // is gone from this lane for good.
                    continue;
                }
                let cand = RankedGain {
                    gain: g,
                    ci: t.ci,
                    r: t.r,
                };
                match best[i] {
                    Some(b) if b > cand => back = back.max(g),
                    prev => {
                        // New incumbent. A displaced best re-enters the
                        // pool under its own (exact, hence valid) bound —
                        // unless its authoritative entry already covers
                        // this lane with a key at least as large.
                        if let Some(b) = prev {
                            let br = b.r as usize;
                            if b.gain > live_bound[br] {
                                live_bound[br] = b.gain;
                                aux.push(b);
                            }
                        }
                        best[i] = Some(cand);
                        cap = Some(match cap {
                            Some(c) if c >= cand => c,
                            _ => cand,
                        });
                    }
                }
            }
            if back > COVER_EPS {
                live_bound[r] = back;
                aux.push(RankedGain {
                    gain: back,
                    ci: t.ci,
                    r: t.r,
                });
            }
        }
        Ok(sequences)
    }
}

/// The worker-axis sweep behind `Strategy::Indexed`: one global
/// preprocessing pass over the candidates, then per-interval work that is
/// nearly independent of the prefix length.
///
/// For [`SelectionRule::MarginalCoverage`] the [`RankedCelf`] index runs
/// all intervals' greedy selections in lockstep over a single walk of the
/// global gain-rank order, so the `Θ(prefix)` candidate churn is paid
/// once per sweep instead of once per interval. For
/// [`SelectionRule::StaticTotal`] the candidates are sorted by the
/// static-total comparator *once*; each prefix's candidate order is that
/// global order filtered to prefix members, eliminating the per-interval
/// `O(prefix log prefix)` sort.
fn indexed_sweep(
    rule: SelectionRule,
    cover: &SparseCoverage,
    requirements: &[f64],
    sorted: &[WorkerId],
    prefixes: &[usize],
) -> Result<Vec<Vec<WorkerId>>, McsError> {
    match rule {
        SelectionRule::StaticTotal => {
            let mut static_order: Vec<WorkerId> = sorted.to_vec();
            // The exact `select_static` comparator, so the filtered order
            // equals each prefix's own sort (the comparator is a total
            // order: ties fall to worker id).
            static_order.sort_by(|&a, &b| {
                cover
                    .total(b.index())
                    .partial_cmp(&cover.total(a.index()))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut price_rank = vec![usize::MAX; cover.num_workers()];
            for (i, &w) in sorted.iter().enumerate() {
                price_rank[w.index()] = i;
            }
            prefixes
                .iter()
                .map(|&prefix| {
                    let mut residual = requirements.to_vec();
                    let mut remaining: f64 = residual.iter().sum();
                    let mut winners = Vec::new();
                    for &w in &static_order {
                        if remaining <= COVER_EPS {
                            break;
                        }
                        if price_rank[w.index()] >= prefix {
                            continue;
                        }
                        winners.push(w);
                        apply_winner(cover, w, &mut residual, &mut remaining);
                    }
                    if remaining > COVER_EPS {
                        return Err(coverage_shortfall(&residual, requirements));
                    }
                    winners.sort_unstable();
                    Ok(winners)
                })
                .collect()
        }
        SelectionRule::MarginalCoverage => {
            let init: Vec<f64> = sorted
                .iter()
                .map(|&w| marginal_gain(cover, w, requirements))
                .collect();
            let celf = RankedCelf::new(cover, sorted, &init);
            let mut out = celf.lockstep(prefixes, requirements)?;
            for winners in &mut out {
                winners.sort_unstable();
            }
            Ok(out)
        }
    }
}

/// Which selector evaluates each price interval's winner set. All engines
/// produce the identical schedule; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// CELF lazy evaluation, serial over intervals.
    Lazy,
    /// CELF lazy evaluation with intervals fanned out over rayon.
    #[cfg(feature = "parallel")]
    LazyParallel,
    /// Full rescan per selection round (the pre-lazy reference).
    EagerRescan,
    /// Serial ascending sweep sharing residual state across intervals.
    IncrementalSweep,
    /// The worker-axis sweep: candidate index, one-time gains, ranked CELF
    /// and challenger-heap replays (see [`indexed_sweep`]).
    Indexed,
}

// Not derivable: the default depends on the `parallel` feature, and the
// `LazyParallel` variant does not exist without it.
#[allow(clippy::derivable_impls)]
impl Default for Engine {
    fn default() -> Self {
        #[cfg(feature = "parallel")]
        {
            Engine::LazyParallel
        }
        #[cfg(not(feature = "parallel"))]
        {
            Engine::Lazy
        }
    }
}

/// Maps the public [`Strategy`] onto the interval-level [`Engine`] for the
/// strategies that share the sparse data path.
fn engine_of(strategy: Strategy) -> Engine {
    match strategy {
        Strategy::Auto => Engine::default(),
        Strategy::Lazy => Engine::Lazy,
        Strategy::Eager => Engine::EagerRescan,
        Strategy::Incremental => Engine::IncrementalSweep,
        Strategy::Indexed => Engine::Indexed,
        // Dense and Naive have dedicated data paths in `build_dispatch`;
        // on the residual path they fall back (documented on
        // `ScheduleEngine::build_residual`).
        Strategy::Dense => Engine::default(),
        Strategy::Naive => Engine::EagerRescan,
    }
}

/// The full-instance entry point behind [`crate::ScheduleEngine::build`]:
/// picks the data path for the strategy and threads the coarsening stride
/// through to the interval walk.
pub(crate) fn build_dispatch(
    instance: &Instance,
    rule: SelectionRule,
    strategy: Strategy,
    stride: usize,
) -> Result<PriceSchedule, McsError> {
    match strategy {
        // The naive reference has no interval structure: it recomputes
        // every grid price independently, so the coarsening stride does
        // not apply to it.
        Strategy::Naive => build_naive_inner(instance, rule),
        Strategy::Dense => {
            // The pre-CSR build path: materialize the dense `N×K`
            // problem, run the dense feasibility check, convert after.
            let dense = instance.coverage_problem();
            dense.check_feasible()?;
            let cover = SparseCoverage::from_dense(&dense);
            let requirements = cover.requirements().to_vec();
            let all = workers_by_price(instance);
            schedule_over(
                instance,
                rule,
                Engine::Lazy,
                &cover,
                &requirements,
                &all,
                stride,
            )
        }
        Strategy::Indexed => {
            let cover = instance.sparse_coverage();
            cover.check_feasible()?;
            let requirements = cover.requirements().to_vec();
            // The candidate index *is* the canonical (price, id) order,
            // bucketed so ascending prefixes are whole-bucket extensions.
            let prices: Vec<i64> = (0..instance.num_workers())
                .map(|i| instance.bids().bid(WorkerId(i as u32)).price().tenths())
                .collect();
            let index = CandidateIndex::from_tenths(&prices);
            schedule_over(
                instance,
                rule,
                Engine::Indexed,
                &cover,
                &requirements,
                index.order(),
                stride,
            )
        }
        _ => {
            // One CSR materialization straight from the bundles —
            // O(nnz + K) — serves feasibility, the covering-prefix walk,
            // and every selector.
            let cover = instance.sparse_coverage();
            cover.check_feasible()?;
            let requirements = cover.requirements().to_vec();
            let all = workers_by_price(instance);
            schedule_over(
                instance,
                rule,
                engine_of(strategy),
                &cover,
                &requirements,
                &all,
                stride,
            )
        }
    }
}

/// The residual entry point behind [`crate::ScheduleEngine::build_residual`]:
/// validates the inputs, establishes pool feasibility, and runs the
/// interval walk over the eligible workers only.
pub(crate) fn build_residual_dispatch(
    instance: &Instance,
    rule: SelectionRule,
    strategy: Strategy,
    stride: usize,
    requirements: &[f64],
    eligible: &[WorkerId],
) -> Result<PriceSchedule, McsError> {
    if requirements.len() != instance.num_tasks() {
        return Err(McsError::DimensionMismatch {
            what: "residual requirement vector",
            expected: instance.num_tasks(),
            actual: requirements.len(),
        });
    }
    for &w in eligible {
        if w.index() >= instance.num_workers() {
            return Err(McsError::WorkerOutOfRange {
                worker: w,
                num_workers: instance.num_workers(),
            });
        }
    }
    let cover = instance.sparse_coverage();
    // One pass over the eligible rows instead of K per-task column scans;
    // per-task addition order matches the old dense sums, so shortfall
    // payloads stay bit-identical.
    let mut attainable = vec![0.0f64; instance.num_tasks()];
    for &w in eligible {
        for (j, q) in cover.row(w.index()) {
            attainable[j] += q;
        }
    }
    for (j, &need) in requirements.iter().enumerate() {
        if need <= COVER_EPS {
            continue;
        }
        if attainable[j] < need - COVER_EPS {
            return Err(McsError::CoverageShortfall {
                task: TaskId(j as u32),
                required: need,
                achieved: attainable[j],
            });
        }
    }
    let mut sorted = eligible.to_vec();
    sorted.sort_by_key(|&w| (instance.bids().bid(w).price(), w));
    sorted.dedup();
    schedule_over(
        instance,
        rule,
        engine_of(strategy),
        &cover,
        requirements,
        &sorted,
        stride,
    )
}

/// The shared schedule engine: Algorithm 1 over an arbitrary (possibly
/// residual) requirement vector and a price-sorted candidate pool, against
/// a prebuilt CSR covering problem.
///
/// `stride` is the price-grid coarsening knob (`1` = exact): with stride
/// `c`, winner selection runs only on every `c`-th bidding-price interval
/// plus always the last one; each skipped interval reuses the winner set
/// of the nearest evaluated interval below it. Evaluated intervals are
/// bit-identical to the exact schedule, skipped ones inherit a set that
/// stays feasible (its workers bid at most the evaluated interval's
/// prices, hence at most the skipped interval's too) — see the
/// approximation bound documented on [`crate::Coarsening`].
fn schedule_over(
    instance: &Instance,
    rule: SelectionRule,
    engine: Engine,
    cover: &SparseCoverage,
    raw_requirements: &[f64],
    sorted: &[WorkerId],
    stride: usize,
) -> Result<PriceSchedule, McsError> {
    let n = sorted.len();
    let k = cover.num_tasks();
    let requirements: Vec<f64> = raw_requirements.iter().map(|r| r.max(0.0)).collect();
    let grid = instance.price_grid();

    // Nothing left to cover: every grid price is trivially feasible with
    // an empty winner set.
    if requirements.iter().sum::<f64>() <= COVER_EPS {
        let prices = grid.to_vec();
        let set_of = vec![0; prices.len()];
        return Ok(PriceSchedule {
            prices,
            set_of,
            sets: vec![Vec::new()],
        });
    }

    // Find the minimal covering prefix of the price-sorted workers.
    let mut running = vec![0.0f64; k];
    let mut deficit: f64 = requirements.iter().sum();
    let mut first_cover: Option<usize> = None;
    for (idx, &w) in sorted.iter().enumerate() {
        for (j, q) in cover.row(w.index()) {
            let need = (requirements[j] - running[j]).max(0.0);
            running[j] += q;
            deficit -= q.min(need);
        }
        if deficit <= COVER_EPS {
            first_cover = Some(idx);
            break;
        }
    }
    // Callers verify feasibility of the pool, so this is unreachable in
    // practice; it still degrades to a typed error rather than a panic.
    let Some(first_cover) = first_cover else {
        for j in 0..k {
            if running[j] < requirements[j] - COVER_EPS {
                return Err(McsError::CoverageShortfall {
                    task: TaskId(j as u32),
                    required: requirements[j],
                    achieved: running[j],
                });
            }
        }
        return Err(coverage_shortfall(&[], &[]));
    };
    let rho_star = instance.bids().bid(sorted[first_cover]).price();

    let feasible = grid
        .suffix_from(rho_star)
        .ok_or(McsError::NoFeasiblePrice {
            required_price: rho_star,
            grid_max: grid.max(),
        })?;
    let prices = feasible.to_vec();

    // Walk the bidding-price intervals [ρ_i, ρ_{i+1}) and record which
    // grid prices each interval owns. Intervals are independent of one
    // another — each one's winner set depends only on its candidate
    // prefix — which is what makes the fan-out below safe. (The
    // incremental sweep instead *exploits* their ordering: prefixes only
    // grow with price, so adjacent intervals share selection state.)
    struct Interval {
        /// First grid-price index owned by this interval.
        start: usize,
        /// One past the last grid-price index owned.
        end: usize,
        /// Candidate prefix length: `sorted[..prefix]` is eligible.
        prefix: usize,
    }
    let mut intervals: Vec<Interval> = Vec::new();
    let mut grid_idx = 0usize;
    for i in first_cover..n {
        let upper = if i + 1 < n {
            Some(instance.bids().bid(sorted[i + 1]).price())
        } else {
            None
        };
        // Grid prices in this interval.
        let start = grid_idx;
        while grid_idx < prices.len() && upper.is_none_or(|u| prices[grid_idx] < u) {
            grid_idx += 1;
        }
        if grid_idx == start {
            continue; // no grid price falls in this interval
        }
        intervals.push(Interval {
            start,
            end: grid_idx,
            prefix: i + 1,
        });
        if grid_idx == prices.len() {
            break;
        }
    }

    // Price-grid coarsening: the subset of intervals that actually run
    // winner selection. Stride 1 evaluates everything (the exact
    // schedule); larger strides keep every `stride`-th interval plus
    // always the last, and each skipped interval inherits the winner set
    // of the nearest evaluated interval below it.
    let stride = stride.max(1);
    let evaluated: Vec<usize> = (0..intervals.len())
        .filter(|&i| i % stride == 0 || i + 1 == intervals.len())
        .collect();
    // `backing[i]` = position in `evaluated` of the interval whose winner
    // set interval `i` uses (itself when evaluated).
    let mut backing = vec![0usize; intervals.len()];
    {
        let mut e = 0usize;
        for (i, b) in backing.iter_mut().enumerate() {
            if e + 1 < evaluated.len() && evaluated[e + 1] <= i {
                e += 1;
            }
            *b = e;
        }
    }

    let select = |iv: &Interval| -> Result<Vec<WorkerId>, McsError> {
        let candidates = &sorted[..iv.prefix];
        match (rule, engine) {
            (SelectionRule::MarginalCoverage, Engine::EagerRescan) => {
                select_marginal_eager(candidates, cover, &requirements)
            }
            (SelectionRule::MarginalCoverage, _) => {
                select_marginal(candidates, cover, &requirements)
            }
            (SelectionRule::StaticTotal, _) => select_static(candidates, cover, &requirements),
        }
    };
    let winner_sets: Vec<Vec<WorkerId>> = match engine {
        Engine::IncrementalSweep => {
            let prefixes: Vec<usize> = evaluated.iter().map(|&i| intervals[i].prefix).collect();
            sweep_select(rule, cover, &requirements, sorted, &prefixes)?
        }
        Engine::Indexed => {
            let prefixes: Vec<usize> = evaluated.iter().map(|&i| intervals[i].prefix).collect();
            indexed_sweep(rule, cover, &requirements, sorted, &prefixes)?
        }
        _ => {
            let selected: Vec<Result<Vec<WorkerId>, McsError>> = match engine {
                #[cfg(feature = "parallel")]
                Engine::LazyParallel => {
                    use rayon::prelude::*;
                    evaluated
                        .par_iter()
                        .map(|&i| select(&intervals[i]))
                        .collect()
                }
                _ => evaluated.iter().map(|&i| select(&intervals[i])).collect(),
            };
            selected.into_iter().collect::<Result<_, _>>()?
        }
    };

    let mut set_of = vec![usize::MAX; prices.len()];
    for (i, iv) in intervals.iter().enumerate() {
        for s in set_of.iter_mut().take(iv.end).skip(iv.start) {
            *s = backing[i];
        }
    }
    debug_assert!(
        set_of.iter().all(|&s| s != usize::MAX),
        "every feasible grid price must be assigned a winner set"
    );

    Ok(PriceSchedule {
        prices,
        set_of,
        sets: winner_sets,
    })
}

/// The naive per-grid-price reference behind [`Strategy::Naive`].
/// Deliberately shares *no* machinery with the optimized engine beyond the
/// selectors it is pinned against: it materializes the dense covering
/// problem and converts it, rather than trusting the direct CSR build.
fn build_naive_inner(instance: &Instance, rule: SelectionRule) -> Result<PriceSchedule, McsError> {
    let dense = instance.coverage_problem();
    dense.check_feasible()?;
    let cover = SparseCoverage::from_dense(&dense);
    let sorted = workers_by_price(instance);
    let requirements = dense.requirements().to_vec();

    let mut prices = Vec::new();
    let mut set_of = Vec::new();
    let mut sets: Vec<Vec<WorkerId>> = Vec::new();
    for p in instance.price_grid().iter() {
        let candidates: Vec<WorkerId> = sorted
            .iter()
            .copied()
            .take_while(|&w| instance.bids().bid(w).price() <= p)
            .collect();
        // Feasible at this price?
        let mut residual = requirements.clone();
        for &w in &candidates {
            for (j, q) in cover.row(w.index()) {
                residual[j] -= q;
            }
        }
        if residual.iter().any(|&r| r > COVER_EPS) {
            continue;
        }
        let winners = match rule {
            SelectionRule::MarginalCoverage => {
                select_marginal_eager(&candidates, &cover, &requirements)?
            }
            SelectionRule::StaticTotal => select_static(&candidates, &cover, &requirements)?,
        };
        let idx = sets.iter().position(|s| *s == winners).unwrap_or_else(|| {
            sets.push(winners);
            sets.len() - 1
        });
        prices.push(p);
        set_of.push(idx);
    }
    if prices.is_empty() {
        return Err(McsError::NoFeasiblePrice {
            required_price: instance.bids().max_price().unwrap_or(instance.cmax()),
            grid_max: instance.price_grid().max(),
        });
    }
    Ok(PriceSchedule {
        prices,
        set_of,
        sets,
    })
}

/// The exact output distribution of a differentially private auction: the
/// exponential-mechanism PMF over a schedule's feasible prices.
#[derive(Debug, Clone, PartialEq)]
pub struct PricePmf {
    schedule: PriceSchedule,
    probs: Vec<f64>,
}

impl PricePmf {
    /// Number of feasible prices (same as `schedule().len()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` if the PMF has no support (never when built through
    /// [`crate::ScheduleEngine`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Pairs a schedule with already-normalized probabilities.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or the probabilities do not sum to 1
    /// (within 1e-6).
    pub fn new(schedule: PriceSchedule, probs: Vec<f64>) -> Self {
        assert_eq!(schedule.len(), probs.len(), "pmf length mismatch");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "pmf does not sum to 1 (got {total})"
        );
        PricePmf { schedule, probs }
    }

    /// The underlying schedule.
    #[inline]
    pub fn schedule(&self) -> &PriceSchedule {
        &self.schedule
    }

    /// Probabilities aligned with `schedule().prices()`.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Samples one auction outcome (price + its winner set).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AuctionOutcome {
        // Inverse-transform over the exact PMF.
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut idx = self.probs.len() - 1;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                idx = i;
                break;
            }
        }
        self.schedule.outcome(idx)
    }

    /// The exact expected total payment `E[x · |S(x)|]` in currency units.
    pub fn expected_total_payment(&self) -> f64 {
        (0..self.schedule.len())
            .map(|i| self.probs[i] * self.schedule.total_payment(i).as_f64())
            .sum()
    }

    /// The exact standard deviation of the total payment.
    pub fn total_payment_std(&self) -> f64 {
        let mean = self.expected_total_payment();
        let var: f64 = (0..self.schedule.len())
            .map(|i| {
                let r = self.schedule.total_payment(i).as_f64();
                self.probs[i] * (r - mean) * (r - mean)
            })
            .sum();
        var.sqrt()
    }

    /// Samples a price index directly from logits (for tests comparing the
    /// exact PMF with Gumbel-style sampling paths).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let logits: Vec<f64> = self.probs.iter().map(|p| p.ln()).collect();
        sample_logits(rng, &logits)
    }
}

/// Builds a PMF from per-price logits (used by the exponential mechanism).
pub(crate) fn pmf_from_logits(schedule: PriceSchedule, logits: &[f64]) -> PricePmf {
    let probs = softmax_from_logits(logits);
    PricePmf { schedule, probs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Coarsening, ScheduleEngine};
    use mcs_types::{Bid, Bundle, SkillMatrix};

    /// Test shorthand for the unified engine.
    fn build(
        inst: &Instance,
        rule: SelectionRule,
        strategy: Strategy,
    ) -> Result<PriceSchedule, McsError> {
        ScheduleEngine::new(rule).strategy(strategy).build(inst)
    }

    /// Four workers / two tasks instance used across the tests.
    ///
    /// q values: θ 0.9 → 0.64, θ 0.8 → 0.36, θ 0.95 → 0.81.
    /// δ = 0.4 → Q_j ≈ 1.833.
    fn instance() -> Instance {
        let bids = vec![
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(12.0),
            ),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
            Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(14.0)),
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(18.0),
            ),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.9, 0.9],
            vec![0.9, 0.5],
            vec![0.5, 0.95],
            vec![0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(2)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    /// A CSR cover for selector-level tests that address workers 0..n by
    /// raw row index.
    fn cover_of(rows: Vec<Vec<(usize, f64)>>, req: &[f64]) -> SparseCoverage {
        SparseCoverage::from_rows(req.len(), rows, req.to_vec()).unwrap()
    }

    #[test]
    fn schedule_covers_all_feasible_prices() {
        let s = build(&instance(), SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        // Coverage per task needs ≈1.833. Task 0: w1 (0.64) + w0 (0.64) +
        // w3 (0.64) = 1.92 → needs all three of workers {0,1,3}; task 1:
        // w0 (0.64) + w2 (0.81) + w3 (0.64) = 2.09. The cheapest covering
        // prefix must include worker 3 at price 18 → feasible from 18.
        assert_eq!(s.prices().first().copied(), Some(Price::from_f64(18.0)));
        assert_eq!(s.prices().last().copied(), Some(Price::from_f64(20.0)));
        // Every price maps to a winner set that satisfies the constraints.
        let cover = instance().coverage_problem();
        for i in 0..s.len() {
            assert!(cover.is_satisfied_by(s.winners(i).iter().copied()));
        }
    }

    #[test]
    fn winner_sets_monotone_price_needs_everyone_here() {
        let s = build(&instance(), SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        // In this tight instance every covering set needs workers 0,1,2,3.
        for i in 0..s.len() {
            assert_eq!(
                s.winners(i),
                &[WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3)]
            );
        }
    }

    #[test]
    fn infeasible_pool_is_detected() {
        // One weak worker cannot reach Q ≈ 1.833.
        let inst = Instance::builder(1)
            .bids(vec![Bid::new(
                Bundle::new(vec![TaskId(0)]),
                Price::from_f64(10.0),
            )])
            .skills(SkillMatrix::from_rows(vec![vec![0.9]]).unwrap())
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert!(matches!(
            build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto),
            Err(McsError::Infeasible { .. })
        ));
    }

    #[test]
    fn grid_below_required_price_errors() {
        let bids = vec![
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(19.0)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(19.5)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(20.0)),
        ];
        let inst = Instance::builder(1)
            .bids(bids)
            .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap())
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 15.0, 0.5) // tops out below 20
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert!(matches!(
            build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto),
            Err(McsError::NoFeasiblePrice { .. })
        ));
    }

    #[test]
    fn compressed_matches_naive_marginal() {
        let inst = instance();
        let fast = build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        let naive = build(&inst, SelectionRule::MarginalCoverage, Strategy::Naive).unwrap();
        assert_eq!(fast.prices(), naive.prices());
        for i in 0..fast.len() {
            assert_eq!(fast.winners(i), naive.winners(i), "price {}", fast.price(i));
        }
    }

    #[test]
    fn compressed_matches_naive_static() {
        let inst = instance();
        let fast = build(&inst, SelectionRule::StaticTotal, Strategy::Auto).unwrap();
        let naive = build(&inst, SelectionRule::StaticTotal, Strategy::Naive).unwrap();
        assert_eq!(fast.prices(), naive.prices());
        for i in 0..fast.len() {
            assert_eq!(fast.winners(i), naive.winners(i));
        }
    }

    #[test]
    fn marginal_greedy_prefers_high_residual_gain() {
        // Three workers on one task, requirement 1.0:
        // w0 q=0.64, w1 q=0.49, w2 q=0.36 — greedy takes w0 then w1.
        let candidates = vec![WorkerId(0), WorkerId(1), WorkerId(2)];
        let req = [1.0];
        let cover = cover_of(
            vec![
                vec![(0usize, 0.64)],
                vec![(0usize, 0.49)],
                vec![(0usize, 0.36)],
            ],
            &req,
        );
        let winners = select_marginal(&candidates, &cover, &req).unwrap();
        assert_eq!(winners, vec![WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn marginal_greedy_uses_residual_not_static_totals() {
        // Two tasks. w0 covers task 0 fully (1.0). w1 has the biggest
        // static total but all of it on task 0 (1.5 — capped at the 1.0
        // requirement); w2 covers task 1 with 0.6. Marginal gains tie w0
        // and w1 at 1.0, the tie falls to the earlier candidate w0, and the
        // residual-aware rule then needs only w2: two winners. The static
        // rule starts with w1, whose surplus on task 0 is wasted, and ends
        // with all three.
        let candidates = vec![WorkerId(0), WorkerId(1), WorkerId(2)];
        let req = [1.0, 0.5];
        let cover = cover_of(
            vec![
                vec![(0usize, 1.0)],
                vec![(0usize, 1.5)],
                vec![(1usize, 0.6)],
            ],
            &req,
        );
        let marginal = select_marginal(&candidates, &cover, &req).unwrap();
        assert_eq!(marginal, vec![WorkerId(0), WorkerId(2)]);
        let static_sel = select_static(&candidates, &cover, &req).unwrap();
        assert_eq!(static_sel, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
    }

    #[test]
    fn lazy_matches_eager_on_adversarial_tie_patterns() {
        // Exact ties (same q on the same task), staleness (gains that decay
        // at different rates), and exhausted candidates — the cases lazy
        // evaluation must get right to replicate the eager sequence.
        type Case = (Vec<Vec<(usize, f64)>>, Vec<f64>);
        let cases: Vec<Case> = vec![
            // All-tied single task.
            (vec![vec![(0, 0.5)]; 4], vec![1.2]),
            // Two tasks, one dominant generalist whose gain goes stale.
            (
                vec![
                    vec![(0, 0.9), (1, 0.9)],
                    vec![(0, 0.8)],
                    vec![(1, 0.8)],
                    vec![(0, 0.3), (1, 0.3)],
                ],
                vec![1.0, 1.0],
            ),
            // A candidate whose whole contribution evaporates mid-run.
            (
                vec![vec![(0, 1.0)], vec![(0, 0.4)], vec![(1, 0.7)]],
                vec![1.0, 0.5],
            ),
            // Mixed magnitudes with repeated values across tasks.
            (
                vec![
                    vec![(0, 0.25), (1, 0.25), (2, 0.25)],
                    vec![(0, 0.25), (2, 0.5)],
                    vec![(1, 0.75)],
                    vec![(2, 0.25)],
                    vec![(0, 0.5), (1, 0.25)],
                ],
                vec![0.75, 1.0, 0.75],
            ),
        ];
        for (rows, req) in cases {
            let candidates: Vec<WorkerId> = (0..rows.len()).map(|i| WorkerId(i as u32)).collect();
            let cover = cover_of(rows.clone(), &req);
            assert_eq!(
                select_marginal(&candidates, &cover, &req),
                select_marginal_eager(&candidates, &cover, &req),
                "rows {rows:?} req {req:?}"
            );
        }
    }

    #[test]
    fn lazy_ties_fall_to_earliest_candidate() {
        // Candidate order is the tie-break, not worker id: feed candidates
        // in reverse-id order and check the first listed one wins the tie.
        let candidates = vec![WorkerId(2), WorkerId(0), WorkerId(1)];
        let req = [0.9];
        let cover = cover_of(
            vec![
                vec![(0usize, 0.5)],
                vec![(0usize, 0.5)],
                vec![(0usize, 0.5)],
            ],
            &req,
        );
        let lazy = select_marginal(&candidates, &cover, &req).unwrap();
        let eager = select_marginal_eager(&candidates, &cover, &req).unwrap();
        assert_eq!(lazy, eager);
        // Two winners cover 0.9; the tie-break picks candidates[0] = w2
        // and candidates[1] = w0 (output is id-sorted).
        assert_eq!(lazy, vec![WorkerId(0), WorkerId(2)]);
    }

    #[test]
    fn exhausted_candidates_return_shortfall_not_panic() {
        // One weak worker against an uncoverable requirement: every
        // selector reports the typed shortfall.
        let candidates = vec![WorkerId(0)];
        let req = [1.0];
        let cover = cover_of(vec![vec![(0usize, 0.3)]], &req);
        for result in [
            select_marginal(&candidates, &cover, &req),
            select_marginal_eager(&candidates, &cover, &req),
            select_static(&candidates, &cover, &req),
        ] {
            match result {
                Err(McsError::CoverageShortfall {
                    task,
                    required,
                    achieved,
                }) => {
                    assert_eq!(task, TaskId(0));
                    assert!((required - 1.0).abs() < 1e-12);
                    assert!(achieved <= 0.3 + 1e-12);
                }
                other => panic!("expected CoverageShortfall, got {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_matches_per_interval_selection_across_prefixes() {
        // Prefix 3's newcomer is too weak to divert the incumbents (replay
        // confirms); prefix 4's newcomer strictly dominates every step and
        // forces the warm-started re-selection. Both paths must agree with
        // selecting each prefix from scratch.
        let req = vec![1.0, 0.2];
        let rows = vec![
            vec![(0usize, 0.6)],
            vec![(0usize, 0.6), (1usize, 0.2)],
            vec![(1usize, 0.5)],
            vec![(0usize, 1.0), (1usize, 1.0)],
        ];
        let cover = cover_of(rows, &req);
        let sorted: Vec<WorkerId> = (0..4u32).map(WorkerId).collect();
        let prefixes = [2usize, 3, 4];
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let swept = sweep_select(rule, &cover, &req, &sorted, &prefixes).unwrap();
            for (k, &p) in prefixes.iter().enumerate() {
                let scratch = match rule {
                    SelectionRule::MarginalCoverage => {
                        select_marginal(&sorted[..p], &cover, &req).unwrap()
                    }
                    SelectionRule::StaticTotal => {
                        select_static(&sorted[..p], &cover, &req).unwrap()
                    }
                };
                assert_eq!(swept[k], scratch, "rule {rule:?} prefix {p}");
            }
            // The dominant newcomer at prefix 4 really does change the
            // marginal winner set, so the divergent path was exercised.
            if rule == SelectionRule::MarginalCoverage {
                assert_ne!(swept[1], swept[2]);
                assert_eq!(swept[2], vec![WorkerId(3)]);
            }
        }
    }

    #[test]
    fn every_strategy_agrees_on_the_reference_instance() {
        let inst = instance();
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let reference = build(&inst, rule, Strategy::Auto).unwrap();
            for strategy in Strategy::ALL {
                let s = build(&inst, rule, strategy).unwrap();
                // The naive reference rebuilds `set_of` from scratch, so
                // compare observationally rather than structurally.
                assert_eq!(s.prices(), reference.prices(), "{rule:?}/{strategy:?}");
                for i in 0..s.len() {
                    assert_eq!(
                        s.winners(i),
                        reference.winners(i),
                        "{rule:?}/{strategy:?}/{i}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_schedule_over_losers_matches_manual_requirements() {
        // Pretend workers 0 and 1 already delivered; the residual auction
        // over workers {2, 3} must cover what is left of each task.
        let inst = instance();
        let cover = inst.coverage_problem();
        let residual: Vec<f64> = (0..inst.num_tasks())
            .map(|j| {
                let t = TaskId(j as u32);
                cover.requirement(t) - cover.q(WorkerId(0), t) - cover.q(WorkerId(1), t)
            })
            .collect();
        let eligible = vec![WorkerId(2), WorkerId(3)];
        let s = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build_residual(&inst, &residual, &eligible)
            .unwrap();
        assert!(!s.is_empty());
        for i in 0..s.len() {
            // Winners come only from the eligible pool and close the
            // residual requirements.
            let mut coverage = vec![0.0f64; inst.num_tasks()];
            for &w in s.winners(i) {
                assert!(eligible.contains(&w), "ineligible winner {w}");
                for (j, c) in coverage.iter_mut().enumerate() {
                    *c += cover.q(w, TaskId(j as u32));
                }
            }
            for (j, (&c, &need)) in coverage.iter().zip(&residual).enumerate() {
                assert!(c >= need.max(0.0) - 1e-9, "task {j}: {c} < {need}");
            }
        }
    }

    #[test]
    fn residual_schedule_with_satisfied_requirements_is_empty_sets() {
        let inst = instance();
        let residual = vec![0.0; inst.num_tasks()];
        let s = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build_residual(&inst, &residual, &[WorkerId(0)])
            .unwrap();
        assert_eq!(s.len(), inst.price_grid().len());
        for i in 0..s.len() {
            assert!(s.winners(i).is_empty());
            assert_eq!(s.total_payment(i), Price::ZERO);
        }
    }

    #[test]
    fn residual_schedule_reports_shortfall_for_weak_pool() {
        let inst = instance();
        let cover = inst.coverage_problem();
        let residual: Vec<f64> = (0..inst.num_tasks())
            .map(|j| cover.requirement(TaskId(j as u32)))
            .collect();
        // Worker 1 alone (task 0 only, q = 0.64) cannot close full
        // requirements on both tasks.
        let err = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build_residual(&inst, &residual, &[WorkerId(1)])
            .unwrap_err();
        assert!(matches!(err, McsError::CoverageShortfall { .. }));
    }

    #[test]
    fn residual_schedule_validates_inputs() {
        let inst = instance();
        let engine = ScheduleEngine::new(SelectionRule::MarginalCoverage);
        assert!(matches!(
            engine.build_residual(&inst, &[1.0], &[]),
            Err(McsError::DimensionMismatch { .. })
        ));
        let residual = vec![0.0; inst.num_tasks()];
        assert!(matches!(
            engine.build_residual(&inst, &residual, &[WorkerId(99)]),
            Err(McsError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn residual_strategies_agree_over_a_partial_pool() {
        let inst = instance();
        let cover = inst.coverage_problem();
        let residual: Vec<f64> = (0..inst.num_tasks())
            .map(|j| {
                let t = TaskId(j as u32);
                cover.requirement(t) - cover.q(WorkerId(0), t)
            })
            .collect();
        let eligible = vec![WorkerId(1), WorkerId(2), WorkerId(3)];
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let reference = ScheduleEngine::new(rule)
                .build_residual(&inst, &residual, &eligible)
                .unwrap();
            for strategy in Strategy::ALL {
                let s = ScheduleEngine::new(rule)
                    .strategy(strategy)
                    .build_residual(&inst, &residual, &eligible)
                    .unwrap();
                assert_eq!(s.prices(), reference.prices(), "{rule:?}/{strategy:?}");
                for i in 0..s.len() {
                    assert_eq!(
                        s.winners(i),
                        reference.winners(i),
                        "{rule:?}/{strategy:?}/{i}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_total_payment_is_none_only_when_empty() {
        let inst = instance();
        let s = build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        // Four winners at every price; the cheapest feasible price is 18.
        assert_eq!(s.min_total_payment(), Some(Price::from_f64(72.0)));
        let empty = PriceSchedule {
            prices: Vec::new(),
            set_of: Vec::new(),
            sets: Vec::new(),
        };
        assert_eq!(empty.min_total_payment(), None);
    }

    #[test]
    fn pmf_sums_to_one_and_samples_in_support() {
        let inst = instance();
        let s = build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        let n = s.len();
        let logits: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
        let pmf = pmf_from_logits(s, &logits);
        assert!((pmf.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut r = mcs_num::rng::seeded(3);
        for _ in 0..100 {
            let o = pmf.sample(&mut r);
            assert!(pmf.schedule().prices().contains(&o.price()));
            assert!(!o.winners().is_empty());
        }
    }

    #[test]
    fn pmf_expected_payment_matches_hand_computation() {
        let inst = instance();
        let s = build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        let n = s.len();
        let probs = vec![1.0 / n as f64; n];
        let payments: Vec<f64> = (0..n).map(|i| s.total_payment(i).as_f64()).collect();
        let pmf = PricePmf::new(s, probs);
        let expect: f64 = payments.iter().sum::<f64>() / n as f64;
        assert!((pmf.expected_total_payment() - expect).abs() < 1e-9);
        assert!(pmf.total_payment_std() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn pmf_rejects_unnormalized() {
        let inst = instance();
        let s = build(&inst, SelectionRule::MarginalCoverage, Strategy::Auto).unwrap();
        let n = s.len();
        let _ = PricePmf::new(s, vec![0.9 / n as f64; n]);
    }

    #[test]
    fn workers_sorted_by_price_then_id() {
        let inst = instance();
        let order = workers_by_price(&inst);
        assert_eq!(
            order,
            vec![WorkerId(1), WorkerId(0), WorkerId(2), WorkerId(3)]
        );
    }

    /// Per-case `(worker rows, requirements)` in `(task, quality)` form.
    type TieCase = (Vec<Vec<(usize, f64)>>, Vec<f64>);

    /// The adversarial selector cases: exact ties, staleness, evaporating
    /// contributions, repeated magnitudes.
    fn tie_pattern_cases() -> Vec<TieCase> {
        vec![
            (vec![vec![(0, 0.5)]; 4], vec![1.2]),
            (
                vec![
                    vec![(0, 0.9), (1, 0.9)],
                    vec![(0, 0.8)],
                    vec![(1, 0.8)],
                    vec![(0, 0.3), (1, 0.3)],
                ],
                vec![1.0, 1.0],
            ),
            (
                vec![vec![(0, 1.0)], vec![(0, 0.4)], vec![(1, 0.7)]],
                vec![1.0, 0.5],
            ),
            (
                vec![
                    vec![(0, 0.25), (1, 0.25), (2, 0.25)],
                    vec![(0, 0.25), (2, 0.5)],
                    vec![(1, 0.75)],
                    vec![(2, 0.25)],
                    vec![(0, 0.5), (1, 0.25)],
                ],
                vec![0.75, 1.0, 0.75],
            ),
        ]
    }

    #[test]
    fn lockstep_matches_celf_sequence_on_every_prefix() {
        for (rows, req) in tie_pattern_cases() {
            let sorted: Vec<WorkerId> = (0..rows.len()).map(|i| WorkerId(i as u32)).collect();
            let cover = cover_of(rows.clone(), &req);
            let init: Vec<f64> = sorted
                .iter()
                .map(|&w| marginal_gain(&cover, w, &req))
                .collect();
            let celf = RankedCelf::new(&cover, &sorted, &init);
            // Single-lane runs: selection *order* must match too, not
            // just the set.
            for prefix in 1..=sorted.len() {
                let ranked = celf
                    .lockstep(&[prefix], &req)
                    .map(|mut seqs| seqs.pop().expect("one prefix in, one sequence out"));
                let reference = celf_sequence(&sorted[..prefix], &cover, &init[..prefix], &req);
                assert_eq!(
                    ranked, reference,
                    "rows {rows:?} req {req:?} prefix {prefix}"
                );
            }
            // All prefixes in lockstep must agree with the per-prefix
            // reference as a whole, including which prefix errors first.
            let all: Vec<usize> = (1..=sorted.len()).collect();
            let expected: Result<Vec<Vec<WorkerId>>, McsError> = all
                .iter()
                .map(|&p| celf_sequence(&sorted[..p], &cover, &init[..p], &req))
                .collect();
            assert_eq!(
                celf.lockstep(&all, &req),
                expected,
                "rows {rows:?} req {req:?}"
            );
        }
    }

    #[test]
    fn lockstep_chunks_past_the_lane_limit() {
        // 130 near-identical single-task workers, prefixes 61..=130: more
        // prefixes than the 64-lane winner mask holds, all feasible, with
        // exact gain ties everywhere — the chunk seam must not change any
        // sequence.
        let n = 130usize;
        let req = vec![1.0];
        let rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| vec![(0usize, 0.03 + 0.002 * (i % 5) as f64)])
            .collect();
        let cover = cover_of(rows, &req);
        let sorted: Vec<WorkerId> = (0..n as u32).map(WorkerId).collect();
        let init: Vec<f64> = sorted
            .iter()
            .map(|&w| marginal_gain(&cover, w, &req))
            .collect();
        let celf = RankedCelf::new(&cover, &sorted, &init);
        let all: Vec<usize> = (61..=n).collect();
        assert!(all.len() > LOCKSTEP_LANES);
        let expected: Result<Vec<Vec<WorkerId>>, McsError> = all
            .iter()
            .map(|&p| celf_sequence(&sorted[..p], &cover, &init[..p], &req))
            .collect();
        assert_eq!(celf.lockstep(&all, &req), expected);
    }

    #[test]
    fn indexed_sweep_matches_sweep_select_across_prefixes() {
        // Same fixture as the incremental-sweep test: prefix 3 confirms,
        // prefix 4 diverges, so both indexed paths get exercised.
        let req = vec![1.0, 0.2];
        let rows = vec![
            vec![(0usize, 0.6)],
            vec![(0usize, 0.6), (1usize, 0.2)],
            vec![(1usize, 0.5)],
            vec![(0usize, 1.0), (1usize, 1.0)],
        ];
        let cover = cover_of(rows, &req);
        let sorted: Vec<WorkerId> = (0..4u32).map(WorkerId).collect();
        let prefixes = [2usize, 3, 4];
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let indexed = indexed_sweep(rule, &cover, &req, &sorted, &prefixes).unwrap();
            let swept = sweep_select(rule, &cover, &req, &sorted, &prefixes).unwrap();
            assert_eq!(indexed, swept, "rule {rule:?}");
        }
    }

    /// Six identical single-task workers at distinct prices: four
    /// bidding-price intervals hold grid prices, so coarsening has
    /// something to skip.
    fn staircase_instance() -> Instance {
        let bids: Vec<Bid> = [10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
            .iter()
            .map(|&p| Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(p)))
            .collect();
        let skills = SkillMatrix::from_rows(vec![vec![0.9]; 6]).unwrap();
        Instance::builder(1)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    #[test]
    fn coarsening_off_and_stride_one_are_the_exact_schedule() {
        let inst = staircase_instance();
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let exact = build(&inst, rule, Strategy::Indexed).unwrap();
            for coarsening in [
                Coarsening::Off,
                Coarsening::Stride(0),
                Coarsening::Stride(1),
            ] {
                let s = ScheduleEngine::new(rule)
                    .strategy(Strategy::Indexed)
                    .coarsening(coarsening)
                    .build(&inst)
                    .unwrap();
                assert_eq!(s, exact, "{rule:?}/{coarsening:?}");
            }
        }
    }

    #[test]
    fn coarsened_schedule_respects_the_documented_bound() {
        let inst = staircase_instance();
        let cover = inst.coverage_problem();
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let exact = build(&inst, rule, Strategy::Auto).unwrap();
            for stride in [2usize, 3, 10] {
                for strategy in [Strategy::Auto, Strategy::Incremental, Strategy::Indexed] {
                    let coarse = ScheduleEngine::new(rule)
                        .strategy(strategy)
                        .coarsening(Coarsening::Stride(stride))
                        .build(&inst)
                        .unwrap();
                    // Same feasible price set, fewer distinct winner sets.
                    assert_eq!(coarse.prices(), exact.prices());
                    assert!(coarse.num_distinct_sets() <= exact.num_distinct_sets());
                    // First and last intervals are always evaluated.
                    assert_eq!(coarse.winners(0), exact.winners(0));
                    assert_eq!(
                        coarse.winners(coarse.len() - 1),
                        exact.winners(exact.len() - 1)
                    );
                    for i in 0..coarse.len() {
                        // Every winner set is feasible and price-feasible.
                        assert!(cover.is_satisfied_by(coarse.winners(i).iter().copied()));
                        for &w in coarse.winners(i) {
                            assert!(inst.bids().bid(w).price() <= coarse.price(i));
                        }
                        // Each set is the *exact* set of some evaluated
                        // price at or below this one — the reuse bound
                        // R_coarse(p) = (p/r)·R_exact(r).
                        assert!(
                            (0..=i).any(|j| coarse.winners(i) == exact.winners(j)),
                            "{rule:?}/{strategy:?} stride {stride} price {}",
                            coarse.price(i)
                        );
                    }
                    // The coarse minimum never undercuts the exact one.
                    assert!(coarse.min_total_payment() >= exact.min_total_payment());
                }
            }
        }
    }
}
