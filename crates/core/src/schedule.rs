//! Per-price winner-set schedules (Algorithm 1, lines 1–15) and the exact
//! price PMF of the exponential mechanism.

use rand::Rng;

use mcs_num::{sample_logits, softmax_from_logits};
use mcs_types::{CoverageProblem, Instance, McsError, Price, TaskId, WorkerId};

use crate::outcome::AuctionOutcome;

/// Residual coverage below this threshold counts as satisfied.
const COVER_EPS: f64 = 1e-9;

/// Which winner-selection rule fills each price's winner set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionRule {
    /// Algorithm 1's greedy rule: each step picks the worker with the
    /// largest *marginal* coverage `Σ_j min(Q'_j, q_ij)` against the
    /// current residual.
    MarginalCoverage,
    /// The §VII-A baseline: workers are taken in descending order of their
    /// *static* total score `Σ_j q_ij`, ignoring how much of it is still
    /// needed.
    StaticTotal,
}

/// The winner set for every feasible candidate price.
///
/// Winner sets are constant on the interval between two consecutive bidding
/// prices, so the schedule stores one distinct set per non-empty interval
/// and maps each grid price to its interval — this is exactly the
/// compression that makes Algorithm 1's complexity independent of `|P|`
/// (Theorem 5).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceSchedule {
    /// Feasible grid prices, ascending (the suffix of `P` at which the
    /// error-bound constraints are satisfiable).
    prices: Vec<Price>,
    /// `set_of[i]` indexes into `sets` for `prices[i]`.
    set_of: Vec<usize>,
    /// Distinct winner sets, each sorted by worker id.
    sets: Vec<Vec<WorkerId>>,
}

impl PriceSchedule {
    /// Number of feasible candidate prices `|P|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Returns `true` if no price is feasible (never — construction fails
    /// instead).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// The feasible prices, ascending.
    #[inline]
    pub fn prices(&self) -> &[Price] {
        &self.prices
    }

    /// The `idx`-th feasible price.
    #[inline]
    pub fn price(&self, idx: usize) -> Price {
        self.prices[idx]
    }

    /// The winner set at the `idx`-th feasible price.
    #[inline]
    pub fn winners(&self, idx: usize) -> &[WorkerId] {
        &self.sets[self.set_of[idx]]
    }

    /// The total payment `x · |S(x)|` at the `idx`-th feasible price.
    pub fn total_payment(&self, idx: usize) -> Price {
        self.prices[idx] * self.winners(idx).len()
    }

    /// All total payments, aligned with [`PriceSchedule::prices`].
    pub fn total_payments(&self) -> Vec<Price> {
        (0..self.len()).map(|i| self.total_payment(i)).collect()
    }

    /// The outcome at the `idx`-th feasible price — the `(price, winners)`
    /// pair a run would produce if the exponential mechanism drew `idx`.
    ///
    /// Lets callers that hold a shared (e.g. cached) schedule materialize
    /// outcomes without re-running winner determination.
    pub fn outcome(&self, idx: usize) -> AuctionOutcome {
        AuctionOutcome::new(self.price(idx), self.winners(idx).to_vec())
    }

    /// The number of *distinct* winner sets stored.
    #[inline]
    pub fn num_distinct_sets(&self) -> usize {
        self.sets.len()
    }

    /// The smallest total payment over all feasible prices.
    ///
    /// Construction never yields an empty schedule; if one is produced
    /// through future internal changes this returns [`Price::ZERO`] rather
    /// than panicking.
    pub fn min_total_payment(&self) -> Price {
        (0..self.len())
            .map(|i| self.total_payment(i))
            .min()
            .unwrap_or(Price::ZERO)
    }
}

/// Worker order used throughout Algorithm 1: ascending bidding price, ties
/// by worker id.
pub(crate) fn workers_by_price(instance: &Instance) -> Vec<WorkerId> {
    let mut ids: Vec<WorkerId> = (0..instance.num_workers())
        .map(|i| WorkerId(i as u32))
        .collect();
    ids.sort_by_key(|&w| (instance.bids().bid(w).price(), w));
    ids
}

/// Sparse per-worker coverage rows: `(task index, q_ij)` for bundle tasks
/// with non-zero weight.
pub(crate) fn sparse_rows_of(cover: &CoverageProblem) -> Vec<Vec<(usize, f64)>> {
    (0..cover.num_workers())
        .map(|i| {
            cover
                .worker_row(WorkerId(i as u32))
                .iter()
                .enumerate()
                .filter(|&(_, &q)| q > 0.0)
                .map(|(j, &q)| (j, q))
                .collect()
        })
        .collect()
}

/// A cached marginal-coverage bound for one candidate, ordered so that a
/// [`std::collections::BinaryHeap`] pops the candidate the eager rescan
/// would pick: largest gain first, ties on the *earliest* candidate index
/// (the cheapest bidder, then smallest worker id).
#[derive(Debug, Clone, Copy)]
struct LazyGain {
    /// Last-computed marginal coverage — an upper bound on the current one.
    gain: f64,
    /// Index into the candidate slice.
    ci: usize,
}

impl PartialEq for LazyGain {
    fn eq(&self, other: &Self) -> bool {
        self.ci == other.ci && self.gain.total_cmp(&other.gain).is_eq()
    }
}

impl Eq for LazyGain {}

impl PartialOrd for LazyGain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LazyGain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Gains are finite and positive here (entries at or below
        // `COVER_EPS` are never pushed), so `total_cmp` agrees with the
        // eager implementation's `>` comparisons.
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.ci.cmp(&self.ci))
    }
}

/// The typed error for a candidate pool that ran dry with coverage still
/// outstanding: names the first task whose requirement is unmet.
///
/// Callers establish feasibility before selecting, so reaching this means
/// either an internal inconsistency or an explicitly partial (residual)
/// selection — both must surface as data, not a panic, now that fault
/// injection can drive the schedule path with arbitrary coverage states.
fn coverage_shortfall(residual: &[f64], requirements: &[f64]) -> McsError {
    for (j, &r) in residual.iter().enumerate() {
        if r > COVER_EPS {
            return McsError::CoverageShortfall {
                task: TaskId(j as u32),
                required: requirements[j].max(0.0),
                achieved: (requirements[j] - r).max(0.0),
            };
        }
    }
    McsError::CoverageShortfall {
        task: TaskId(0),
        required: 0.0,
        achieved: 0.0,
    }
}

/// Greedy winner selection among `candidates` (Algorithm 1, lines 8–13),
/// evaluated lazily (CELF): each candidate's last-computed marginal
/// coverage is kept in a max-heap and only the top entry is re-evaluated.
/// Because the residual requirements only shrink, coverage gains are
/// submodular — a stale cached gain is always an *upper bound* — so the
/// popped candidate can be accepted as soon as its fresh gain still beats
/// the next cached bound. Picks the exact winner sequence of the eager
/// rescan ([`select_marginal_eager`]), tie-breaking included.
///
/// # Errors
///
/// [`McsError::CoverageShortfall`] if the candidates cannot satisfy the
/// requirements (callers normally establish feasibility first).
fn select_marginal(
    candidates: &[WorkerId],
    rows: &[Vec<(usize, f64)>],
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().sum();
    let mut winners = Vec::new();

    // Identical per-row summation order to the eager rescan, so gains are
    // bit-for-bit the floats the eager implementation compares.
    let gain_of = |w: WorkerId, residual: &[f64]| -> f64 {
        rows[w.index()]
            .iter()
            .map(|&(j, q)| q.min(residual[j].max(0.0)))
            .sum()
    };

    let mut heap: std::collections::BinaryHeap<LazyGain> = candidates
        .iter()
        .enumerate()
        .map(|(ci, &w)| LazyGain {
            gain: gain_of(w, &residual),
            ci,
        })
        .filter(|e| e.gain > COVER_EPS)
        .collect();

    while remaining > COVER_EPS {
        let Some(top) = heap.pop() else {
            return Err(coverage_shortfall(&residual, requirements));
        };
        let w = candidates[top.ci];
        let fresh = gain_of(w, &residual);
        if fresh <= COVER_EPS {
            // The candidate's remaining contribution evaporated; gains
            // never grow, so she can be dropped for good.
            continue;
        }
        let current = LazyGain {
            gain: fresh,
            ci: top.ci,
        };
        // Every other cached entry is an upper bound on its true gain, so
        // `current` winning against the best cached bound means it would
        // win the eager rescan too (on ties the smaller candidate index
        // prevails, exactly like the eager strict `>`).
        if let Some(&next) = heap.peek() {
            if current < next {
                heap.push(current);
                continue;
            }
        }
        winners.push(w);
        for &(j, q) in &rows[w.index()] {
            let take = q.min(residual[j].max(0.0));
            residual[j] -= take;
            remaining -= take;
        }
    }
    winners.sort_unstable();
    Ok(winners)
}

/// The pre-lazy reference selector: a full rescan of all candidates on
/// every selection round. Kept as the ground truth the CELF engine is
/// proptested against, and as the baseline the `schedule` bench measures
/// speedups from.
fn select_marginal_eager(
    candidates: &[WorkerId],
    rows: &[Vec<(usize, f64)>],
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().sum();
    let mut used = vec![false; candidates.len()];
    let mut winners = Vec::new();
    while remaining > COVER_EPS {
        let mut best: Option<(usize, f64)> = None;
        for (ci, &w) in candidates.iter().enumerate() {
            if used[ci] {
                continue;
            }
            let gain: f64 = rows[w.index()]
                .iter()
                .map(|&(j, q)| q.min(residual[j].max(0.0)))
                .sum();
            if gain <= COVER_EPS {
                continue;
            }
            // Strict `>` keeps ties on the earliest candidate — i.e. the
            // cheapest bidder, then smallest worker id.
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((ci, gain));
            }
        }
        let Some((ci, _)) = best else {
            return Err(coverage_shortfall(&residual, requirements));
        };
        used[ci] = true;
        let w = candidates[ci];
        winners.push(w);
        for &(j, q) in &rows[w.index()] {
            let take = q.min(residual[j].max(0.0));
            residual[j] -= take;
            remaining -= take;
        }
    }
    winners.sort_unstable();
    Ok(winners)
}

/// Baseline winner selection: descending static score `Σ_j q_ij`, ties by
/// worker id.
fn select_static(
    candidates: &[WorkerId],
    rows: &[Vec<(usize, f64)>],
    requirements: &[f64],
) -> Result<Vec<WorkerId>, McsError> {
    let mut order: Vec<WorkerId> = candidates.to_vec();
    let total = |w: WorkerId| -> f64 { rows[w.index()].iter().map(|&(_, q)| q).sum() };
    order.sort_by(|&a, &b| {
        total(b)
            .partial_cmp(&total(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().sum();
    let mut winners = Vec::new();
    for w in order {
        if remaining <= COVER_EPS {
            break;
        }
        winners.push(w);
        for &(j, q) in &rows[w.index()] {
            let take = q.min(residual[j].max(0.0));
            residual[j] -= take;
            remaining -= take;
        }
    }
    if remaining > COVER_EPS {
        return Err(coverage_shortfall(&residual, requirements));
    }
    winners.sort_unstable();
    Ok(winners)
}

/// Builds the per-price winner schedule for an instance under a selection
/// rule (Algorithm 1, lines 1–15).
///
/// The feasible price set is the suffix of the instance's grid at or above
/// the cheapest covering prefix of workers; the winner set is recomputed
/// once per bidding-price interval that contains at least one grid price.
///
/// # Errors
///
/// * [`McsError::Infeasible`] — even the full pool cannot satisfy some
///   task's error-bound constraint.
/// * [`McsError::NoFeasiblePrice`] — coverage is possible but only above
///   the top of the price grid.
pub fn build_schedule(instance: &Instance, rule: SelectionRule) -> Result<PriceSchedule, McsError> {
    build_schedule_with(instance, rule, Engine::default())
}

/// Always-serial variant of [`build_schedule`], regardless of the
/// `parallel` feature. Useful for benchmarking the parallel dispatch
/// against a fixed serial baseline within one binary.
pub fn build_schedule_serial(
    instance: &Instance,
    rule: SelectionRule,
) -> Result<PriceSchedule, McsError> {
    build_schedule_with(instance, rule, Engine::Lazy)
}

/// [`build_schedule`] driven by the pre-lazy full-rescan selector. Kept as
/// the reference the CELF engine is validated and benchmarked against; its
/// output is identical, only slower.
pub fn build_schedule_eager(
    instance: &Instance,
    rule: SelectionRule,
) -> Result<PriceSchedule, McsError> {
    build_schedule_with(instance, rule, Engine::EagerRescan)
}

/// Which selector evaluates each price interval's winner set. All engines
/// produce the identical schedule; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// CELF lazy evaluation, serial over intervals.
    Lazy,
    /// CELF lazy evaluation with intervals fanned out over rayon.
    #[cfg(feature = "parallel")]
    LazyParallel,
    /// Full rescan per selection round (the pre-lazy reference).
    EagerRescan,
}

// Not derivable: the default depends on the `parallel` feature, and the
// `LazyParallel` variant does not exist without it.
#[allow(clippy::derivable_impls)]
impl Default for Engine {
    fn default() -> Self {
        #[cfg(feature = "parallel")]
        {
            Engine::LazyParallel
        }
        #[cfg(not(feature = "parallel"))]
        {
            Engine::Lazy
        }
    }
}

fn build_schedule_with(
    instance: &Instance,
    rule: SelectionRule,
    engine: Engine,
) -> Result<PriceSchedule, McsError> {
    let cover = instance.coverage_problem();
    cover.check_feasible()?;
    let requirements: Vec<f64> = (0..cover.num_tasks())
        .map(|j| cover.requirement(TaskId(j as u32)))
        .collect();
    let all = workers_by_price(instance);
    schedule_over(instance, rule, engine, &requirements, &all)
}

/// Builds a per-price winner schedule for a *residual* covering problem:
/// only `eligible` workers may win, and each task needs only the leftover
/// coverage `requirements[j]` (non-positive entries mean already
/// satisfied).
///
/// This is the re-auction primitive behind fault-tolerant platform rounds:
/// after some winners fail to deliver, the platform re-runs Algorithm 1
/// over the losers' standing bids against the residual constraints
/// `Q'_j = Q_j − Σ_delivered q_ij`.
///
/// If every requirement is already satisfied the schedule covers the whole
/// price grid with an empty winner set (recruiting nobody is feasible at
/// any price).
///
/// # Errors
///
/// * [`McsError::DimensionMismatch`] — `requirements` is not one entry per
///   task.
/// * [`McsError::WorkerOutOfRange`] — an eligible id is out of range.
/// * [`McsError::CoverageShortfall`] — the eligible pool cannot close some
///   task's residual requirement.
/// * [`McsError::NoFeasiblePrice`] — the eligible pool covers, but only at
///   a price above the top of the grid.
pub fn build_residual_schedule(
    instance: &Instance,
    rule: SelectionRule,
    requirements: &[f64],
    eligible: &[WorkerId],
) -> Result<PriceSchedule, McsError> {
    if requirements.len() != instance.num_tasks() {
        return Err(McsError::DimensionMismatch {
            what: "residual requirement vector",
            expected: instance.num_tasks(),
            actual: requirements.len(),
        });
    }
    for &w in eligible {
        if w.index() >= instance.num_workers() {
            return Err(McsError::WorkerOutOfRange {
                worker: w,
                num_workers: instance.num_workers(),
            });
        }
    }
    let cover = instance.coverage_problem();
    for (j, &need) in requirements.iter().enumerate() {
        if need <= COVER_EPS {
            continue;
        }
        let task = TaskId(j as u32);
        let attainable: f64 = eligible.iter().map(|&w| cover.q(w, task)).sum();
        if attainable < need - COVER_EPS {
            return Err(McsError::CoverageShortfall {
                task,
                required: need,
                achieved: attainable,
            });
        }
    }
    let mut sorted = eligible.to_vec();
    sorted.sort_by_key(|&w| (instance.bids().bid(w).price(), w));
    sorted.dedup();
    schedule_over(instance, rule, Engine::default(), requirements, &sorted)
}

/// The shared schedule engine: Algorithm 1 over an arbitrary (possibly
/// residual) requirement vector and a price-sorted candidate pool.
fn schedule_over(
    instance: &Instance,
    rule: SelectionRule,
    engine: Engine,
    raw_requirements: &[f64],
    sorted: &[WorkerId],
) -> Result<PriceSchedule, McsError> {
    let cover = instance.coverage_problem();
    let rows = sparse_rows_of(&cover);
    let n = sorted.len();
    let k = cover.num_tasks();
    let requirements: Vec<f64> = raw_requirements.iter().map(|r| r.max(0.0)).collect();
    let grid = instance.price_grid();

    // Nothing left to cover: every grid price is trivially feasible with
    // an empty winner set.
    if requirements.iter().sum::<f64>() <= COVER_EPS {
        let prices = grid.to_vec();
        let set_of = vec![0; prices.len()];
        return Ok(PriceSchedule {
            prices,
            set_of,
            sets: vec![Vec::new()],
        });
    }

    // Find the minimal covering prefix of the price-sorted workers.
    let mut running = vec![0.0f64; k];
    let mut deficit: f64 = requirements.iter().sum();
    let mut first_cover: Option<usize> = None;
    for (idx, &w) in sorted.iter().enumerate() {
        for &(j, q) in &rows[w.index()] {
            let need = (requirements[j] - running[j]).max(0.0);
            running[j] += q;
            deficit -= q.min(need);
        }
        if deficit <= COVER_EPS {
            first_cover = Some(idx);
            break;
        }
    }
    // Callers verify feasibility of the pool, so this is unreachable in
    // practice; it still degrades to a typed error rather than a panic.
    let Some(first_cover) = first_cover else {
        for j in 0..k {
            if running[j] < requirements[j] - COVER_EPS {
                return Err(McsError::CoverageShortfall {
                    task: TaskId(j as u32),
                    required: requirements[j],
                    achieved: running[j],
                });
            }
        }
        return Err(coverage_shortfall(&[], &[]));
    };
    let rho_star = instance.bids().bid(sorted[first_cover]).price();

    let feasible = grid
        .suffix_from(rho_star)
        .ok_or(McsError::NoFeasiblePrice {
            required_price: rho_star,
            grid_max: grid.max(),
        })?;
    let prices = feasible.to_vec();

    // Walk the bidding-price intervals [ρ_i, ρ_{i+1}) and record which
    // grid prices each interval owns. Intervals are independent of one
    // another — each one's winner set depends only on its candidate
    // prefix — which is what makes the fan-out below safe.
    struct Interval {
        /// First grid-price index owned by this interval.
        start: usize,
        /// One past the last grid-price index owned.
        end: usize,
        /// Candidate prefix length: `sorted[..prefix]` is eligible.
        prefix: usize,
    }
    let mut intervals: Vec<Interval> = Vec::new();
    let mut grid_idx = 0usize;
    for i in first_cover..n {
        let upper = if i + 1 < n {
            Some(instance.bids().bid(sorted[i + 1]).price())
        } else {
            None
        };
        // Grid prices in this interval.
        let start = grid_idx;
        while grid_idx < prices.len() && upper.is_none_or(|u| prices[grid_idx] < u) {
            grid_idx += 1;
        }
        if grid_idx == start {
            continue; // no grid price falls in this interval
        }
        intervals.push(Interval {
            start,
            end: grid_idx,
            prefix: i + 1,
        });
        if grid_idx == prices.len() {
            break;
        }
    }

    let select = |iv: &Interval| -> Result<Vec<WorkerId>, McsError> {
        let candidates = &sorted[..iv.prefix];
        match (rule, engine) {
            (SelectionRule::MarginalCoverage, Engine::EagerRescan) => {
                select_marginal_eager(candidates, &rows, &requirements)
            }
            (SelectionRule::MarginalCoverage, _) => {
                select_marginal(candidates, &rows, &requirements)
            }
            (SelectionRule::StaticTotal, _) => select_static(candidates, &rows, &requirements),
        }
    };
    let selected: Vec<Result<Vec<WorkerId>, McsError>> = match engine {
        #[cfg(feature = "parallel")]
        Engine::LazyParallel => {
            use rayon::prelude::*;
            intervals.par_iter().map(select).collect()
        }
        _ => intervals.iter().map(select).collect(),
    };
    let winner_sets: Vec<Vec<WorkerId>> = selected.into_iter().collect::<Result<_, _>>()?;

    let mut set_of = vec![usize::MAX; prices.len()];
    let mut sets: Vec<Vec<WorkerId>> = Vec::with_capacity(winner_sets.len());
    for (iv, winners) in intervals.iter().zip(winner_sets) {
        sets.push(winners);
        for s in set_of.iter_mut().take(iv.end).skip(iv.start) {
            *s = sets.len() - 1;
        }
    }
    debug_assert!(
        set_of.iter().all(|&s| s != usize::MAX),
        "every feasible grid price must be assigned a winner set"
    );

    Ok(PriceSchedule {
        prices,
        set_of,
        sets,
    })
}

/// Reference implementation that recomputes the winner set independently
/// for every grid price — `O(|P| · N · K · |S|)`, used only to validate the
/// interval-compressed schedule and in the ablation bench. Deliberately
/// shares *no* machinery with the optimized engine: it drives the eager
/// full-rescan selector, so the equivalence proptests pin the lazy engine
/// against genuinely independent code.
pub fn build_schedule_naive(
    instance: &Instance,
    rule: SelectionRule,
) -> Result<PriceSchedule, McsError> {
    let cover = instance.coverage_problem();
    cover.check_feasible()?;
    let rows = sparse_rows_of(&cover);
    let sorted = workers_by_price(instance);
    let requirements: Vec<f64> = (0..cover.num_tasks())
        .map(|j| cover.requirement(TaskId(j as u32)))
        .collect();

    let mut prices = Vec::new();
    let mut set_of = Vec::new();
    let mut sets: Vec<Vec<WorkerId>> = Vec::new();
    for p in instance.price_grid().iter() {
        let candidates: Vec<WorkerId> = sorted
            .iter()
            .copied()
            .take_while(|&w| instance.bids().bid(w).price() <= p)
            .collect();
        // Feasible at this price?
        let mut residual = requirements.clone();
        for &w in &candidates {
            for &(j, q) in &rows[w.index()] {
                residual[j] -= q;
            }
        }
        if residual.iter().any(|&r| r > COVER_EPS) {
            continue;
        }
        let winners = match rule {
            SelectionRule::MarginalCoverage => {
                select_marginal_eager(&candidates, &rows, &requirements)?
            }
            SelectionRule::StaticTotal => select_static(&candidates, &rows, &requirements)?,
        };
        let idx = sets.iter().position(|s| *s == winners).unwrap_or_else(|| {
            sets.push(winners);
            sets.len() - 1
        });
        prices.push(p);
        set_of.push(idx);
    }
    if prices.is_empty() {
        return Err(McsError::NoFeasiblePrice {
            required_price: instance.bids().max_price().unwrap_or(instance.cmax()),
            grid_max: instance.price_grid().max(),
        });
    }
    Ok(PriceSchedule {
        prices,
        set_of,
        sets,
    })
}

/// The exact output distribution of a differentially private auction: the
/// exponential-mechanism PMF over a schedule's feasible prices.
#[derive(Debug, Clone, PartialEq)]
pub struct PricePmf {
    schedule: PriceSchedule,
    probs: Vec<f64>,
}

impl PricePmf {
    /// Number of feasible prices (same as `schedule().len()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` if the PMF has no support (never under construction
    /// through [`build_schedule`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Pairs a schedule with already-normalized probabilities.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or the probabilities do not sum to 1
    /// (within 1e-6).
    pub fn new(schedule: PriceSchedule, probs: Vec<f64>) -> Self {
        assert_eq!(schedule.len(), probs.len(), "pmf length mismatch");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "pmf does not sum to 1 (got {total})"
        );
        PricePmf { schedule, probs }
    }

    /// The underlying schedule.
    #[inline]
    pub fn schedule(&self) -> &PriceSchedule {
        &self.schedule
    }

    /// Probabilities aligned with `schedule().prices()`.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Samples one auction outcome (price + its winner set).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AuctionOutcome {
        // Inverse-transform over the exact PMF.
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut idx = self.probs.len() - 1;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                idx = i;
                break;
            }
        }
        self.schedule.outcome(idx)
    }

    /// The exact expected total payment `E[x · |S(x)|]` in currency units.
    pub fn expected_total_payment(&self) -> f64 {
        (0..self.schedule.len())
            .map(|i| self.probs[i] * self.schedule.total_payment(i).as_f64())
            .sum()
    }

    /// The exact standard deviation of the total payment.
    pub fn total_payment_std(&self) -> f64 {
        let mean = self.expected_total_payment();
        let var: f64 = (0..self.schedule.len())
            .map(|i| {
                let r = self.schedule.total_payment(i).as_f64();
                self.probs[i] * (r - mean) * (r - mean)
            })
            .sum();
        var.sqrt()
    }

    /// Samples a price index directly from logits (for tests comparing the
    /// exact PMF with Gumbel-style sampling paths).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let logits: Vec<f64> = self.probs.iter().map(|p| p.ln()).collect();
        sample_logits(rng, &logits)
    }
}

/// Builds a PMF from per-price logits (used by the exponential mechanism).
pub(crate) fn pmf_from_logits(schedule: PriceSchedule, logits: &[f64]) -> PricePmf {
    let probs = softmax_from_logits(logits);
    PricePmf { schedule, probs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::{Bid, Bundle, SkillMatrix};

    /// Four workers / two tasks instance used across the tests.
    ///
    /// q values: θ 0.9 → 0.64, θ 0.8 → 0.36, θ 0.95 → 0.81.
    /// δ = 0.4 → Q_j ≈ 1.833.
    fn instance() -> Instance {
        let bids = vec![
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(12.0),
            ),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
            Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(14.0)),
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(18.0),
            ),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.9, 0.9],
            vec![0.9, 0.5],
            vec![0.5, 0.95],
            vec![0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(2)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    #[test]
    fn schedule_covers_all_feasible_prices() {
        let s = build_schedule(&instance(), SelectionRule::MarginalCoverage).unwrap();
        // Coverage per task needs ≈1.833. Task 0: w1 (0.64) + w0 (0.64) +
        // w3 (0.64) = 1.92 → needs all three of workers {0,1,3}; task 1:
        // w0 (0.64) + w2 (0.81) + w3 (0.64) = 2.09. The cheapest covering
        // prefix must include worker 3 at price 18 → feasible from 18.
        assert_eq!(s.prices().first().copied(), Some(Price::from_f64(18.0)));
        assert_eq!(s.prices().last().copied(), Some(Price::from_f64(20.0)));
        // Every price maps to a winner set that satisfies the constraints.
        let cover = instance().coverage_problem();
        for i in 0..s.len() {
            assert!(cover.is_satisfied_by(s.winners(i).iter().copied()));
        }
    }

    #[test]
    fn winner_sets_monotone_price_needs_everyone_here() {
        let s = build_schedule(&instance(), SelectionRule::MarginalCoverage).unwrap();
        // In this tight instance every covering set needs workers 0,1,2,3.
        for i in 0..s.len() {
            assert_eq!(
                s.winners(i),
                &[WorkerId(0), WorkerId(1), WorkerId(2), WorkerId(3)]
            );
        }
    }

    #[test]
    fn infeasible_pool_is_detected() {
        // One weak worker cannot reach Q ≈ 1.833.
        let inst = Instance::builder(1)
            .bids(vec![Bid::new(
                Bundle::new(vec![TaskId(0)]),
                Price::from_f64(10.0),
            )])
            .skills(SkillMatrix::from_rows(vec![vec![0.9]]).unwrap())
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert!(matches!(
            build_schedule(&inst, SelectionRule::MarginalCoverage),
            Err(McsError::Infeasible { .. })
        ));
    }

    #[test]
    fn grid_below_required_price_errors() {
        let bids = vec![
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(19.0)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(19.5)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(20.0)),
        ];
        let inst = Instance::builder(1)
            .bids(bids)
            .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap())
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 15.0, 0.5) // tops out below 20
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert!(matches!(
            build_schedule(&inst, SelectionRule::MarginalCoverage),
            Err(McsError::NoFeasiblePrice { .. })
        ));
    }

    #[test]
    fn compressed_matches_naive_marginal() {
        let inst = instance();
        let fast = build_schedule(&inst, SelectionRule::MarginalCoverage).unwrap();
        let naive = build_schedule_naive(&inst, SelectionRule::MarginalCoverage).unwrap();
        assert_eq!(fast.prices(), naive.prices());
        for i in 0..fast.len() {
            assert_eq!(fast.winners(i), naive.winners(i), "price {}", fast.price(i));
        }
    }

    #[test]
    fn compressed_matches_naive_static() {
        let inst = instance();
        let fast = build_schedule(&inst, SelectionRule::StaticTotal).unwrap();
        let naive = build_schedule_naive(&inst, SelectionRule::StaticTotal).unwrap();
        assert_eq!(fast.prices(), naive.prices());
        for i in 0..fast.len() {
            assert_eq!(fast.winners(i), naive.winners(i));
        }
    }

    #[test]
    fn marginal_greedy_prefers_high_residual_gain() {
        // Three workers on one task, requirement 1.0:
        // w0 q=0.64, w1 q=0.49, w2 q=0.36 — greedy takes w0 then w1.
        let candidates = vec![WorkerId(0), WorkerId(1), WorkerId(2)];
        let rows = vec![
            vec![(0usize, 0.64)],
            vec![(0usize, 0.49)],
            vec![(0usize, 0.36)],
        ];
        let winners = select_marginal(&candidates, &rows, &[1.0]).unwrap();
        assert_eq!(winners, vec![WorkerId(0), WorkerId(1)]);
    }

    #[test]
    fn marginal_greedy_uses_residual_not_static_totals() {
        // Two tasks. w0 covers task 0 fully (1.0). w1 has the biggest
        // static total but all of it on task 0 (1.5 — capped at the 1.0
        // requirement); w2 covers task 1 with 0.6. Marginal gains tie w0
        // and w1 at 1.0, the tie falls to the earlier candidate w0, and the
        // residual-aware rule then needs only w2: two winners. The static
        // rule starts with w1, whose surplus on task 0 is wasted, and ends
        // with all three.
        let candidates = vec![WorkerId(0), WorkerId(1), WorkerId(2)];
        let rows = vec![
            vec![(0usize, 1.0)],
            vec![(0usize, 1.5)],
            vec![(1usize, 0.6)],
        ];
        let req = [1.0, 0.5];
        let marginal = select_marginal(&candidates, &rows, &req).unwrap();
        assert_eq!(marginal, vec![WorkerId(0), WorkerId(2)]);
        let static_sel = select_static(&candidates, &rows, &req).unwrap();
        assert_eq!(static_sel, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
    }

    #[test]
    fn lazy_matches_eager_on_adversarial_tie_patterns() {
        // Exact ties (same q on the same task), staleness (gains that decay
        // at different rates), and exhausted candidates — the cases lazy
        // evaluation must get right to replicate the eager sequence.
        type Case = (Vec<Vec<(usize, f64)>>, Vec<f64>);
        let cases: Vec<Case> = vec![
            // All-tied single task.
            (vec![vec![(0, 0.5)]; 4], vec![1.2]),
            // Two tasks, one dominant generalist whose gain goes stale.
            (
                vec![
                    vec![(0, 0.9), (1, 0.9)],
                    vec![(0, 0.8)],
                    vec![(1, 0.8)],
                    vec![(0, 0.3), (1, 0.3)],
                ],
                vec![1.0, 1.0],
            ),
            // A candidate whose whole contribution evaporates mid-run.
            (
                vec![vec![(0, 1.0)], vec![(0, 0.4)], vec![(1, 0.7)]],
                vec![1.0, 0.5],
            ),
            // Mixed magnitudes with repeated values across tasks.
            (
                vec![
                    vec![(0, 0.25), (1, 0.25), (2, 0.25)],
                    vec![(0, 0.25), (2, 0.5)],
                    vec![(1, 0.75)],
                    vec![(2, 0.25)],
                    vec![(0, 0.5), (1, 0.25)],
                ],
                vec![0.75, 1.0, 0.75],
            ),
        ];
        for (rows, req) in cases {
            let candidates: Vec<WorkerId> = (0..rows.len()).map(|i| WorkerId(i as u32)).collect();
            assert_eq!(
                select_marginal(&candidates, &rows, &req),
                select_marginal_eager(&candidates, &rows, &req),
                "rows {rows:?} req {req:?}"
            );
        }
    }

    #[test]
    fn lazy_ties_fall_to_earliest_candidate() {
        // Candidate order is the tie-break, not worker id: feed candidates
        // in reverse-id order and check the first listed one wins the tie.
        let candidates = vec![WorkerId(2), WorkerId(0), WorkerId(1)];
        let rows = vec![
            vec![(0usize, 0.5)],
            vec![(0usize, 0.5)],
            vec![(0usize, 0.5)],
        ];
        let lazy = select_marginal(&candidates, &rows, &[0.9]).unwrap();
        let eager = select_marginal_eager(&candidates, &rows, &[0.9]).unwrap();
        assert_eq!(lazy, eager);
        // Two winners cover 0.9; the tie-break picks candidates[0] = w2
        // and candidates[1] = w0 (output is id-sorted).
        assert_eq!(lazy, vec![WorkerId(0), WorkerId(2)]);
    }

    #[test]
    fn exhausted_candidates_return_shortfall_not_panic() {
        // One weak worker against an uncoverable requirement: every
        // selector reports the typed shortfall.
        let candidates = vec![WorkerId(0)];
        let rows = vec![vec![(0usize, 0.3)]];
        let req = [1.0];
        for result in [
            select_marginal(&candidates, &rows, &req),
            select_marginal_eager(&candidates, &rows, &req),
            select_static(&candidates, &rows, &req),
        ] {
            match result {
                Err(McsError::CoverageShortfall {
                    task,
                    required,
                    achieved,
                }) => {
                    assert_eq!(task, TaskId(0));
                    assert!((required - 1.0).abs() < 1e-12);
                    assert!(achieved <= 0.3 + 1e-12);
                }
                other => panic!("expected CoverageShortfall, got {other:?}"),
            }
        }
    }

    #[test]
    fn residual_schedule_over_losers_matches_manual_requirements() {
        // Pretend workers 0 and 1 already delivered; the residual auction
        // over workers {2, 3} must cover what is left of each task.
        let inst = instance();
        let cover = inst.coverage_problem();
        let residual: Vec<f64> = (0..inst.num_tasks())
            .map(|j| {
                let t = TaskId(j as u32);
                cover.requirement(t) - cover.q(WorkerId(0), t) - cover.q(WorkerId(1), t)
            })
            .collect();
        let eligible = vec![WorkerId(2), WorkerId(3)];
        let s =
            build_residual_schedule(&inst, SelectionRule::MarginalCoverage, &residual, &eligible)
                .unwrap();
        assert!(!s.is_empty());
        for i in 0..s.len() {
            // Winners come only from the eligible pool and close the
            // residual requirements.
            let mut coverage = vec![0.0f64; inst.num_tasks()];
            for &w in s.winners(i) {
                assert!(eligible.contains(&w), "ineligible winner {w}");
                for (j, c) in coverage.iter_mut().enumerate() {
                    *c += cover.q(w, TaskId(j as u32));
                }
            }
            for (j, (&c, &need)) in coverage.iter().zip(&residual).enumerate() {
                assert!(c >= need.max(0.0) - 1e-9, "task {j}: {c} < {need}");
            }
        }
    }

    #[test]
    fn residual_schedule_with_satisfied_requirements_is_empty_sets() {
        let inst = instance();
        let residual = vec![0.0; inst.num_tasks()];
        let s = build_residual_schedule(
            &inst,
            SelectionRule::MarginalCoverage,
            &residual,
            &[WorkerId(0)],
        )
        .unwrap();
        assert_eq!(s.len(), inst.price_grid().len());
        for i in 0..s.len() {
            assert!(s.winners(i).is_empty());
            assert_eq!(s.total_payment(i), Price::ZERO);
        }
    }

    #[test]
    fn residual_schedule_reports_shortfall_for_weak_pool() {
        let inst = instance();
        let cover = inst.coverage_problem();
        let residual: Vec<f64> = (0..inst.num_tasks())
            .map(|j| cover.requirement(TaskId(j as u32)))
            .collect();
        // Worker 1 alone (task 0 only, q = 0.64) cannot close full
        // requirements on both tasks.
        let err = build_residual_schedule(
            &inst,
            SelectionRule::MarginalCoverage,
            &residual,
            &[WorkerId(1)],
        )
        .unwrap_err();
        assert!(matches!(err, McsError::CoverageShortfall { .. }));
    }

    #[test]
    fn residual_schedule_validates_inputs() {
        let inst = instance();
        assert!(matches!(
            build_residual_schedule(&inst, SelectionRule::MarginalCoverage, &[1.0], &[]),
            Err(McsError::DimensionMismatch { .. })
        ));
        let residual = vec![0.0; inst.num_tasks()];
        assert!(matches!(
            build_residual_schedule(
                &inst,
                SelectionRule::MarginalCoverage,
                &residual,
                &[WorkerId(99)],
            ),
            Err(McsError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn serial_and_default_engines_agree() {
        let inst = instance();
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let default = build_schedule(&inst, rule).unwrap();
            let serial = build_schedule_serial(&inst, rule).unwrap();
            let eager = build_schedule_eager(&inst, rule).unwrap();
            assert_eq!(default, serial);
            assert_eq!(default, eager);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_samples_in_support() {
        let inst = instance();
        let s = build_schedule(&inst, SelectionRule::MarginalCoverage).unwrap();
        let n = s.len();
        let logits: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
        let pmf = pmf_from_logits(s, &logits);
        assert!((pmf.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut r = mcs_num::rng::seeded(3);
        for _ in 0..100 {
            let o = pmf.sample(&mut r);
            assert!(pmf.schedule().prices().contains(&o.price()));
            assert!(!o.winners().is_empty());
        }
    }

    #[test]
    fn pmf_expected_payment_matches_hand_computation() {
        let inst = instance();
        let s = build_schedule(&inst, SelectionRule::MarginalCoverage).unwrap();
        let n = s.len();
        let probs = vec![1.0 / n as f64; n];
        let payments: Vec<f64> = (0..n).map(|i| s.total_payment(i).as_f64()).collect();
        let pmf = PricePmf::new(s, probs);
        let expect: f64 = payments.iter().sum::<f64>() / n as f64;
        assert!((pmf.expected_total_payment() - expect).abs() < 1e-9);
        assert!(pmf.total_payment_std() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn pmf_rejects_unnormalized() {
        let inst = instance();
        let s = build_schedule(&inst, SelectionRule::MarginalCoverage).unwrap();
        let n = s.len();
        let _ = PricePmf::new(s, vec![0.9 / n as f64; n]);
    }

    #[test]
    fn workers_sorted_by_price_then_id() {
        let inst = instance();
        let order = workers_by_price(&inst);
        assert_eq!(
            order,
            vec![WorkerId(1), WorkerId(0), WorkerId(2), WorkerId(3)]
        );
    }
}
