//! Auction outcomes and payment accounting.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

use mcs_types::{Price, TrueType, WorkerId};

/// The result of one auction run: the single clearing price and the winner
/// set.
///
/// Under the paper's single-price payment scheme every winner is paid the
/// clearing price and every loser is paid nothing, so the payment profile
/// is fully determined by `(price, winners)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuctionOutcome {
    price: Price,
    winners: Vec<WorkerId>,
}

impl AuctionOutcome {
    /// Creates an outcome; winner ids are sorted and deduplicated.
    pub fn new(price: Price, mut winners: Vec<WorkerId>) -> Self {
        winners.sort_unstable();
        winners.dedup();
        AuctionOutcome { price, winners }
    }

    /// The clearing price `p`.
    #[inline]
    pub fn price(&self) -> Price {
        self.price
    }

    /// The winner set `S`, ascending by worker id.
    #[inline]
    pub fn winners(&self) -> &[WorkerId] {
        &self.winners
    }

    /// Whether a worker won.
    pub fn is_winner(&self, worker: WorkerId) -> bool {
        self.winners.binary_search(&worker).is_ok()
    }

    /// Payment to one worker: the price if she won, zero otherwise.
    pub fn payment_to(&self, worker: WorkerId) -> Price {
        if self.is_winner(worker) {
            self.price
        } else {
            Price::ZERO
        }
    }

    /// The platform's total payment `R = p · |S|` (Definition 4).
    pub fn total_payment(&self) -> Price {
        self.price * self.winners.len()
    }

    /// The full payment profile over `num_workers` workers.
    pub fn payment_profile(&self, num_workers: usize) -> Vec<Price> {
        (0..num_workers)
            .map(|i| self.payment_to(WorkerId(i as u32)))
            .collect()
    }

    /// A worker's utility given her true type (Definition 3): payment minus
    /// true cost if she won (and thus executes her bundle), zero otherwise.
    ///
    /// This assumes the worker bid her true bundle, so winning means
    /// executing `Γ*` at cost `c*`. Deviation analyses that misreport the
    /// bundle must account costs separately (see [`crate::utility`]).
    pub fn utility_of(&self, worker: WorkerId, true_type: &TrueType) -> Price {
        if self.is_winner(worker) {
            self.price - true_type.cost()
        } else {
            Price::ZERO
        }
    }

    /// Checks individual rationality (Definition 6): no worker with the
    /// given true costs has negative utility.
    pub fn is_individually_rational(&self, true_types: &[TrueType]) -> bool {
        true_types
            .iter()
            .enumerate()
            .all(|(i, t)| self.utility_of(WorkerId(i as u32), t) >= Price::ZERO)
    }
}

// Serialization is hand-written (rather than derived) so deserialization
// funnels through `AuctionOutcome::new` and the sorted/deduplicated winner
// invariant survives arbitrary wire input.
impl Serialize for AuctionOutcome {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("price".to_string(), self.price.to_value()),
            ("winners".to_string(), self.winners.to_value()),
        ])
    }
}

impl Deserialize for AuctionOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let price = Price::from_value(
            v.get("price")
                .ok_or_else(|| DeError::missing_field("price"))?,
        )?;
        let winners = Vec::<WorkerId>::from_value(
            v.get("winners")
                .ok_or_else(|| DeError::missing_field("winners"))?,
        )?;
        Ok(AuctionOutcome::new(price, winners))
    }
}

impl fmt::Display for AuctionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "price {} with {} winners (total payment {})",
            self.price,
            self.winners.len(),
            self.total_payment()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::{Bundle, TaskId};

    fn outcome() -> AuctionOutcome {
        AuctionOutcome::new(
            Price::from_f64(40.0),
            vec![WorkerId(3), WorkerId(1), WorkerId(3)],
        )
    }

    #[test]
    fn winners_sorted_and_deduped() {
        let o = outcome();
        assert_eq!(o.winners(), &[WorkerId(1), WorkerId(3)]);
    }

    #[test]
    fn payments() {
        let o = outcome();
        assert_eq!(o.payment_to(WorkerId(1)), Price::from_f64(40.0));
        assert_eq!(o.payment_to(WorkerId(0)), Price::ZERO);
        assert_eq!(o.total_payment(), Price::from_f64(80.0));
        assert_eq!(
            o.payment_profile(4),
            vec![
                Price::ZERO,
                Price::from_f64(40.0),
                Price::ZERO,
                Price::from_f64(40.0)
            ]
        );
    }

    #[test]
    fn utilities_and_ir() {
        let o = outcome();
        let t_cheap = TrueType::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(30.0));
        let t_loser = TrueType::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(99.0));
        assert_eq!(o.utility_of(WorkerId(1), &t_cheap), Price::from_f64(10.0));
        assert_eq!(o.utility_of(WorkerId(0), &t_loser), Price::ZERO);
        // IR holds when winners' costs are ≤ price.
        let types = vec![
            t_loser.clone(),
            t_cheap.clone(),
            t_loser.clone(),
            t_cheap.clone(),
        ];
        assert!(o.is_individually_rational(&types));
        // A winner with cost above the price violates IR.
        let types_bad = vec![t_cheap.clone(), t_loser, t_cheap.clone(), t_cheap];
        assert!(!o.is_individually_rational(&types_bad));
    }

    #[test]
    fn display() {
        let o = outcome();
        let s = o.to_string();
        assert!(s.contains("price 40"));
        assert!(s.contains("2 winners"));
    }
}
