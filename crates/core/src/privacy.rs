//! Privacy accounting: KL-divergence leakage (Definition 8) and the
//! empirical differential-privacy check (Theorem 2).
//!
//! Both measures compare the *exact* output PMFs of two neighbouring bid
//! profiles (profiles differing in one worker's bid). Theorem 2 guarantees
//! `max_x |ln(P(x)/P′(x))| ≤ ε`; the KL leakage `D_KL(P‖P′)` is the
//! expectation of that log-ratio under `P`, hence also at most ε.

use mcs_num::{kl_divergence, max_abs_log_ratio};

use crate::schedule::PricePmf;

/// Returns the probability vectors of two PMFs aligned on a common price
/// support, or `None` if the supports differ.
///
/// Changing one bid can, in corner cases, change which low prices are
/// feasible; the paper's analysis assumes a fixed feasible price set, so
/// measurements skip (and separately count) support-shifting neighbours.
pub fn aligned_probs(a: &PricePmf, b: &PricePmf) -> Option<(Vec<f64>, Vec<f64>)> {
    if a.schedule().prices() != b.schedule().prices() {
        return None;
    }
    Some((a.probs().to_vec(), b.probs().to_vec()))
}

/// The privacy leakage `D_KL(P‖P′)` between two neighbouring output
/// distributions (Definition 8).
///
/// Returns `None` when the feasible price supports differ (see
/// [`aligned_probs`]).
///
/// # Examples
///
/// ```
/// use mcs_auction::{privacy, DpHsrcAuction, ScheduledMechanism};
/// # use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId, WorkerId};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mk = |p0: f64| -> Instance {
/// #     Instance::builder(1)
/// #         .bids(vec![
/// #             Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(p0)),
/// #             Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
/// #             Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0)),
/// #         ])
/// #         .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap())
/// #         .uniform_error_bound(0.4)
/// #         .price_grid_f64(12.0, 15.0, 0.5)
/// #         .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
/// #         .build().unwrap()
/// # };
/// let auction = DpHsrcAuction::new(0.1).unwrap();
/// let p = auction.pmf(&mk(10.0))?;
/// let q = auction.pmf(&mk(10.5))?; // one bid changed
/// let leakage = privacy::kl_leakage(&p, &q).unwrap();
/// assert!(leakage <= 0.1); // bounded by ε
/// # Ok(())
/// # }
/// ```
pub fn kl_leakage(a: &PricePmf, b: &PricePmf) -> Option<f64> {
    let (p, q) = aligned_probs(a, b)?;
    Some(kl_divergence(&p, &q))
}

/// The empirical DP statistic `max_x |ln(P(x)/P′(x))|`.
///
/// For an ε-differentially private mechanism this never exceeds ε on
/// neighbouring profiles (Theorem 2). Returns `None` when supports differ.
pub fn dp_log_ratio(a: &PricePmf, b: &PricePmf) -> Option<f64> {
    let (p, q) = aligned_probs(a, b)?;
    Some(max_abs_log_ratio(&p, &q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaselineAuction, DpHsrcAuction, ScheduledMechanism};
    use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId, WorkerId};

    /// Eight workers with heterogeneous skills (q: 0.64, 0.49, 0.36, 0.25,
    /// 0.16, 0.09, 0.04, 0.64) over one task with Q ≈ 2.408, so moving a
    /// *small*-q worker's price changes winner-set cardinalities without
    /// shifting the feasible support.
    fn instance(prices: &[f64]) -> Instance {
        let thetas = [0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.9];
        let bids: Vec<Bid> = prices
            .iter()
            .map(|&p| Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(p)))
            .collect();
        let skills: Vec<Vec<f64>> = thetas[..bids.len()].iter().map(|&t| vec![t]).collect();
        Instance::builder(1)
            .bids(bids)
            .skills(SkillMatrix::from_rows(skills).unwrap())
            .uniform_error_bound(0.3)
            .price_grid_f64(14.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    const BASE: &[f64] = &[10.0, 10.5, 11.0, 11.5, 12.0, 12.5, 13.0, 14.0];

    #[test]
    fn dp_bound_holds_for_price_deviation() {
        for eps in [0.1, 0.5, 2.0] {
            let auction = DpHsrcAuction::new(eps).unwrap();
            let p = auction.pmf(&instance(BASE)).unwrap();
            let mut neighbour = BASE.to_vec();
            neighbour[3] = 19.5; // push one bid to the top of the range
            let q = auction.pmf(&instance(&neighbour)).unwrap();
            let ratio = dp_log_ratio(&p, &q).expect("same support");
            assert!(
                ratio <= eps + 1e-9,
                "eps = {eps}: log ratio {ratio} exceeds budget"
            );
            let kl = kl_leakage(&p, &q).unwrap();
            assert!(kl <= ratio + 1e-12);
        }
    }

    #[test]
    fn dp_bound_holds_for_baseline_too() {
        let auction = BaselineAuction::new(0.25).unwrap();
        let p = auction.pmf(&instance(BASE)).unwrap();
        let mut neighbour = BASE.to_vec();
        neighbour[4] = 16.0;
        let q = auction.pmf(&instance(&neighbour)).unwrap();
        let ratio = dp_log_ratio(&p, &q).expect("same support");
        assert!(ratio <= 0.25 + 1e-9);
    }

    #[test]
    fn identical_profiles_leak_nothing() {
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let p = auction.pmf(&instance(BASE)).unwrap();
        assert_eq!(kl_leakage(&p, &p), Some(0.0));
        assert_eq!(dp_log_ratio(&p, &p), Some(0.0));
    }

    #[test]
    fn leakage_grows_with_epsilon() {
        let mut neighbour = BASE.to_vec();
        neighbour[3] = 18.0;
        let leak_at = |eps: f64| {
            let auction = DpHsrcAuction::new(eps).unwrap();
            let p = auction.pmf(&instance(BASE)).unwrap();
            let q = auction.pmf(&instance(&neighbour)).unwrap();
            kl_leakage(&p, &q).unwrap()
        };
        let small = leak_at(0.1);
        let large = leak_at(10.0);
        assert!(
            small < large,
            "leakage should grow with epsilon: {small} vs {large}"
        );
    }

    #[test]
    fn support_shift_is_detected() {
        // Removing cheap coverage pushes the feasible price floor up: with
        // only three θ=0.8 workers (q = 0.36 each) and δ = 0.6
        // (Q ≈ 1.02), all three are needed, so the support starts at the
        // third-cheapest bid.
        let tight = |prices: &[f64]| {
            let bids: Vec<Bid> = prices
                .iter()
                .map(|&p| Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(p)))
                .collect();
            Instance::builder(1)
                .bids(bids)
                .skills(SkillMatrix::from_rows(vec![vec![0.8]; 3]).unwrap())
                .uniform_error_bound(0.6)
                .price_grid_f64(10.0, 20.0, 0.5)
                .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
                .build()
                .unwrap()
        };
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let p = auction.pmf(&tight(&[10.0, 11.0, 12.0])).unwrap();
        let q = auction.pmf(&tight(&[10.0, 11.0, 18.0])).unwrap();
        assert_eq!(aligned_probs(&p, &q), None);
        assert_eq!(kl_leakage(&p, &q), None);
        assert_eq!(dp_log_ratio(&p, &q), None);
    }

    #[test]
    fn bundle_deviation_also_bounded() {
        // Neighbour changes a worker's bundle, not her price.
        let base = instance(BASE);
        let auction = DpHsrcAuction::new(0.4).unwrap();
        let p = auction.pmf(&base).unwrap();
        // Worker 5 re-bids a different (here: same single task, but the
        // instance only has one task — emulate by re-pricing instead and
        // verifying the with_bid plumbing).
        let nb = base
            .with_bid(
                WorkerId(5),
                Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(17.5)),
            )
            .unwrap();
        let q = auction.pmf(&nb).unwrap();
        let ratio = dp_log_ratio(&p, &q).expect("same support");
        assert!(ratio <= 0.4 + 1e-9);
    }
}
