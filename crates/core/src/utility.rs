//! Expected-utility accounting for truthfulness and rationality analyses.
//!
//! Theorem 3 claims `E[u(b*)] ≥ E[u(b)] − ε·Δc` for any deviation `b`. Its
//! proof holds the utility *function* fixed and bounds only how much the
//! exponential mechanism's price lottery can shift — the membership channel
//! (the worker's own presence in `S(x)` changing with her bid) is not
//! modelled. These helpers therefore expose both accountings, each computed
//! from the mechanism's *exact* output PMFs so deviation experiments carry
//! no Monte-Carlo noise: [`deviation_gain`] (strict, observational) and
//! [`cross_expected_utility`] (the price channel, provably capped at
//! `(e^ε − 1)·Δc`).

use mcs_types::{Price, WorkerId};

use crate::schedule::PricePmf;

/// A worker's expected utility under a mechanism's exact output
/// distribution.
///
/// For each feasible price `x`, the worker's utility is `x − cost` if she
/// is in `S(x)` and zero otherwise (Definition 3, single-price payments).
/// `cost` is what executing her *bid* bundle actually costs her — her true
/// cost `c*` when the bid bundle is truthful, or the true cost of the
/// misreported bundle in bundle-deviation analyses.
///
/// # Examples
///
/// ```
/// use mcs_auction::{utility, DpHsrcAuction, ScheduledMechanism};
/// use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId, WorkerId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let instance = Instance::builder(1)
/// #     .bids(vec![
/// #         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
/// #         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
/// #         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0)),
/// #     ])
/// #     .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3])?)
/// #     .uniform_error_bound(0.4)
/// #     .price_grid_f64(12.0, 15.0, 0.5)
/// #     .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
/// #     .build()?;
/// let pmf = DpHsrcAuction::new(0.1).unwrap().pmf(&instance)?;
/// let eu = utility::expected_utility(&pmf, WorkerId(0), Price::from_f64(10.0));
/// assert!(eu >= 0.0); // individual rationality in expectation
/// # Ok(())
/// # }
/// ```
pub fn expected_utility(pmf: &PricePmf, worker: WorkerId, cost: Price) -> f64 {
    let schedule = pmf.schedule();
    (0..schedule.len())
        .map(|i| {
            if schedule.winners(i).binary_search(&worker).is_ok() {
                pmf.probs()[i] * (schedule.price(i) - cost).as_f64()
            } else {
                0.0
            }
        })
        .sum()
}

/// Expected utilities for every worker, given per-worker costs.
///
/// # Panics
///
/// Panics if `costs.len()` is smaller than the largest winner id.
pub fn expected_utilities(pmf: &PricePmf, costs: &[Price]) -> Vec<f64> {
    (0..costs.len())
        .map(|i| expected_utility(pmf, WorkerId(i as u32), costs[i]))
        .collect()
}

/// The probability that a worker wins under the mechanism's output
/// distribution.
pub fn win_probability(pmf: &PricePmf, worker: WorkerId) -> f64 {
    let schedule = pmf.schedule();
    (0..schedule.len())
        .filter(|&i| schedule.winners(i).binary_search(&worker).is_ok())
        .map(|i| pmf.probs()[i])
        .sum()
}

/// Expected utility mixing the *price distribution* of one PMF with the
/// *winner membership* of another.
///
/// This isolates the channel Theorem 3 actually bounds: the paper's proof
/// compares `Σ_x u_i(x)·Pr[M(b)=x]` against `Σ_x u_i(x)·Pr[M(b′)=x]` with
/// the *same* utility function `u_i`, i.e. it quantifies how much the
/// exponential mechanism's price lottery can shift — not how the worker's
/// own membership in `S(x)` changes with her bid. Returns `None` when the
/// two PMFs have different feasible-price supports.
pub fn cross_expected_utility(
    prices_from: &PricePmf,
    membership_from: &PricePmf,
    worker: WorkerId,
    cost: Price,
) -> Option<f64> {
    if prices_from.schedule().prices() != membership_from.schedule().prices() {
        return None;
    }
    let schedule = membership_from.schedule();
    Some(
        (0..schedule.len())
            .map(|i| {
                if schedule.winners(i).binary_search(&worker).is_ok() {
                    prices_from.probs()[i] * (schedule.price(i) - cost).as_f64()
                } else {
                    0.0
                }
            })
            .sum(),
    )
}

/// The strict deviation gain `E[u(deviated)] − E[u(truthful)]` for a worker
/// whose true execution cost is `true_cost` in both worlds.
///
/// Note: this *full* accounting includes the worker's own winner-set
/// membership change, which the paper's Theorem 3 proof does not model —
/// the ε·Δc bound is guaranteed only for the price-lottery channel (see
/// [`cross_expected_utility`]); the strict gain can exceed it when a
/// worker's deviation flips her own selection at many prices.
pub fn deviation_gain(
    truthful: &PricePmf,
    deviated: &PricePmf,
    worker: WorkerId,
    true_cost: Price,
) -> f64 {
    expected_utility(deviated, worker, true_cost) - expected_utility(truthful, worker, true_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpHsrcAuction, ScheduledMechanism};
    use mcs_types::{Bid, Bundle, Instance, SkillMatrix, TaskId};

    fn instance(prices: &[f64]) -> Instance {
        let bids: Vec<Bid> = prices
            .iter()
            .map(|&p| Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(p)))
            .collect();
        let n = bids.len();
        Instance::builder(1)
            .bids(bids)
            .skills(SkillMatrix::from_rows(vec![vec![0.8]; n]).unwrap())
            .uniform_error_bound(0.3)
            .price_grid_f64(14.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    const BASE: &[f64] = &[10.0, 10.5, 11.0, 11.5, 12.0, 12.5, 13.0, 14.0];

    #[test]
    fn expected_utility_nonnegative_for_truthful_winners() {
        let pmf = DpHsrcAuction::new(0.1)
            .unwrap()
            .pmf(&instance(BASE))
            .unwrap();
        for (i, &c) in BASE.iter().enumerate() {
            let eu = expected_utility(&pmf, WorkerId(i as u32), Price::from_f64(c));
            assert!(eu >= 0.0, "worker {i} has negative expected utility {eu}");
        }
    }

    #[test]
    fn win_probabilities_are_probabilities() {
        let pmf = DpHsrcAuction::new(0.1)
            .unwrap()
            .pmf(&instance(BASE))
            .unwrap();
        for i in 0..BASE.len() {
            let p = win_probability(&pmf, WorkerId(i as u32));
            assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }

    #[test]
    fn sure_winner_utility_is_price_minus_cost() {
        // With every feasible price's winner set containing worker 0, her
        // expected utility is E[x] − c.
        let pmf = DpHsrcAuction::new(0.1)
            .unwrap()
            .pmf(&instance(BASE))
            .unwrap();
        let w0 = WorkerId(0);
        if (win_probability(&pmf, w0) - 1.0).abs() < 1e-12 {
            let schedule = pmf.schedule();
            let e_price: f64 = (0..schedule.len())
                .map(|i| pmf.probs()[i] * schedule.price(i).as_f64())
                .sum();
            let eu = expected_utility(&pmf, w0, Price::from_f64(10.0));
            assert!((eu - (e_price - 10.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn price_channel_gain_bounded_by_theorem3() {
        let eps = 0.5;
        let auction = DpHsrcAuction::new(eps).unwrap();
        let truthful = auction.pmf(&instance(BASE)).unwrap();
        let true_cost = Price::from_f64(11.5);
        let delta_c = 10.0; // cmax − cmin = 20 − 10
                            // The DP price lottery can shift expected utility by at most
                            // (e^ε − 1)·Δc for any fixed utility function.
        let channel_budget = (eps.exp() - 1.0) * delta_c;
        for dev_price in [12.0, 13.5, 15.0, 17.5, 19.5] {
            let mut prices = BASE.to_vec();
            prices[3] = dev_price;
            let deviated = auction.pmf(&instance(&prices)).unwrap();
            let Some(cross) = cross_expected_utility(&truthful, &deviated, WorkerId(3), true_cost)
            else {
                continue;
            };
            let gain = expected_utility(&deviated, WorkerId(3), true_cost) - cross;
            assert!(
                gain <= channel_budget + 1e-9,
                "deviation to {dev_price}: channel gain {gain} > {channel_budget}"
            );
        }
    }

    #[test]
    fn cross_utility_matches_plain_on_same_pmf() {
        let pmf = DpHsrcAuction::new(0.2)
            .unwrap()
            .pmf(&instance(BASE))
            .unwrap();
        let w = WorkerId(1);
        let c = Price::from_f64(10.5);
        let cross = cross_expected_utility(&pmf, &pmf, w, c).unwrap();
        assert!((cross - expected_utility(&pmf, w, c)).abs() < 1e-12);
    }

    #[test]
    fn expected_utilities_vectorized() {
        let pmf = DpHsrcAuction::new(0.1)
            .unwrap()
            .pmf(&instance(BASE))
            .unwrap();
        let costs: Vec<Price> = BASE.iter().map(|&c| Price::from_f64(c)).collect();
        let eus = expected_utilities(&pmf, &costs);
        assert_eq!(eus.len(), BASE.len());
        for (i, &eu) in eus.iter().enumerate() {
            let single = expected_utility(&pmf, WorkerId(i as u32), costs[i]);
            assert!((eu - single).abs() < 1e-12);
        }
    }
}
