//! Multi-minded (XOR-bid) extension of the DP-hSRC auction.
//!
//! Definition 1 of the paper actually defines the hSRC auction with a
//! *set* of possible bundles per worker, `T_i = {Γ_i,1, …, Γ_i,K_i}`, each
//! with its own cost `c_i,k` — and then specializes to the single-minded
//! case where only one bundle is of interest. This module implements the
//! general form: every worker submits an XOR bid (several bundle options,
//! each with a price), the mechanism selects **at most one option per
//! worker**, and the exponential price draw is unchanged.
//!
//! The privacy argument carries over verbatim: a worker's whole XOR bid is
//! one "row" of the profile, changing it still changes each winner set's
//! cardinality by at most `N`, so the `exp(−ε·x·|S(x)| / 2Nc_max)` scoring
//! remains ε-differentially private. Selection is the same marginal-
//! coverage greedy over *(worker, option)* pairs, with all of a worker's
//! other options retired the moment one of them wins.

use rand::Rng;

use mcs_num::softmax_from_logits;
use mcs_types::{Bid, McsError, Price, PriceGrid, SkillMatrix, TaskId, WorkerId};

use crate::mechanism::Mechanism;

/// Residual coverage below this threshold counts as satisfied.
const COVER_EPS: f64 = 1e-9;

/// One worker's XOR bid: mutually exclusive bundle options.
#[derive(Debug, Clone, PartialEq)]
pub struct XorBid {
    options: Vec<Bid>,
}

impl XorBid {
    /// Creates an XOR bid from bundle options.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::EmptyBundle`] (attributed to worker 0 as a
    /// placeholder — instance validation re-checks with real ids) if no
    /// options are given or any option has an empty bundle.
    pub fn new(options: Vec<Bid>) -> Result<Self, McsError> {
        if options.is_empty() || options.iter().any(|b| b.bundle().is_empty()) {
            return Err(McsError::EmptyBundle {
                worker: WorkerId(0),
            });
        }
        Ok(XorBid { options })
    }

    /// A single-minded bid, for mixing single- and multi-minded workers.
    pub fn single(bid: Bid) -> Self {
        XorBid { options: vec![bid] }
    }

    /// The bundle options.
    #[inline]
    pub fn options(&self) -> &[Bid] {
        &self.options
    }

    /// The cheapest option price (the worker's entry threshold).
    pub fn min_price(&self) -> Price {
        self.options
            .iter()
            .map(Bid::price)
            .min()
            .expect("XorBid is never empty")
    }
}

/// A multi-minded auction instance.
///
/// Unlike [`Instance`](mcs_types::Instance) this is defined directly over
/// XOR bids; skills, error bounds, grid and cost range have the same
/// meaning.
#[derive(Debug, Clone, PartialEq)]
pub struct XorInstance {
    num_tasks: usize,
    bids: Vec<XorBid>,
    skills: SkillMatrix,
    deltas: Vec<f64>,
    price_grid: PriceGrid,
    cmin: Price,
    cmax: Price,
}

/// One selected option: which worker executes which of her bundles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Award {
    /// The winning worker.
    pub worker: WorkerId,
    /// Index into her [`XorBid::options`].
    pub option: usize,
}

/// The multi-minded auction outcome: a clearing price and one award per
/// winner.
#[derive(Debug, Clone, PartialEq)]
pub struct XorOutcome {
    /// The clearing price.
    pub price: Price,
    /// Winner awards, ascending by worker id.
    pub awards: Vec<Award>,
}

impl XorOutcome {
    /// The platform's total payment `p · |S|`.
    pub fn total_payment(&self) -> Price {
        self.price * self.awards.len()
    }
}

impl XorInstance {
    /// Builds and validates a multi-minded instance.
    ///
    /// # Errors
    ///
    /// Mirrors [`Instance`](mcs_types::Instance) validation:
    /// dimension mismatches, out-of-range bundles or option prices, empty
    /// option lists, invalid `δ_j`.
    pub fn new(
        num_tasks: usize,
        bids: Vec<XorBid>,
        skills: SkillMatrix,
        deltas: Vec<f64>,
        price_grid: PriceGrid,
        cmin: Price,
        cmax: Price,
    ) -> Result<Self, McsError> {
        if cmax < cmin {
            return Err(McsError::InvalidCostRange { cmin, cmax });
        }
        if skills.num_workers() != bids.len() {
            return Err(McsError::DimensionMismatch {
                what: "skill matrix workers",
                expected: bids.len(),
                actual: skills.num_workers(),
            });
        }
        if skills.num_tasks() != num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "skill matrix tasks",
                expected: num_tasks,
                actual: skills.num_tasks(),
            });
        }
        if deltas.len() != num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "error bound vector",
                expected: num_tasks,
                actual: deltas.len(),
            });
        }
        for (j, &d) in deltas.iter().enumerate() {
            if !(d > 0.0 && d < 1.0) {
                return Err(McsError::InvalidErrorBound {
                    task: TaskId(j as u32),
                    value: d,
                });
            }
        }
        for (i, xb) in bids.iter().enumerate() {
            let w = WorkerId(i as u32);
            if xb.options.is_empty() {
                return Err(McsError::EmptyBundle { worker: w });
            }
            for bid in &xb.options {
                if bid.bundle().is_empty() {
                    return Err(McsError::EmptyBundle { worker: w });
                }
                if !bid.bundle().within_task_count(num_tasks) {
                    return Err(McsError::BundleOutOfRange {
                        worker: w,
                        num_tasks,
                    });
                }
                if bid.price() < cmin || bid.price() > cmax {
                    return Err(McsError::InvalidCostRange { cmin, cmax });
                }
            }
        }
        Ok(XorInstance {
            num_tasks,
            bids,
            skills,
            deltas,
            price_grid,
            cmin,
            cmax,
        })
    }

    /// Number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.bids.len()
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// The XOR bid profile.
    #[inline]
    pub fn bids(&self) -> &[XorBid] {
        &self.bids
    }

    /// Coverage weight of one option for one task (0 outside its bundle).
    fn q(&self, worker: WorkerId, option: usize, task: TaskId) -> f64 {
        if self.bids[worker.index()].options[option]
            .bundle()
            .contains(task)
        {
            self.skills.q(worker, task)
        } else {
            0.0
        }
    }

    /// Requirement vector `Q_j = 2 ln(1/δ_j)`.
    fn requirements(&self) -> Vec<f64> {
        self.deltas.iter().map(|&d| 2.0 * (1.0 / d).ln()).collect()
    }
}

/// The multi-minded DP-hSRC auction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XorDpHsrcAuction {
    epsilon: f64,
}

impl XorDpHsrcAuction {
    /// Creates the auction with privacy budget ε.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidEpsilon`] if `epsilon` is not strictly
    /// positive and finite.
    pub fn new(epsilon: f64) -> Result<Self, McsError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(McsError::InvalidEpsilon { value: epsilon });
        }
        Ok(XorDpHsrcAuction { epsilon })
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Greedy selection over `(worker, option)` pairs among options priced
    /// at most `p`. Returns `None` when the eligible options cannot cover.
    fn select_at(&self, instance: &XorInstance, p: Price) -> Option<Vec<Award>> {
        let reqs = instance.requirements();
        let mut residual = reqs;
        let mut remaining: f64 = residual.iter().sum();
        let mut taken = vec![false; instance.num_workers()];
        let mut awards: Vec<Award> = Vec::new();

        // Feasibility pre-check: best-per-task coverage if every worker
        // contributed her best eligible option... must be conservative:
        // a worker contributes at most max over options; sum those.
        for (j, res) in residual.iter().enumerate() {
            let t = TaskId(j as u32);
            let attainable: f64 = (0..instance.num_workers())
                .map(|i| {
                    let w = WorkerId(i as u32);
                    instance.bids()[i]
                        .options
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| b.price() <= p)
                        .map(|(k, _)| instance.q(w, k, t))
                        .fold(0.0, f64::max)
                })
                .sum();
            if attainable < *res - COVER_EPS {
                return None;
            }
        }

        while remaining > COVER_EPS {
            // Ties break toward the cheaper option, then the smaller
            // worker id — matching the single-minded greedy, whose
            // candidates are scanned in (price, id) order.
            let mut best: Option<(Award, f64, Price)> = None;
            for (i, &is_taken) in taken.iter().enumerate() {
                if is_taken {
                    continue;
                }
                let w = WorkerId(i as u32);
                for (k, bid) in instance.bids()[i].options.iter().enumerate() {
                    if bid.price() > p {
                        continue;
                    }
                    let gain: f64 = bid
                        .bundle()
                        .iter()
                        .map(|t| instance.skills.q(w, t).min(residual[t.index()].max(0.0)))
                        .sum();
                    if gain <= COVER_EPS {
                        continue;
                    }
                    let better = match &best {
                        None => true,
                        Some((ba, bg, bp)) => {
                            gain > *bg
                                || (gain == *bg
                                    && (bid.price() < *bp || (bid.price() == *bp && w < ba.worker)))
                        }
                    };
                    if better {
                        best = Some((
                            Award {
                                worker: w,
                                option: k,
                            },
                            gain,
                            bid.price(),
                        ));
                    }
                }
            }
            let (award, _, _) = best?;
            taken[award.worker.index()] = true;
            let bid = &instance.bids()[award.worker.index()].options[award.option];
            for t in bid.bundle().iter() {
                let take = instance
                    .skills
                    .q(award.worker, t)
                    .min(residual[t.index()].max(0.0));
                residual[t.index()] -= take;
                remaining -= take;
            }
            awards.push(award);
        }
        awards.sort_by_key(|a| a.worker);
        Some(awards)
    }
}

impl Mechanism for XorDpHsrcAuction {
    type Input = XorInstance;
    type Output = XorOutcome;

    /// Runs the auction: per-price greedy award sets, exponential price
    /// draw, one award per winner.
    ///
    /// # Errors
    ///
    /// [`McsError::NoFeasiblePrice`] when no grid price admits a covering
    /// award set.
    fn run<R: Rng + ?Sized>(
        &self,
        instance: &XorInstance,
        rng: &mut R,
    ) -> Result<XorOutcome, McsError> {
        // Award sets change only at option prices; compute per grid price
        // directly (the option-price interval compression is analogous to
        // the single-minded case but the price set here is small enough in
        // the extension's intended use).
        let mut prices = Vec::new();
        let mut award_sets = Vec::new();
        for p in instance.price_grid.iter() {
            if let Some(awards) = self.select_at(instance, p) {
                prices.push(p);
                award_sets.push(awards);
            }
        }
        if prices.is_empty() {
            return Err(McsError::NoFeasiblePrice {
                required_price: instance.cmax,
                grid_max: instance.price_grid.max(),
            });
        }
        let n = instance.num_workers() as f64;
        let cmax = instance.cmax.as_f64();
        let logits: Vec<f64> = prices
            .iter()
            .zip(&award_sets)
            .map(|(p, awards)| {
                -self.epsilon * (p.as_f64() * awards.len() as f64) / (2.0 * n * cmax)
            })
            .collect();
        let probs = softmax_from_logits(&logits);
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut idx = probs.len() - 1;
        for (i, pr) in probs.iter().enumerate() {
            acc += pr;
            if u < acc {
                idx = i;
                break;
            }
        }
        Ok(XorOutcome {
            price: prices[idx],
            awards: award_sets[idx].clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;
    use mcs_types::Bundle;

    fn grid() -> PriceGrid {
        PriceGrid::from_f64(10.0, 20.0, 0.5).unwrap()
    }

    fn bundle(tasks: &[u32]) -> Bundle {
        Bundle::new(tasks.iter().copied().map(TaskId).collect())
    }

    /// Three workers over two tasks; worker 0 offers either task alone or
    /// both together at a discount.
    fn instance() -> XorInstance {
        let bids = vec![
            XorBid::new(vec![
                Bid::new(bundle(&[0]), Price::from_f64(11.0)),
                Bid::new(bundle(&[1]), Price::from_f64(11.0)),
                Bid::new(bundle(&[0, 1]), Price::from_f64(13.0)),
            ])
            .unwrap(),
            XorBid::single(Bid::new(bundle(&[0]), Price::from_f64(12.0))),
            XorBid::single(Bid::new(bundle(&[1]), Price::from_f64(12.5))),
        ];
        let skills =
            SkillMatrix::from_rows(vec![vec![0.95, 0.95], vec![0.95, 0.5], vec![0.5, 0.95]])
                .unwrap();
        XorInstance::new(
            2,
            bids,
            skills,
            vec![0.7, 0.7], // Q ≈ 0.713 < q(0.95) = 0.81: one good option covers
            grid(),
            Price::from_f64(10.0),
            Price::from_f64(20.0),
        )
        .unwrap()
    }

    #[test]
    fn at_most_one_option_per_worker() {
        let inst = instance();
        let auction = XorDpHsrcAuction::new(0.5).unwrap();
        let mut r = rng::seeded(3);
        for _ in 0..50 {
            let out = auction.run(&inst, &mut r).unwrap();
            let mut seen = std::collections::HashSet::new();
            for a in &out.awards {
                assert!(seen.insert(a.worker), "worker awarded twice");
                assert!(a.option < inst.bids()[a.worker.index()].options().len());
                // The chosen option's price respects the clearing price.
                assert!(inst.bids()[a.worker.index()].options()[a.option].price() <= out.price);
            }
        }
    }

    #[test]
    fn awarded_bundles_cover_all_tasks() {
        let inst = instance();
        let auction = XorDpHsrcAuction::new(0.5).unwrap();
        let mut r = rng::seeded(5);
        let out = auction.run(&inst, &mut r).unwrap();
        let reqs = inst.requirements();
        for (j, req) in reqs.iter().enumerate() {
            let t = TaskId(j as u32);
            let covered: f64 = out
                .awards
                .iter()
                .map(|a| inst.q(a.worker, a.option, t))
                .sum();
            assert!(covered >= req - 1e-9, "task {j} uncovered");
        }
    }

    #[test]
    fn bundle_discount_option_wins_when_it_covers_alone() {
        // At low prices only worker 0's combined option (13.0) covers both
        // tasks with a single award. Force p = 13.0 by narrowing the grid.
        let mut inst = instance();
        inst.price_grid = PriceGrid::from_f64(13.0, 13.0, 0.5).unwrap();
        let auction = XorDpHsrcAuction::new(0.5).unwrap();
        let mut r = rng::seeded(1);
        let out = auction.run(&inst, &mut r).unwrap();
        assert_eq!(out.price, Price::from_f64(13.0));
        // One award (the XOR package) suffices.
        assert_eq!(out.awards.len(), 1);
        assert_eq!(out.awards[0].worker, WorkerId(0));
        assert_eq!(out.awards[0].option, 2);
    }

    #[test]
    fn single_minded_special_case_matches_dp_hsrc_cardinalities() {
        // When every XOR bid has exactly one option, the award sets match
        // the single-minded greedy's winner sets.
        use crate::engine::ScheduleEngine;
        use crate::schedule::SelectionRule;
        use mcs_types::Instance;

        let bids = vec![
            Bid::new(bundle(&[0]), Price::from_f64(11.0)),
            Bid::new(bundle(&[0]), Price::from_f64(12.0)),
            Bid::new(bundle(&[1]), Price::from_f64(12.5)),
            Bid::new(bundle(&[0, 1]), Price::from_f64(14.0)),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.9, 0.5],
            vec![0.9, 0.5],
            vec![0.5, 0.9],
            vec![0.9, 0.9],
        ])
        .unwrap();
        let single = Instance::builder(2)
            .bids(bids.clone())
            .skills(skills.clone())
            .uniform_error_bound(0.55)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build(&single)
            .unwrap();

        let xor = XorInstance::new(
            2,
            bids.into_iter().map(XorBid::single).collect(),
            skills,
            vec![0.55, 0.55],
            grid(),
            Price::from_f64(10.0),
            Price::from_f64(20.0),
        )
        .unwrap();
        let auction = XorDpHsrcAuction::new(0.5).unwrap();
        for (i, &p) in schedule.prices().iter().enumerate() {
            let awards = auction.select_at(&xor, p).expect("feasible price");
            let workers: Vec<WorkerId> = awards.iter().map(|a| a.worker).collect();
            assert_eq!(workers, schedule.winners(i), "at price {p}");
        }
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert!(XorBid::new(vec![]).is_err());
        assert!(XorBid::new(vec![Bid::new(Bundle::empty(), Price::from_f64(10.0))]).is_err());
        let inst = XorInstance::new(
            1,
            vec![XorBid::single(Bid::new(
                bundle(&[5]),
                Price::from_f64(10.0),
            ))],
            SkillMatrix::from_rows(vec![vec![0.9]]).unwrap(),
            vec![0.5],
            grid(),
            Price::from_f64(10.0),
            Price::from_f64(20.0),
        );
        assert!(matches!(inst, Err(McsError::BundleOutOfRange { .. })));
        let inst = XorInstance::new(
            1,
            vec![XorBid::single(Bid::new(
                bundle(&[0]),
                Price::from_f64(25.0),
            ))],
            SkillMatrix::from_rows(vec![vec![0.9]]).unwrap(),
            vec![0.5],
            grid(),
            Price::from_f64(10.0),
            Price::from_f64(20.0),
        );
        assert!(matches!(inst, Err(McsError::InvalidCostRange { .. })));
    }

    #[test]
    fn infeasible_grid_reports_no_feasible_price() {
        let inst = XorInstance::new(
            1,
            vec![XorBid::single(Bid::new(
                bundle(&[0]),
                Price::from_f64(11.0),
            ))],
            SkillMatrix::from_rows(vec![vec![0.6]]).unwrap(), // q = 0.04
            vec![0.5],                                        // Q ≈ 1.39
            grid(),
            Price::from_f64(10.0),
            Price::from_f64(20.0),
        )
        .unwrap();
        let auction = XorDpHsrcAuction::new(0.5).unwrap();
        let mut r = rng::seeded(2);
        assert!(matches!(
            auction.run(&inst, &mut r),
            Err(McsError::NoFeasiblePrice { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance();
        let auction = XorDpHsrcAuction::new(0.1).unwrap();
        let a = auction.run(&inst, &mut rng::seeded(11)).unwrap();
        let b = auction.run(&inst, &mut rng::seeded(11)).unwrap();
        assert_eq!(a, b);
    }
}
