//! The §VII-A baseline auction: static-score winner selection with the
//! same exponential price draw.

use rand::Rng;

use mcs_types::{Instance, McsError};

use crate::engine::{ScheduleEngine, Strategy};
use crate::mechanism::{run_scheduled, Mechanism, ScheduledMechanism};
use crate::outcome::AuctionOutcome;
use crate::schedule::SelectionRule;

/// The paper's baseline comparator.
///
/// For a fixed price `p` it admits workers in descending order of their
/// *static* total informativeness `Σ_j q_ij` until every task's error-bound
/// constraint holds, then draws the final price from the same exponential
/// mechanism as [`DpHsrcAuction`](crate::DpHsrcAuction). It therefore
/// enjoys the identical privacy, truthfulness and rationality guarantees —
/// the only difference is payment efficiency, which is exactly what
/// Figures 1–4 measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineAuction {
    epsilon: f64,
    strategy: Strategy,
}

impl BaselineAuction {
    /// Creates the baseline auction with privacy budget ε.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidEpsilon`] if `epsilon` is not strictly
    /// positive and finite.
    pub fn new(epsilon: f64) -> Result<Self, McsError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(McsError::InvalidEpsilon { value: epsilon });
        }
        Ok(BaselineAuction {
            epsilon,
            strategy: Strategy::Auto,
        })
    }

    /// Selects the winner-determination strategy the baseline's schedules
    /// are built with. Every strategy produces the identical mechanism
    /// output; this only changes the cost profile (mirrors
    /// [`DpHsrcAuction::with_strategy`](crate::DpHsrcAuction::with_strategy)).
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured winner-determination strategy.
    #[inline]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl Mechanism for BaselineAuction {
    type Input = Instance;
    type Output = AuctionOutcome;

    fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        rng: &mut R,
    ) -> Result<AuctionOutcome, McsError> {
        run_scheduled(self, instance, rng)
    }
}

impl ScheduledMechanism for BaselineAuction {
    /// The §VII-A static-total rule.
    fn selection_rule(&self) -> SelectionRule {
        SelectionRule::StaticTotal
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn engine(&self) -> ScheduleEngine {
        ScheduleEngine::new(self.selection_rule()).strategy(self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpHsrcAuction;
    use mcs_num::rng;
    use mcs_types::{Bid, Bundle, Price, SkillMatrix, TaskId};

    /// An instance engineered so the static rule wastes winners: a "siren"
    /// worker with a huge static total that contributes mostly surplus.
    fn siren_instance() -> Instance {
        // Tasks 0..4. Worker 0 (siren) is brilliant at tasks 0–2, which are
        // also covered cheaply by specialists; tasks 3–4 need dedicated
        // workers. Requirements are low (δ = 0.7 → Q ≈ 0.713, so one
        // θ = 0.95 worker covers a task alone) — the static rule burns
        // winners on already-covered tasks, the marginal rule does not.
        let all = |t: &[u32]| Bundle::new(t.iter().copied().map(TaskId).collect());
        let bids = vec![
            Bid::new(all(&[0, 1, 2]), Price::from_f64(10.0)), // siren
            Bid::new(all(&[0]), Price::from_f64(10.5)),
            Bid::new(all(&[1]), Price::from_f64(10.5)),
            Bid::new(all(&[2]), Price::from_f64(10.5)),
            Bid::new(all(&[3]), Price::from_f64(11.0)),
            Bid::new(all(&[4]), Price::from_f64(11.0)),
            Bid::new(all(&[3, 4]), Price::from_f64(11.5)),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.95, 0.95, 0.95, 0.5, 0.5],
            vec![0.95, 0.5, 0.5, 0.5, 0.5],
            vec![0.5, 0.95, 0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.95, 0.5, 0.5],
            vec![0.5, 0.5, 0.5, 0.95, 0.5],
            vec![0.5, 0.5, 0.5, 0.5, 0.95],
            vec![0.5, 0.5, 0.5, 0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(5)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.7)
            .price_grid_f64(10.0, 15.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
            .build()
            .unwrap()
    }

    #[test]
    fn baseline_run_is_feasible() {
        let inst = siren_instance();
        let auction = BaselineAuction::new(0.1).unwrap();
        let mut r = rng::seeded(2);
        let o = auction.run(&inst, &mut r).unwrap();
        let cover = inst.coverage_problem();
        assert!(cover.is_satisfied_by(o.winners().iter().copied()));
        for &w in o.winners() {
            assert!(inst.bids().bid(w).price() <= o.price());
        }
    }

    #[test]
    fn dp_hsrc_never_pays_more_in_expectation_here() {
        let inst = siren_instance();
        let dp = DpHsrcAuction::new(0.1).unwrap().pmf(&inst).unwrap();
        let base = BaselineAuction::new(0.1).unwrap().pmf(&inst).unwrap();
        assert!(
            dp.expected_total_payment() <= base.expected_total_payment() + 1e-9,
            "dp {} vs baseline {}",
            dp.expected_total_payment(),
            base.expected_total_payment()
        );
    }

    #[test]
    fn winner_cardinality_gap_exists_at_some_price() {
        // The mechanism-level payment gap must come from smaller winner
        // sets at matching prices.
        let inst = siren_instance();
        let dp = DpHsrcAuction::new(0.1).unwrap().schedule(&inst).unwrap();
        let base = BaselineAuction::new(0.1).unwrap().schedule(&inst).unwrap();
        assert_eq!(dp.prices(), base.prices());
        let mut strictly_smaller_somewhere = false;
        for i in 0..dp.len() {
            assert!(dp.winners(i).len() <= base.winners(i).len());
            if dp.winners(i).len() < base.winners(i).len() {
                strictly_smaller_somewhere = true;
            }
        }
        assert!(
            strictly_smaller_somewhere,
            "expected the greedy rule to beat the static rule on this instance"
        );
    }

    #[test]
    fn both_mechanisms_share_support() {
        let inst = siren_instance();
        let dp = DpHsrcAuction::new(0.1).unwrap().pmf(&inst).unwrap();
        let base = BaselineAuction::new(0.1).unwrap().pmf(&inst).unwrap();
        assert_eq!(dp.schedule().prices(), base.schedule().prices());
    }

    #[test]
    fn strategy_override_does_not_change_the_baseline() {
        let inst = siren_instance();
        let reference = BaselineAuction::new(0.5).unwrap().pmf(&inst).unwrap();
        for strategy in Strategy::ALL {
            let pmf = BaselineAuction::new(0.5)
                .unwrap()
                .with_strategy(strategy)
                .pmf(&inst)
                .unwrap();
            assert_eq!(pmf.probs(), reference.probs(), "{strategy:?}");
            assert_eq!(
                pmf.schedule().prices(),
                reference.schedule().prices(),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn nan_epsilon_rejected() {
        assert!(matches!(
            BaselineAuction::new(f64::NAN),
            Err(McsError::InvalidEpsilon { .. })
        ));
    }
}
