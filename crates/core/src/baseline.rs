//! The §VII-A baseline auction: static-score winner selection with the
//! same exponential price draw.

use rand::Rng;

use mcs_types::{Instance, McsError};

use crate::exponential::ExponentialMechanism;
use crate::outcome::AuctionOutcome;
use crate::schedule::{build_schedule, PricePmf, PriceSchedule, SelectionRule};

/// The paper's baseline comparator.
///
/// For a fixed price `p` it admits workers in descending order of their
/// *static* total informativeness `Σ_j q_ij` until every task's error-bound
/// constraint holds, then draws the final price from the same exponential
/// mechanism as [`DpHsrcAuction`](crate::DpHsrcAuction). It therefore
/// enjoys the identical privacy, truthfulness and rationality guarantees —
/// the only difference is payment efficiency, which is exactly what
/// Figures 1–4 measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineAuction {
    epsilon: f64,
}

impl BaselineAuction {
    /// Creates the baseline auction with privacy budget ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite"
        );
        BaselineAuction { epsilon }
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Computes the per-price winner schedule under the static rule.
    ///
    /// # Errors
    ///
    /// [`McsError::Infeasible`] or [`McsError::NoFeasiblePrice`] when the
    /// error-bound constraints cannot be met at any grid price.
    pub fn schedule(&self, instance: &Instance) -> Result<PriceSchedule, McsError> {
        build_schedule(instance, SelectionRule::StaticTotal)
    }

    /// The exact output distribution over feasible prices.
    ///
    /// # Errors
    ///
    /// Same as [`BaselineAuction::schedule`].
    pub fn pmf(&self, instance: &Instance) -> Result<PricePmf, McsError> {
        let schedule = self.schedule(instance)?;
        Ok(ExponentialMechanism::for_instance(self.epsilon, instance).pmf(schedule))
    }

    /// Runs the auction once.
    ///
    /// # Errors
    ///
    /// Same as [`BaselineAuction::schedule`].
    pub fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        rng: &mut R,
    ) -> Result<AuctionOutcome, McsError> {
        Ok(self.pmf(instance)?.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpHsrcAuction;
    use mcs_num::rng;
    use mcs_types::{Bid, Bundle, Price, SkillMatrix, TaskId};

    /// An instance engineered so the static rule wastes winners: a "siren"
    /// worker with a huge static total that contributes mostly surplus.
    fn siren_instance() -> Instance {
        // Tasks 0..4. Worker 0 (siren) is brilliant at tasks 0–2, which are
        // also covered cheaply by specialists; tasks 3–4 need dedicated
        // workers. Requirements are low (δ = 0.7 → Q ≈ 0.713, so one
        // θ = 0.95 worker covers a task alone) — the static rule burns
        // winners on already-covered tasks, the marginal rule does not.
        let all = |t: &[u32]| Bundle::new(t.iter().copied().map(TaskId).collect());
        let bids = vec![
            Bid::new(all(&[0, 1, 2]), Price::from_f64(10.0)), // siren
            Bid::new(all(&[0]), Price::from_f64(10.5)),
            Bid::new(all(&[1]), Price::from_f64(10.5)),
            Bid::new(all(&[2]), Price::from_f64(10.5)),
            Bid::new(all(&[3]), Price::from_f64(11.0)),
            Bid::new(all(&[4]), Price::from_f64(11.0)),
            Bid::new(all(&[3, 4]), Price::from_f64(11.5)),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.95, 0.95, 0.95, 0.5, 0.5],
            vec![0.95, 0.5, 0.5, 0.5, 0.5],
            vec![0.5, 0.95, 0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.95, 0.5, 0.5],
            vec![0.5, 0.5, 0.5, 0.95, 0.5],
            vec![0.5, 0.5, 0.5, 0.5, 0.95],
            vec![0.5, 0.5, 0.5, 0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(5)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.7)
            .price_grid_f64(10.0, 15.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
            .build()
            .unwrap()
    }

    #[test]
    fn baseline_run_is_feasible() {
        let inst = siren_instance();
        let auction = BaselineAuction::new(0.1);
        let mut r = rng::seeded(2);
        let o = auction.run(&inst, &mut r).unwrap();
        let cover = inst.coverage_problem();
        assert!(cover.is_satisfied_by(o.winners().iter().copied()));
        for &w in o.winners() {
            assert!(inst.bids().bid(w).price() <= o.price());
        }
    }

    #[test]
    fn dp_hsrc_never_pays_more_in_expectation_here() {
        let inst = siren_instance();
        let dp = DpHsrcAuction::new(0.1).pmf(&inst).unwrap();
        let base = BaselineAuction::new(0.1).pmf(&inst).unwrap();
        assert!(
            dp.expected_total_payment() <= base.expected_total_payment() + 1e-9,
            "dp {} vs baseline {}",
            dp.expected_total_payment(),
            base.expected_total_payment()
        );
    }

    #[test]
    fn winner_cardinality_gap_exists_at_some_price() {
        // The mechanism-level payment gap must come from smaller winner
        // sets at matching prices.
        let inst = siren_instance();
        let dp = DpHsrcAuction::new(0.1).schedule(&inst).unwrap();
        let base = BaselineAuction::new(0.1).schedule(&inst).unwrap();
        assert_eq!(dp.prices(), base.prices());
        let mut strictly_smaller_somewhere = false;
        for i in 0..dp.len() {
            assert!(dp.winners(i).len() <= base.winners(i).len());
            if dp.winners(i).len() < base.winners(i).len() {
                strictly_smaller_somewhere = true;
            }
        }
        assert!(
            strictly_smaller_somewhere,
            "expected the greedy rule to beat the static rule on this instance"
        );
    }

    #[test]
    fn both_mechanisms_share_support() {
        let inst = siren_instance();
        let dp = DpHsrcAuction::new(0.1).pmf(&inst).unwrap();
        let base = BaselineAuction::new(0.1).pmf(&inst).unwrap();
        assert_eq!(dp.schedule().prices(), base.schedule().prices());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nan_epsilon_rejected() {
        let _ = BaselineAuction::new(f64::NAN);
    }
}
