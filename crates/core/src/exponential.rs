//! The exponential mechanism over price schedules (Algorithm 1, line 16).

use mcs_types::{Instance, McsError, Price};

use crate::schedule::{pmf_from_logits, PricePmf, PriceSchedule};

/// The McSherry–Talwar exponential mechanism instantiated for reverse
/// auctions: lower total payment ⇒ exponentially higher probability.
///
/// The score of price `x` is the negated total payment `−x·|S(x)|`, scaled
/// by `ε / (2 N c_max)`. The sensitivity analysis behind the `2 N c_max`
/// denominator is Theorem 2: changing one bid can change `|S(x)|` by at
/// most `N` and each unit of cardinality is worth at most `c_max`.
///
/// All computation is done in the log domain, so extreme `ε · payment`
/// products (the ε = 1000 end of Figure 5) neither overflow nor collapse
/// to NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialMechanism {
    /// The privacy budget ε.
    epsilon: f64,
    /// Number of workers `N` in the instance.
    num_workers: usize,
    /// The cost upper bound `c_max`.
    cmax: Price,
}

impl ExponentialMechanism {
    /// Creates the mechanism for a given ε and instance parameters.
    ///
    /// # Errors
    ///
    /// * [`McsError::InvalidEpsilon`] — `epsilon` is not strictly positive
    ///   and finite.
    /// * [`McsError::DimensionMismatch`] — `num_workers` is zero.
    pub fn new(epsilon: f64, num_workers: usize, cmax: Price) -> Result<Self, McsError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(McsError::InvalidEpsilon { value: epsilon });
        }
        if num_workers == 0 {
            return Err(McsError::DimensionMismatch {
                what: "exponential mechanism worker count",
                expected: 1,
                actual: 0,
            });
        }
        Ok(ExponentialMechanism {
            epsilon,
            num_workers,
            cmax,
        })
    }

    /// Convenience constructor reading `N` and `c_max` from an instance.
    ///
    /// # Errors
    ///
    /// Same as [`ExponentialMechanism::new`]; instance validation already
    /// guarantees at least one worker, so in practice only
    /// [`McsError::InvalidEpsilon`] can surface.
    pub fn for_instance(epsilon: f64, instance: &Instance) -> Result<Self, McsError> {
        Self::new(epsilon, instance.num_workers(), instance.cmax())
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The unnormalized log-weight of a total payment:
    /// `−ε · R / (2 N c_max)`.
    #[inline]
    pub fn logit_of_payment(&self, total_payment: Price) -> f64 {
        -self.epsilon * total_payment.as_f64()
            / (2.0 * self.num_workers as f64 * self.cmax.as_f64())
    }

    /// The exact output PMF over a schedule's feasible prices (Eq. 11).
    pub fn pmf(&self, schedule: PriceSchedule) -> PricePmf {
        let logits: Vec<f64> = (0..schedule.len())
            .map(|i| self.logit_of_payment(schedule.total_payment(i)))
            .collect();
        pmf_from_logits(schedule, &logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScheduleEngine;
    use crate::schedule::SelectionRule;
    use mcs_types::{Bid, Bundle, SkillMatrix, TaskId};

    fn schedule() -> PriceSchedule {
        let bids = vec![
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(15.0)),
        ];
        let inst = Instance::builder(1)
            .bids(bids)
            .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap())
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 1.0)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build(&inst)
            .unwrap()
    }

    #[test]
    fn lower_payment_gets_higher_probability() {
        let s = schedule();
        let mech = ExponentialMechanism::new(1.0, 3, Price::from_f64(20.0)).unwrap();
        let payments: Vec<Price> = s.total_payments();
        let pmf = mech.pmf(s);
        // Pair payments with probabilities; check strict monotonicity on
        // distinct payments.
        for i in 0..payments.len() {
            for j in 0..payments.len() {
                if payments[i] < payments[j] {
                    assert!(
                        pmf.probs()[i] > pmf.probs()[j],
                        "payment {} should be likelier than {}",
                        payments[i],
                        payments[j]
                    );
                }
            }
        }
    }

    #[test]
    fn probability_ratio_matches_closed_form() {
        let s = schedule();
        let n = 3usize;
        let cmax = Price::from_f64(20.0);
        let eps = 0.7;
        let mech = ExponentialMechanism::new(eps, n, cmax).unwrap();
        let payments = s.total_payments();
        let pmf = mech.pmf(s);
        let expected_log_ratio =
            -eps * (payments[0].as_f64() - payments[1].as_f64()) / (2.0 * n as f64 * cmax.as_f64());
        let actual = (pmf.probs()[0] / pmf.probs()[1]).ln();
        assert!((actual - expected_log_ratio).abs() < 1e-9);
    }

    #[test]
    fn tiny_epsilon_is_nearly_uniform() {
        let s = schedule();
        let len = s.len();
        let mech = ExponentialMechanism::new(1e-9, 3, Price::from_f64(20.0)).unwrap();
        let pmf = mech.pmf(s);
        for &p in pmf.probs() {
            assert!((p - 1.0 / len as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn huge_epsilon_concentrates_on_min_payment() {
        let s = schedule();
        let payments = s.total_payments();
        let best = payments
            .iter()
            .enumerate()
            .min_by_key(|(_, &p)| p)
            .map(|(i, _)| i)
            .unwrap();
        let mech = ExponentialMechanism::new(10_000.0, 3, Price::from_f64(20.0)).unwrap();
        let pmf = mech.pmf(s);
        assert!(pmf.probs()[best] > 0.999);
        assert!(pmf.probs().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn zero_epsilon_rejected() {
        let err = ExponentialMechanism::new(0.0, 3, Price::from_f64(20.0)).unwrap_err();
        assert!(matches!(err, McsError::InvalidEpsilon { value } if value == 0.0));
        let err = ExponentialMechanism::new(f64::NAN, 3, Price::from_f64(20.0)).unwrap_err();
        assert!(matches!(err, McsError::InvalidEpsilon { .. }));
    }

    #[test]
    fn zero_workers_rejected() {
        let err = ExponentialMechanism::new(0.1, 0, Price::from_f64(20.0)).unwrap_err();
        assert!(matches!(err, McsError::DimensionMismatch { .. }));
    }
}
