//! A non-private truthful comparator: greedy cost-effectiveness selection
//! with Myerson critical payments.
//!
//! The paper's related work (e.g. Yang et al., MobiCom'12; Jin et al.,
//! MobiHoc'15 — reference [10], whose greedy analysis Lemma 2 borrows)
//! builds truthful MCS auctions from a *monotone* greedy allocation plus
//! per-winner *critical payments*: each winner is paid the highest price
//! she could have bid and still won. Such mechanisms are exactly truthful
//! and individually rational but **not differentially private** — each
//! payment is a deterministic, sensitive function of the other bids.
//!
//! This module implements that classic design so experiments can measure
//! the *price of privacy*: how much more the platform pays under DP-hSRC's
//! randomized single price than under a deterministic critical-payment
//! auction, and how much a curious worker learns from each.

use rand::Rng;

use mcs_types::{CoverageView, Instance, McsError, Price, SparseCoverage, WorkerId};

use crate::mechanism::Mechanism;

/// Residual coverage below this threshold counts as satisfied.
const COVER_EPS: f64 = 1e-9;

/// The non-private greedy auction with critical payments.
///
/// # Examples
///
/// See [`CriticalPaymentAuction::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CriticalPaymentAuction;

/// Outcome of the critical-payment auction: per-worker payments (no single
/// clearing price — that is the point of the comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalOutcome {
    winners: Vec<WorkerId>,
    payments: Vec<Price>,
}

impl CriticalOutcome {
    /// The winner set, ascending by worker id.
    #[inline]
    pub fn winners(&self) -> &[WorkerId] {
        &self.winners
    }

    /// Payment to a worker (zero for losers).
    pub fn payment_to(&self, worker: WorkerId) -> Price {
        self.payments
            .get(worker.index())
            .copied()
            .unwrap_or(Price::ZERO)
    }

    /// The full per-worker payment profile.
    #[inline]
    pub fn payments(&self) -> &[Price] {
        &self.payments
    }

    /// The platform's total payment `Σ p_i`.
    pub fn total_payment(&self) -> Price {
        self.payments.iter().copied().sum()
    }
}

/// One greedy step under the cost-effectiveness rule: the unused worker
/// with positive marginal gain minimizing `ρ_i / gain_i(residual)`.
fn best_candidate(
    instance: &Instance,
    cover: &SparseCoverage,
    used: &[bool],
    excluded: Option<WorkerId>,
    residual: &[f64],
) -> Option<(WorkerId, f64, f64)> {
    let mut best: Option<(WorkerId, f64, f64)> = None; // (worker, ratio, gain)
    for (i, &is_used) in used.iter().enumerate() {
        let w = WorkerId(i as u32);
        if is_used || Some(w) == excluded {
            continue;
        }
        let gain: f64 = cover.row(i).map(|(j, q)| q.min(residual[j].max(0.0))).sum();
        if gain <= COVER_EPS {
            continue;
        }
        let ratio = instance.bids().bid(w).price().as_f64() / gain;
        let better = match best {
            None => true,
            Some((bw, br, _)) => ratio < br - 1e-12 || ((ratio - br).abs() <= 1e-12 && w < bw),
        };
        if better {
            best = Some((w, ratio, gain));
        }
    }
    best
}

fn apply(cover: &SparseCoverage, w: WorkerId, residual: &mut [f64]) {
    for (j, q) in cover.row(w.index()) {
        residual[j] = (residual[j] - q).max(0.0);
    }
}

impl CriticalPaymentAuction {
    /// Runs the auction: greedy winner selection, then one critical-value
    /// computation per winner.
    ///
    /// The allocation is monotone (lowering a bid price only improves its
    /// cost-effectiveness at every step), so paying each winner her
    /// critical value makes truthful bidding a dominant strategy and the
    /// mechanism individually rational. Winners whose absence makes the
    /// instance uncoverable (monopolists) are paid the cost ceiling
    /// `c_max`.
    ///
    /// # Errors
    ///
    /// [`McsError::Infeasible`] when even the full pool cannot satisfy
    /// some task's error-bound constraint.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcs_auction::CriticalPaymentAuction;
    /// use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let instance = Instance::builder(1)
    ///     .bids(vec![
    ///         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
    ///         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
    ///         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0)),
    ///     ])
    ///     .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3])?)
    ///     .uniform_error_bound(0.4)
    ///     .price_grid_f64(10.0, 15.0, 0.5)
    ///     .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
    ///     .build()?;
    /// let outcome = CriticalPaymentAuction.run(&instance)?;
    /// assert!(!outcome.winners().is_empty());
    /// // Winners are paid at least their bids.
    /// for &w in outcome.winners() {
    ///     assert!(outcome.payment_to(w) >= instance.bids().bid(w).price());
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(&self, instance: &Instance) -> Result<CriticalOutcome, McsError> {
        let cover = instance.sparse_coverage();
        cover.check_feasible()?;
        let reqs = cover.requirements().to_vec();
        let n = instance.num_workers();

        // Greedy allocation.
        let mut residual = reqs.clone();
        let mut used = vec![false; n];
        let mut winners: Vec<WorkerId> = Vec::new();
        while residual.iter().any(|&r| r > COVER_EPS) {
            let (w, _, _) = best_candidate(instance, &cover, &used, None, &residual)
                .expect("feasibility was checked");
            used[w.index()] = true;
            winners.push(w);
            apply(&cover, w, &mut residual);
        }

        // Critical payment per winner: rerun greedy without her and record
        // the best bid that would have kept her winning at some step.
        let mut payments = vec![Price::ZERO; n];
        for &w in &winners {
            payments[w.index()] = self.critical_payment(instance, &cover, &reqs, w);
        }

        winners.sort_unstable();
        Ok(CriticalOutcome { winners, payments })
    }

    /// The critical value of `winner`: the supremum bid price at which she
    /// still wins, capped at `c_max` (paid in full when she is a
    /// monopolist whose absence makes coverage impossible).
    fn critical_payment(
        &self,
        instance: &Instance,
        cover: &SparseCoverage,
        reqs: &[f64],
        winner: WorkerId,
    ) -> Price {
        let n = instance.num_workers();
        let mut residual = reqs.to_vec();
        let mut used = vec![false; n];
        let mut critical = 0.0f64;
        loop {
            if residual.iter().all(|&r| r <= COVER_EPS) {
                break; // others covered everything; no further chance to win
            }
            // What the winner could bid to be picked at this step instead
            // of the best other candidate.
            let own_gain: f64 = cover
                .row(winner.index())
                .map(|(j, q)| q.min(residual[j].max(0.0)))
                .sum();
            match best_candidate(instance, cover, &used, Some(winner), &residual) {
                Some((other, other_ratio, _)) => {
                    if own_gain > COVER_EPS {
                        critical = critical.max(own_gain * other_ratio);
                    }
                    used[other.index()] = true;
                    apply(cover, other, &mut residual);
                }
                None => {
                    // Nobody else can make progress: the winner is pivotal
                    // and can extract the cost ceiling.
                    return instance.cmax();
                }
            }
        }
        // Never below her own bid (she did win), never above the ceiling.
        let bid = instance.bids().bid(winner).price();
        Price::from_f64(critical).max(bid).min(instance.cmax())
    }
}

impl Mechanism for CriticalPaymentAuction {
    type Input = Instance;
    type Output = CriticalOutcome;

    /// The deterministic run; the RNG is accepted for interface parity and
    /// ignored (the mechanism's payments are a deterministic — and hence
    /// non-private — function of the bids, which is its point).
    fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        _rng: &mut R,
    ) -> Result<CriticalOutcome, McsError> {
        CriticalPaymentAuction::run(self, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::{Bid, Bundle, SkillMatrix, TaskId};

    fn single_task_instance(prices: &[f64], theta: f64, delta: f64) -> Instance {
        let bids: Vec<Bid> = prices
            .iter()
            .map(|&p| Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(p)))
            .collect();
        let n = bids.len();
        Instance::builder(1)
            .bids(bids)
            .skills(SkillMatrix::from_rows(vec![vec![theta]; n]).unwrap())
            .uniform_error_bound(delta)
            .price_grid_f64(10.0, 30.0, 0.5)
            .cost_range(Price::from_f64(5.0), Price::from_f64(30.0))
            .build()
            .unwrap()
    }

    #[test]
    fn winners_cover_and_are_paid_at_least_their_bids() {
        // θ = 0.9 → q = 0.64; δ = 0.3 → Q ≈ 2.41 → need 4 workers.
        let inst = single_task_instance(&[10.0, 11.0, 12.0, 13.0, 14.0, 15.0], 0.9, 0.3);
        let out = CriticalPaymentAuction.run(&inst).unwrap();
        assert!(inst
            .coverage_problem()
            .is_satisfied_by(out.winners().iter().copied()));
        for &w in out.winners() {
            assert!(out.payment_to(w) >= inst.bids().bid(w).price());
        }
        // Losers get nothing.
        for i in 0..inst.num_workers() {
            let w = WorkerId(i as u32);
            if !out.winners().contains(&w) {
                assert_eq!(out.payment_to(w), Price::ZERO);
            }
        }
    }

    #[test]
    fn critical_payment_is_next_losers_bid_in_symmetric_case() {
        // Identical bundles/skills: greedy picks the 4 cheapest of 6; each
        // winner's critical value is the 5th bid (the first loser's),
        // since gains are symmetric.
        let inst = single_task_instance(&[10.0, 11.0, 12.0, 13.0, 14.0, 15.0], 0.9, 0.3);
        let out = CriticalPaymentAuction.run(&inst).unwrap();
        assert_eq!(out.winners().len(), 4);
        for &w in out.winners() {
            assert_eq!(out.payment_to(w), Price::from_f64(14.0));
        }
        assert_eq!(out.total_payment(), Price::from_f64(56.0));
    }

    #[test]
    fn monopolist_extracts_the_ceiling() {
        // Two tasks; only worker 2 covers task 1.
        let bids = vec![
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
            Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(12.0)),
        ];
        let inst = Instance::builder(2)
            .bids(bids)
            .skills(
                SkillMatrix::from_rows(vec![vec![0.9, 0.5], vec![0.9, 0.5], vec![0.5, 0.95]])
                    .unwrap(),
            )
            .uniform_error_bound(0.7) // Q ≈ 0.713 < q(0.95) = 0.81
            .price_grid_f64(10.0, 30.0, 0.5)
            .cost_range(Price::from_f64(5.0), Price::from_f64(30.0))
            .build()
            .unwrap();
        let out = CriticalPaymentAuction.run(&inst).unwrap();
        assert!(out.winners().contains(&WorkerId(2)));
        assert_eq!(out.payment_to(WorkerId(2)), inst.cmax());
    }

    #[test]
    fn truthfulness_underbidding_does_not_change_payment() {
        // A winner's payment is independent of her own bid as long as she
        // keeps winning — the Myerson property.
        let inst = single_task_instance(&[10.0, 11.0, 12.0, 13.0, 14.0, 15.0], 0.9, 0.3);
        let base = CriticalPaymentAuction.run(&inst).unwrap();
        let w = WorkerId(1);
        let p_before = base.payment_to(w);
        assert!(p_before > Price::ZERO);
        let shaded = inst
            .with_bid(w, inst.bids().bid(w).with_price(Price::from_f64(6.0)))
            .unwrap();
        let after = CriticalPaymentAuction.run(&shaded).unwrap();
        assert!(after.winners().contains(&w));
        assert_eq!(after.payment_to(w), p_before);
    }

    #[test]
    fn overbidding_past_critical_value_loses() {
        let inst = single_task_instance(&[10.0, 11.0, 12.0, 13.0, 14.0, 15.0], 0.9, 0.3);
        let base = CriticalPaymentAuction.run(&inst).unwrap();
        let w = WorkerId(0);
        let crit = base.payment_to(w);
        let over = inst
            .with_bid(
                w,
                inst.bids().bid(w).with_price(crit + Price::from_f64(0.5)),
            )
            .unwrap();
        let after = CriticalPaymentAuction.run(&over).unwrap();
        assert!(
            !after.winners().contains(&w),
            "worker still wins above her critical value"
        );
    }

    #[test]
    fn infeasible_pool_is_rejected() {
        let inst = single_task_instance(&[10.0], 0.9, 0.1);
        assert!(matches!(
            CriticalPaymentAuction.run(&inst),
            Err(McsError::Infeasible { .. })
        ));
    }

    #[test]
    fn payments_not_differentially_private() {
        // Demonstrate the motivation for DP-hSRC: one neighbour's bid
        // change deterministically shifts another worker's payment.
        let inst = single_task_instance(&[10.0, 11.0, 12.0, 13.0, 14.0, 15.0], 0.9, 0.3);
        let base = CriticalPaymentAuction.run(&inst).unwrap();
        let nb = inst
            .with_bid(
                WorkerId(4),
                inst.bids()
                    .bid(WorkerId(4))
                    .with_price(Price::from_f64(20.0)),
            )
            .unwrap();
        let after = CriticalPaymentAuction.run(&nb).unwrap();
        // Worker 0's payment jumps from 14 to 15 — a deterministic leak of
        // worker 4's bid.
        assert_ne!(base.payment_to(WorkerId(0)), after.payment_to(WorkerId(0)));
    }
}
