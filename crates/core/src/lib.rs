//! DP-hSRC: the differentially private single-minded reverse combinatorial
//! auction of Jin et al., *Enabling Privacy-Preserving Incentives for
//! Mobile Crowd Sensing Systems* (ICDCS 2016).
//!
//! # The mechanism in one paragraph
//!
//! The platform wants, for every binary task `τ_j`, enough label coverage
//! that the weighted aggregate errs with probability at most `δ_j`
//! (Lemma 1's constraint `Σ q_ij ≥ Q_j` over selected winners). Workers bid
//! bundles and prices. For each candidate single price `p`, Algorithm 1
//! greedily assembles a winner set `S(p)` from the workers bidding at most
//! `p`, picking at each step the worker with the largest marginal coverage
//! `Σ_j min(Q'_j, q_ij)`. Because `S(p)` is constant between consecutive
//! bidding prices, the schedule is computed once per interval, making the
//! whole auction `O(N²K)` — independent of `|P|`. The final price is then
//! drawn by the *exponential mechanism*,
//! `Pr[p = x] ∝ exp(−ε·x·|S(x)| / (2 N c_max))`, which yields
//! ε-differential privacy of the payment profile, ε·Δc-truthfulness,
//! individual rationality, and a logarithmic approximation to the optimal
//! total payment (Theorems 2–6).
//!
//! # Crate layout
//!
//! * [`Mechanism`] / [`ScheduledMechanism`] — the unified mechanism
//!   interface: every auction below is driven generically through
//!   [`Mechanism::run`], and the two differentially private single-price
//!   auctions additionally expose their winner [`ScheduledMechanism::schedule`]
//!   and exact output [`ScheduledMechanism::pmf`].
//! * [`DpHsrcAuction`] — Algorithm 1 end to end (run once, or extract the
//!   exact price PMF for analysis).
//! * [`BaselineAuction`] — the paper's §VII-A baseline: winners picked by
//!   descending static score `Σ_j q_ij`, same exponential price draw.
//! * [`OptimalMechanism`] — the exact `R_OPT = min_p p·|S_OPT(p)|`
//!   benchmark, computed with the `mcs-ilp` branch-and-bound (the paper
//!   used GUROBI).
//! * [`PriceSchedule`] / [`PricePmf`] — the per-price winner sets and the
//!   exact exponential-mechanism distribution over them.
//! * [`privacy`] — KL-divergence privacy leakage (Definition 8) and the
//!   empirical max-log-ratio DP check (Theorem 2).
//! * [`utility`] — expected-utility accounting for truthfulness (Theorem 3)
//!   and individual-rationality (Theorem 4) experiments.
//! * [`xor`] — the multi-minded (XOR-bid) generalization of Definition 1,
//!   where each worker offers several mutually exclusive bundle options.
//! * [`CriticalPaymentAuction`] — a non-private truthful comparator
//!   (greedy + Myerson critical payments) for price-of-privacy studies.
//!
//! # Examples
//!
//! ```
//! use mcs_auction::{DpHsrcAuction, Mechanism, ScheduledMechanism};
//! use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId};
//! use mcs_num::rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four workers, two tasks, generous skills.
//! let bids = vec![
//!     Bid::new(Bundle::new(vec![TaskId(0), TaskId(1)]), Price::from_f64(12.0)),
//!     Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
//!     Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(14.0)),
//!     Bid::new(Bundle::new(vec![TaskId(0), TaskId(1)]), Price::from_f64(18.0)),
//! ];
//! let skills = SkillMatrix::from_rows(vec![
//!     vec![0.9, 0.9], vec![0.9, 0.5], vec![0.5, 0.95], vec![0.9, 0.9],
//! ])?;
//! let instance = Instance::builder(2)
//!     .bids(bids)
//!     .skills(skills)
//!     .uniform_error_bound(0.4)
//!     .price_grid_f64(10.0, 20.0, 0.1)
//!     .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
//!     .build()?;
//!
//! // The constructor validates ε; `run` samples one auction outcome.
//! let auction = DpHsrcAuction::new(0.1)?;
//! let mut r = rng::seeded(42);
//! let outcome = auction.run(&instance, &mut r)?;
//! assert!(!outcome.winners().is_empty());
//! assert!(instance.price_grid().contains(outcome.price()));
//!
//! // The exact output distribution — what the theorems quantify over.
//! let pmf = auction.pmf(&instance)?;
//! assert!((pmf.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Injected faults drive this crate with arbitrary coverage states, so the
// schedule/selection path must fail typed, never panic. Tests keep their
// unwraps (the whole crate compiles under `cfg(test)` for the test harness).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod baseline;
mod critical;
mod dp_hsrc;
mod engine;
mod exponential;
mod mechanism;
mod optimal;
mod outcome;
pub mod privacy;
pub mod replay;
mod schedule;
pub mod utility;
pub mod xor;

pub use baseline::BaselineAuction;
pub use critical::{CriticalOutcome, CriticalPaymentAuction};
pub use dp_hsrc::DpHsrcAuction;
pub use engine::{Coarsening, ScheduleEngine, Strategy};
pub use exponential::ExponentialMechanism;
pub use mechanism::{Mechanism, ScheduledMechanism};
pub use optimal::{OptimalMechanism, OptimalOutcome, PerPriceSolve};
pub use outcome::AuctionOutcome;
pub use replay::{OnlinePricer, Quote, ReplayStats};
pub use schedule::{PricePmf, PriceSchedule, SelectionRule};
pub use xor::{Award, XorBid, XorDpHsrcAuction, XorInstance, XorOutcome};
