//! The unified mechanism interface.
//!
//! Every auction in this crate — the DP-hSRC mechanism, the §VII-A
//! baseline, the non-private critical-payment comparator, and the
//! multi-minded XOR extension — is a function from an input profile to an
//! outcome, possibly consuming randomness. [`Mechanism`] captures exactly
//! that, so simulation experiments, bench binaries, and the platform loop
//! can drive *any* mechanism through one generic entry point instead of
//! duplicating per-type glue.
//!
//! The two differentially private single-price auctions additionally share
//! the Algorithm 1 pipeline — build a per-price winner schedule, score it
//! with the exponential mechanism, sample a price. [`ScheduledMechanism`]
//! exposes those intermediate products ([`PriceSchedule`], [`PricePmf`])
//! and derives [`Mechanism::run`] from them, so a new scheduled mechanism
//! only has to name its [`SelectionRule`] and privacy budget.

use rand::Rng;

use mcs_types::{Instance, McsError, WorkerId};

use crate::engine::ScheduleEngine;
use crate::exponential::ExponentialMechanism;
use crate::outcome::AuctionOutcome;
use crate::schedule::{PricePmf, PriceSchedule, SelectionRule};

/// An auction mechanism: a (possibly randomized) map from an input profile
/// to an outcome.
///
/// The input type is associated rather than fixed so single-minded
/// mechanisms (over [`Instance`]) and multi-minded ones (over
/// [`XorInstance`](crate::xor::XorInstance)) share one interface, and so
/// deterministic mechanisms (which ignore the RNG) still compose with
/// generic drivers.
pub trait Mechanism {
    /// The bid/skill profile the mechanism consumes.
    type Input;
    /// The outcome it produces.
    type Output;

    /// Runs the mechanism once on `input`.
    ///
    /// # Errors
    ///
    /// Mechanism-specific; typically [`McsError::Infeasible`] or
    /// [`McsError::NoFeasiblePrice`] when no covering outcome exists.
    fn run<R: Rng + ?Sized>(
        &self,
        input: &Self::Input,
        rng: &mut R,
    ) -> Result<Self::Output, McsError>;
}

/// A differentially private single-price auction following Algorithm 1:
/// greedy per-price winner schedule + exponential-mechanism price draw.
///
/// Implementors provide the selection rule and the privacy budget; the
/// schedule, the exact output PMF, and (via the blanket [`Mechanism`]
/// methods on the concrete types) the sampled run all follow.
pub trait ScheduledMechanism: Mechanism<Input = Instance, Output = AuctionOutcome> {
    /// The winner-selection rule that fills each price's winner set.
    fn selection_rule(&self) -> SelectionRule;

    /// The privacy budget ε scaling the exponential mechanism.
    fn epsilon(&self) -> f64;

    /// The schedule engine this mechanism builds winner schedules with.
    ///
    /// Defaults to `ScheduleEngine::new(self.selection_rule())` — the
    /// auto strategy with coarsening off. Mechanisms that carry an engine
    /// configuration (e.g. [`DpHsrcAuction::with_strategy`]) override
    /// this, and both [`ScheduledMechanism::schedule`] and
    /// [`ScheduledMechanism::residual_schedule`] pick the override up.
    ///
    /// [`DpHsrcAuction::with_strategy`]: crate::DpHsrcAuction::with_strategy
    fn engine(&self) -> ScheduleEngine {
        ScheduleEngine::new(self.selection_rule())
    }

    /// The winner schedule over all feasible candidate prices
    /// (Algorithm 1, lines 1–15).
    ///
    /// # Errors
    ///
    /// * [`McsError::Infeasible`] — even the full pool cannot satisfy some
    ///   task's error-bound constraint.
    /// * [`McsError::NoFeasiblePrice`] — coverage is possible but only
    ///   above the top of the price grid.
    fn schedule(&self, instance: &Instance) -> Result<PriceSchedule, McsError> {
        self.engine().build(instance)
    }

    /// The mechanism's exact output distribution over feasible prices
    /// (Algorithm 1, line 16 / Eq. 11).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduledMechanism::schedule`] errors.
    fn pmf(&self, instance: &Instance) -> Result<PricePmf, McsError> {
        let schedule = self.schedule(instance)?;
        Ok(ExponentialMechanism::for_instance(self.epsilon(), instance)?.pmf(schedule))
    }

    /// The winner schedule for a *residual* covering problem: only
    /// `eligible` workers may win and each task needs only the leftover
    /// coverage `residual[j]` (non-positive entries count as already
    /// satisfied).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleEngine::build_residual`] errors — most notably
    /// [`McsError::CoverageShortfall`] when the eligible pool cannot close
    /// some residual requirement.
    fn residual_schedule(
        &self,
        instance: &Instance,
        residual: &[f64],
        eligible: &[WorkerId],
    ) -> Result<PriceSchedule, McsError> {
        self.engine().build_residual(instance, residual, eligible)
    }

    /// Runs a **backfill re-auction**: samples one outcome for the residual
    /// covering problem over the eligible workers' standing bids, using the
    /// same exponential-mechanism price draw as the primary auction.
    ///
    /// This is the entry point fault-tolerant platform rounds use after
    /// winner dropout: coverage already delivered stays paid for and
    /// satisfied, and only the shortfall `Q'_j` is re-purchased.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduledMechanism::residual_schedule`] errors
    /// ([`McsError::CoverageShortfall`], [`McsError::NoFeasiblePrice`], …).
    fn reauction<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        residual: &[f64],
        eligible: &[WorkerId],
        rng: &mut R,
    ) -> Result<AuctionOutcome, McsError> {
        let schedule = self.residual_schedule(instance, residual, eligible)?;
        let pmf = ExponentialMechanism::for_instance(self.epsilon(), instance)?.pmf(schedule);
        Ok(pmf.sample(rng))
    }
}

/// Samples one outcome from a scheduled mechanism's exact PMF — the shared
/// body of [`Mechanism::run`] for [`ScheduledMechanism`] implementors.
pub(crate) fn run_scheduled<M: ScheduledMechanism, R: Rng + ?Sized>(
    mechanism: &M,
    instance: &Instance,
    rng: &mut R,
) -> Result<AuctionOutcome, McsError> {
    Ok(mechanism.pmf(instance)?.sample(rng))
}
