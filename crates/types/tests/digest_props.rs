//! Property tests for `Instance::digest`, the content key of the service's
//! PMF cache: equal instances must digest equally (clone stability), and
//! any single-field mutation must change the digest — otherwise the cache
//! could serve a schedule computed for a different auction.

use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId, WorkerId};
use proptest::prelude::*;

/// Builds a small valid instance from raw generator draws.
fn build_instance(
    num_tasks: usize,
    price_tenths: &[i64],
    theta_millis: &[u64],
    delta_centis: &[u64],
) -> Instance {
    let n = price_tenths.len();
    let bids: Vec<Bid> = price_tenths
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            // Bundle derived from the worker index so every worker has a
            // non-empty bundle within the task count.
            let tasks: Vec<TaskId> = (0..num_tasks)
                .filter(|j| (i + j) % 2 == 0 || num_tasks == 1 || *j == i % num_tasks)
                .map(|j| TaskId(j as u32))
                .collect();
            let tasks = if tasks.is_empty() {
                vec![TaskId(0)]
            } else {
                tasks
            };
            Bid::new(Bundle::new(tasks), Price::from_tenths(100 + t))
        })
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..num_tasks)
                .map(|j| {
                    0.1 + 0.8 * ((theta_millis[(i + j) % theta_millis.len()] % 1000) as f64)
                        / 1000.0
                })
                .collect()
        })
        .collect();
    let deltas: Vec<f64> = (0..num_tasks)
        .map(|j| 0.05 + 0.9 * ((delta_centis[j % delta_centis.len()] % 100) as f64) / 100.0)
        .collect();
    Instance::builder(num_tasks)
        .bids(bids)
        .skills(SkillMatrix::from_rows(rows).expect("thetas in range"))
        .error_bounds(deltas)
        .price_grid_f64(10.0, 30.0, 0.5)
        .cost_range(Price::from_tenths(100), Price::from_tenths(300))
        .build()
        .expect("generated instance is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn digest_is_stable_under_clone(
        num_tasks in 1usize..4,
        prices in proptest::collection::vec(0i64..200, 1..6),
        thetas in proptest::collection::vec(0u64..1000, 1..6),
        deltas in proptest::collection::vec(0u64..100, 1..4),
    ) {
        let inst = build_instance(num_tasks, &prices, &thetas, &deltas);
        let cloned = inst.clone();
        prop_assert_eq!(inst.digest(), cloned.digest());
        // Rebuilding from identical inputs digests identically too.
        let rebuilt = build_instance(num_tasks, &prices, &thetas, &deltas);
        prop_assert_eq!(inst.digest(), rebuilt.digest());
    }

    #[test]
    fn single_bid_price_mutation_changes_digest(
        num_tasks in 1usize..4,
        prices in proptest::collection::vec(0i64..200, 2..6),
        thetas in proptest::collection::vec(0u64..1000, 1..6),
        victim in 0usize..6,
    ) {
        let inst = build_instance(num_tasks, &prices, &thetas, &[50]);
        let w = WorkerId((victim % prices.len()) as u32);
        let old = inst.bids().bid(w).clone();
        let new_price = if old.price() == Price::from_tenths(300) {
            Price::from_tenths(299)
        } else {
            old.price() + Price::from_tenths(1)
        };
        let nb = inst
            .with_bid(w, Bid::new(old.bundle().clone(), new_price))
            .expect("price stays in range");
        prop_assert_ne!(inst.digest(), nb.digest());
    }

    #[test]
    fn single_bundle_mutation_changes_digest(
        num_tasks in 2usize..4,
        prices in proptest::collection::vec(0i64..200, 2..6),
        victim in 0usize..6,
    ) {
        let inst = build_instance(num_tasks, &prices, &[123, 457, 891], &[50]);
        let w = WorkerId((victim % prices.len()) as u32);
        let old = inst.bids().bid(w).clone();
        // Pick a different non-empty bundle over the same tasks.
        let current: Vec<TaskId> = old.bundle().iter().collect();
        let replacement = if current.len() == num_tasks {
            Bundle::new(current[..1].to_vec())
        } else {
            Bundle::new((0..num_tasks as u32).map(TaskId).collect())
        };
        prop_assert_ne!(&replacement, old.bundle());
        let nb = inst
            .with_bid(w, Bid::new(replacement, old.price()))
            .expect("bundle stays in range");
        prop_assert_ne!(inst.digest(), nb.digest());
    }

    #[test]
    fn every_non_bid_field_is_digested(
        num_tasks in 1usize..4,
        prices in proptest::collection::vec(0i64..200, 1..6),
        thetas in proptest::collection::vec(1u64..999, 1..6),
        deltas in proptest::collection::vec(0u64..100, 1..4),
    ) {
        let inst = build_instance(num_tasks, &prices, &thetas, &deltas);
        let base = inst.digest();
        let bids: Vec<Bid> = inst.bids().iter().map(|(_, b)| b.clone()).collect();

        // Mutate one skill entry.
        let mut rows: Vec<Vec<f64>> = (0..inst.num_workers())
            .map(|i| {
                (0..num_tasks)
                    .map(|j| inst.skills().theta(WorkerId(i as u32), TaskId(j as u32)))
                    .collect()
            })
            .collect();
        rows[0][0] = if rows[0][0] < 0.5 { rows[0][0] + 0.01 } else { rows[0][0] - 0.01 };
        let skill_mutated = Instance::builder(num_tasks)
            .bids(bids.clone())
            .skills(SkillMatrix::from_rows(rows).expect("in range"))
            .error_bounds(inst.deltas().to_vec())
            .price_grid(inst.price_grid().clone())
            .cost_range(inst.cmin(), inst.cmax())
            .build()
            .expect("valid");
        prop_assert_ne!(base, skill_mutated.digest());

        // Mutate one error bound.
        let mut ds = inst.deltas().to_vec();
        ds[0] = if ds[0] < 0.5 { ds[0] + 0.01 } else { ds[0] - 0.01 };
        let delta_mutated = Instance::builder(num_tasks)
            .bids(bids.clone())
            .skills(inst.skills().clone())
            .error_bounds(ds)
            .price_grid(inst.price_grid().clone())
            .cost_range(inst.cmin(), inst.cmax())
            .build()
            .expect("valid");
        prop_assert_ne!(base, delta_mutated.digest());

        // Shift the price grid.
        let grid_mutated = Instance::builder(num_tasks)
            .bids(bids.clone())
            .skills(inst.skills().clone())
            .error_bounds(inst.deltas().to_vec())
            .price_grid_f64(10.0, 30.5, 0.5)
            .cost_range(inst.cmin(), inst.cmax())
            .build()
            .expect("valid");
        prop_assert_ne!(base, grid_mutated.digest());

        // Widen the cost range (bids stay within it).
        let cost_mutated = Instance::builder(num_tasks)
            .bids(bids)
            .skills(inst.skills().clone())
            .error_bounds(inst.deltas().to_vec())
            .price_grid(inst.price_grid().clone())
            .cost_range(inst.cmin(), inst.cmax() + Price::from_tenths(1))
            .build()
            .expect("valid");
        prop_assert_ne!(base, cost_mutated.digest());
    }
}
