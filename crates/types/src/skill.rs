//! Worker skill matrices and derived coverage weights.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{McsError, TaskId, WorkerId};

/// The uninformative prior `θ = 0.5` assumed for every cell a sparse
/// construction does not list: a coin-flip labeller carries no information
/// (`q = (2θ − 1)² = 0`), which is exactly the single-minded model — a
/// worker contributes nothing outside her bundle.
pub const DEFAULT_THETA: f64 = 0.5;

/// The skill matrix `θ = [θ_ij] ∈ [0,1]^{N×K}`.
///
/// `θ_ij` is the probability that the label worker `i` reports for binary
/// task `j` equals the true label. The platform maintains this matrix as
/// prior information (estimated from gold tasks, historical submissions, or
/// worker reputation — see `mcs-agg` for estimators) and uses the derived
/// weights `q_ij = (2θ_ij − 1)²` in the error-bound constraint of Lemma 1.
///
/// # Representation
///
/// Two physical layouts share one logical matrix:
///
/// * **dense** row-major (via [`SkillMatrix::from_rows`] /
///   [`SkillMatrix::from_flat`]) — every cell stored;
/// * **CSR** (via [`SkillMatrix::from_sparse`]) — only informative cells
///   stored, every other cell implicitly [`DEFAULT_THETA`].
///
/// Equality, serde round-trips, digests, and every accessor are defined on
/// the *logical* matrix, so a dense and a sparse construction of the same
/// values are interchangeable everywhere (including as service cache keys).
///
/// # Examples
///
/// ```
/// use mcs_types::{SkillMatrix, TaskId, WorkerId};
///
/// # fn main() -> Result<(), mcs_types::McsError> {
/// let skills = SkillMatrix::from_rows(vec![vec![0.9, 0.5], vec![0.1, 0.75]])?;
/// assert_eq!(skills.theta(WorkerId(0), TaskId(0)), 0.9);
/// // q = (2·0.9 − 1)² = 0.64
/// assert!((skills.q(WorkerId(0), TaskId(0)) - 0.64).abs() < 1e-12);
/// // θ = 0.5 carries zero information: q = 0.
/// assert_eq!(skills.q(WorkerId(0), TaskId(1)), 0.0);
/// // θ = 0.1 is *informative* (an anti-expert): q = 0.64.
/// assert!((skills.q(WorkerId(1), TaskId(0)) - 0.64).abs() < 1e-12);
/// // The same matrix built sparsely compares equal.
/// let sparse = SkillMatrix::from_sparse(
///     2,
///     2,
///     vec![
///         (WorkerId(0), TaskId(0), 0.9),
///         (WorkerId(1), TaskId(0), 0.1),
///         (WorkerId(1), TaskId(1), 0.75),
///     ],
/// )?;
/// assert_eq!(skills, sparse);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SkillMatrix {
    num_workers: usize,
    num_tasks: usize,
    repr: Repr,
}

/// Physical layout of the `θ` values.
#[derive(Debug, Clone)]
enum Repr {
    /// Row-major `θ` values, one per cell.
    Dense { theta: Vec<f64> },
    /// Compressed sparse rows: `offsets` has `num_workers + 1` entries;
    /// worker `i`'s informative cells are `tasks[offsets[i]..offsets[i+1]]`
    /// (strictly ascending) with values in the parallel `theta` range.
    /// Cells not listed hold [`DEFAULT_THETA`]; stored values are never
    /// exactly [`DEFAULT_THETA`] (canonical form), so structural equality
    /// of two CSR matrices coincides with logical equality.
    Csr {
        offsets: Vec<usize>,
        tasks: Vec<u32>,
        theta: Vec<f64>,
    },
}

impl SkillMatrix {
    /// Builds a skill matrix from per-worker rows.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidSkill`] if any entry is outside `[0, 1]`
    /// or not finite, and [`McsError::DimensionMismatch`] if rows have
    /// unequal lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, McsError> {
        let num_workers = rows.len();
        let num_tasks = rows.first().map_or(0, Vec::len);
        let mut theta = Vec::with_capacity(num_workers * num_tasks);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != num_tasks {
                return Err(McsError::DimensionMismatch {
                    what: "skill matrix row",
                    expected: num_tasks,
                    actual: row.len(),
                });
            }
            for (j, v) in row.into_iter().enumerate() {
                if !(0.0..=1.0).contains(&v) {
                    return Err(McsError::InvalidSkill {
                        worker: WorkerId(i as u32),
                        task: TaskId(j as u32),
                        value: v,
                    });
                }
                theta.push(v);
            }
        }
        Ok(SkillMatrix {
            num_workers,
            num_tasks,
            repr: Repr::Dense { theta },
        })
    }

    /// Builds a skill matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::DimensionMismatch`] if `flat.len()` is not
    /// `num_workers * num_tasks`, or [`McsError::InvalidSkill`] on
    /// out-of-range entries.
    pub fn from_flat(
        num_workers: usize,
        num_tasks: usize,
        flat: Vec<f64>,
    ) -> Result<Self, McsError> {
        if flat.len() != num_workers * num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "flat skill matrix",
                expected: num_workers * num_tasks,
                actual: flat.len(),
            });
        }
        for (idx, &v) in flat.iter().enumerate() {
            if !(0.0..=1.0).contains(&v) {
                return Err(McsError::InvalidSkill {
                    worker: WorkerId((idx / num_tasks.max(1)) as u32),
                    task: TaskId((idx % num_tasks.max(1)) as u32),
                    value: v,
                });
            }
        }
        Ok(SkillMatrix {
            num_workers,
            num_tasks,
            repr: Repr::Dense { theta: flat },
        })
    }

    /// Builds a CSR skill matrix from `(worker, task, θ)` entries; every
    /// unlisted cell holds [`DEFAULT_THETA`] (uninformative, `q = 0`).
    ///
    /// Entries may arrive in any order. Entries whose value is exactly
    /// [`DEFAULT_THETA`] are dropped (they are indistinguishable from an
    /// unlisted cell), which keeps the stored form canonical. The result
    /// stores `O(nnz)` values instead of `N·K`, which is what makes large
    /// sparse instances cheap to hold, hash, and ship.
    ///
    /// # Errors
    ///
    /// * [`McsError::WorkerOutOfRange`] / [`McsError::BundleOutOfRange`] —
    ///   an entry's worker or task index is out of range.
    /// * [`McsError::InvalidSkill`] — a θ outside `[0, 1]` or not finite.
    /// * [`McsError::DuplicateSkillEntry`] — the same cell listed twice.
    pub fn from_sparse(
        num_workers: usize,
        num_tasks: usize,
        entries: impl IntoIterator<Item = (WorkerId, TaskId, f64)>,
    ) -> Result<Self, McsError> {
        let mut cells: Vec<(u32, u32, f64)> = Vec::new();
        for (w, t, v) in entries {
            if w.index() >= num_workers {
                return Err(McsError::WorkerOutOfRange {
                    worker: w,
                    num_workers,
                });
            }
            if t.index() >= num_tasks {
                return Err(McsError::BundleOutOfRange {
                    worker: w,
                    num_tasks,
                });
            }
            if !(0.0..=1.0).contains(&v) {
                return Err(McsError::InvalidSkill {
                    worker: w,
                    task: t,
                    value: v,
                });
            }
            cells.push((w.0, t.0, v));
        }
        cells.sort_by_key(|&(w, t, _)| (w, t));
        for pair in cells.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 {
                return Err(McsError::DuplicateSkillEntry {
                    worker: WorkerId(pair[0].0),
                    task: TaskId(pair[0].1),
                });
            }
        }
        let mut offsets = Vec::with_capacity(num_workers + 1);
        let mut tasks = Vec::new();
        let mut theta = Vec::new();
        offsets.push(0);
        let mut cursor = 0usize;
        for w in 0..num_workers as u32 {
            while cursor < cells.len() && cells[cursor].0 == w {
                let (_, t, v) = cells[cursor];
                if v != DEFAULT_THETA {
                    tasks.push(t);
                    theta.push(v);
                }
                cursor += 1;
            }
            offsets.push(tasks.len());
        }
        Ok(SkillMatrix {
            num_workers,
            num_tasks,
            repr: Repr::Csr {
                offsets,
                tasks,
                theta,
            },
        })
    }

    /// Number of workers (rows).
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of tasks (columns).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Whether this matrix is held in the CSR representation.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Csr { .. })
    }

    /// Number of physically stored θ values (`N·K` dense, `nnz` sparse).
    pub fn stored_len(&self) -> usize {
        match &self.repr {
            Repr::Dense { theta } => theta.len(),
            Repr::Csr { theta, .. } => theta.len(),
        }
    }

    /// Unchecked logical cell access by raw indices.
    #[inline]
    fn theta_at(&self, worker: usize, task: usize) -> f64 {
        match &self.repr {
            Repr::Dense { theta } => theta[worker * self.num_tasks + task],
            Repr::Csr {
                offsets,
                tasks,
                theta,
            } => {
                let row = &tasks[offsets[worker]..offsets[worker + 1]];
                match row.binary_search(&(task as u32)) {
                    Ok(pos) => theta[offsets[worker] + pos],
                    Err(_) => DEFAULT_THETA,
                }
            }
        }
    }

    /// The skill level `θ_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` or `task` is out of range.
    #[inline]
    pub fn theta(&self, worker: WorkerId, task: TaskId) -> f64 {
        assert!(worker.index() < self.num_workers, "worker out of range");
        assert!(task.index() < self.num_tasks, "task out of range");
        self.theta_at(worker.index(), task.index())
    }

    /// The aggregation weight `α_ij = 2θ_ij − 1` of Lemma 1.
    ///
    /// Positive for better-than-random workers, negative for anti-experts
    /// (whose labels are informative once flipped), zero at `θ = 0.5`.
    #[inline]
    pub fn alpha(&self, worker: WorkerId, task: TaskId) -> f64 {
        2.0 * self.theta(worker, task) - 1.0
    }

    /// The coverage weight `q_ij = (2θ_ij − 1)² ∈ [0, 1]` of the error-bound
    /// constraint.
    #[inline]
    pub fn q(&self, worker: WorkerId, task: TaskId) -> f64 {
        let a = self.alpha(worker, task);
        a * a
    }

    /// Visits a worker's full logical `θ` row in task order — without
    /// materializing it, and without per-cell binary searches on the CSR
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn for_each_theta(&self, worker: WorkerId, mut f: impl FnMut(f64)) {
        assert!(worker.index() < self.num_workers, "worker out of range");
        match &self.repr {
            Repr::Dense { theta } => {
                let start = worker.index() * self.num_tasks;
                for &v in &theta[start..start + self.num_tasks] {
                    f(v);
                }
            }
            Repr::Csr {
                offsets,
                tasks,
                theta,
            } => {
                let lo = offsets[worker.index()];
                let hi = offsets[worker.index() + 1];
                let mut next = 0usize;
                for (&t, &v) in tasks[lo..hi].iter().zip(&theta[lo..hi]) {
                    for _ in next..t as usize {
                        f(DEFAULT_THETA);
                    }
                    f(v);
                    next = t as usize + 1;
                }
                for _ in next..self.num_tasks {
                    f(DEFAULT_THETA);
                }
            }
        }
    }

    /// A worker's full logical `θ` row, materialized.
    pub fn worker_row(&self, worker: WorkerId) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.num_tasks);
        self.for_each_theta(worker, |v| row.push(v));
        row
    }
}

impl PartialEq for SkillMatrix {
    /// Logical equality: same dimensions and cell values, regardless of
    /// representation — required so `a == b ⇒ a.digest() == b.digest()`
    /// keeps holding now that equal matrices can be held in two layouts.
    fn eq(&self, other: &Self) -> bool {
        if self.num_workers != other.num_workers || self.num_tasks != other.num_tasks {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Dense { theta: a }, Repr::Dense { theta: b }) => a == b,
            // CSR is canonical (sorted, deduplicated, no stored defaults),
            // so structural equality is logical equality.
            (
                Repr::Csr {
                    offsets: ao,
                    tasks: at,
                    theta: av,
                },
                Repr::Csr {
                    offsets: bo,
                    tasks: bt,
                    theta: bv,
                },
            ) => ao == bo && at == bt && av == bv,
            _ => (0..self.num_workers)
                .all(|i| (0..self.num_tasks).all(|j| self.theta_at(i, j) == other.theta_at(i, j))),
        }
    }
}

impl Serialize for SkillMatrix {
    /// The dense representation keeps the wire shape every pre-CSR encoder
    /// produced (`{num_workers, num_tasks, theta}`); CSR adds an `offsets`
    /// field, which is also how the decoder tells the two forms apart.
    fn to_value(&self) -> Value {
        match &self.repr {
            Repr::Dense { theta } => Value::Object(vec![
                ("num_workers".to_string(), self.num_workers.to_value()),
                ("num_tasks".to_string(), self.num_tasks.to_value()),
                ("theta".to_string(), theta.to_value()),
            ]),
            Repr::Csr {
                offsets,
                tasks,
                theta,
            } => Value::Object(vec![
                ("num_workers".to_string(), self.num_workers.to_value()),
                ("num_tasks".to_string(), self.num_tasks.to_value()),
                ("offsets".to_string(), offsets.to_value()),
                ("tasks".to_string(), tasks.to_value()),
                ("theta".to_string(), theta.to_value()),
            ]),
        }
    }
}

impl Deserialize for SkillMatrix {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("object", v));
        }
        let field = |name: &'static str| v.get(name).ok_or_else(|| DeError::missing_field(name));
        let num_workers = usize::from_value(field("num_workers")?)?;
        let num_tasks = usize::from_value(field("num_tasks")?)?;
        let theta = Vec::<f64>::from_value(field("theta")?)?;
        if v.get("offsets").is_none() {
            // Legacy dense form: structurally permissive, exactly like the
            // previously derived decoder.
            return Ok(SkillMatrix {
                num_workers,
                num_tasks,
                repr: Repr::Dense { theta },
            });
        }
        // CSR form: new on the wire, so it can afford to be strict — a
        // malformed CSR would silently mis-shape every later lookup.
        let offsets = Vec::<usize>::from_value(field("offsets")?)?;
        let tasks = Vec::<u32>::from_value(field("tasks")?)?;
        if offsets.len() != num_workers + 1
            || offsets.first() != Some(&0)
            || offsets.last() != Some(&tasks.len())
            || tasks.len() != theta.len()
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(DeError::custom("malformed CSR skill matrix structure"));
        }
        for w in 0..num_workers {
            let row = &tasks[offsets[w]..offsets[w + 1]];
            if row.windows(2).any(|p| p[0] >= p[1]) || row.iter().any(|&t| t as usize >= num_tasks)
            {
                return Err(DeError::custom(
                    "CSR skill matrix rows must be strictly ascending and in range",
                ));
            }
        }
        if theta.iter().any(|v| !(0.0..=1.0).contains(v)) {
            return Err(DeError::custom("CSR skill matrix theta outside [0, 1]"));
        }
        // Re-canonicalize: stored defaults are dropped so equality stays
        // representation-independent even for hand-written payloads.
        let mut c_offsets = Vec::with_capacity(num_workers + 1);
        let mut c_tasks = Vec::new();
        let mut c_theta = Vec::new();
        c_offsets.push(0);
        for w in 0..num_workers {
            for i in offsets[w]..offsets[w + 1] {
                if theta[i] != DEFAULT_THETA {
                    c_tasks.push(tasks[i]);
                    c_theta.push(theta[i]);
                }
            }
            c_offsets.push(c_tasks.len());
        }
        Ok(SkillMatrix {
            num_workers,
            num_tasks,
            repr: Repr::Csr {
                offsets: c_offsets,
                tasks: c_tasks,
                theta: c_theta,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_out_of_range_theta() {
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![1.5]]),
            Err(McsError::InvalidSkill { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![-0.1]]),
            Err(McsError::InvalidSkill { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![f64::NAN]]),
            Err(McsError::InvalidSkill { .. })
        ));
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5]]),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_flat_checks_dimensions() {
        assert!(SkillMatrix::from_flat(2, 2, vec![0.5; 4]).is_ok());
        assert!(matches!(
            SkillMatrix::from_flat(2, 2, vec![0.5; 3]),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn q_is_symmetric_around_half() {
        let m = SkillMatrix::from_rows(vec![vec![0.9, 0.1, 0.5]]).unwrap();
        let q_expert = m.q(WorkerId(0), TaskId(0));
        let q_anti = m.q(WorkerId(0), TaskId(1));
        assert!((q_expert - q_anti).abs() < 1e-12);
        assert_eq!(m.q(WorkerId(0), TaskId(2)), 0.0);
    }

    #[test]
    fn alpha_sign() {
        let m = SkillMatrix::from_rows(vec![vec![0.8, 0.2]]).unwrap();
        assert!(m.alpha(WorkerId(0), TaskId(0)) > 0.0);
        assert!(m.alpha(WorkerId(0), TaskId(1)) < 0.0);
    }

    #[test]
    fn worker_row_slices() {
        let m = SkillMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert_eq!(m.worker_row(WorkerId(1)), &[0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "worker out of range")]
    fn theta_panics_out_of_range() {
        let m = SkillMatrix::from_rows(vec![vec![0.5]]).unwrap();
        let _ = m.theta(WorkerId(1), TaskId(0));
    }

    #[test]
    fn sparse_matches_dense_cell_by_cell() {
        let dense = SkillMatrix::from_rows(vec![vec![0.9, 0.5, 0.2], vec![0.5, 0.5, 0.8]]).unwrap();
        let sparse = SkillMatrix::from_sparse(
            2,
            3,
            vec![
                (WorkerId(1), TaskId(2), 0.8),
                (WorkerId(0), TaskId(0), 0.9),
                (WorkerId(0), TaskId(2), 0.2),
            ],
        )
        .unwrap();
        assert!(sparse.is_sparse());
        assert_eq!(sparse.stored_len(), 3);
        assert_eq!(dense, sparse);
        assert_eq!(sparse, dense);
        for w in 0..2 {
            assert_eq!(
                dense.worker_row(WorkerId(w)),
                sparse.worker_row(WorkerId(w))
            );
            for t in 0..3 {
                assert_eq!(
                    dense.theta(WorkerId(w), TaskId(t)),
                    sparse.theta(WorkerId(w), TaskId(t))
                );
            }
        }
    }

    #[test]
    fn sparse_drops_explicit_defaults() {
        let a = SkillMatrix::from_sparse(1, 2, vec![(WorkerId(0), TaskId(0), 0.9)]).unwrap();
        let b = SkillMatrix::from_sparse(
            1,
            2,
            vec![
                (WorkerId(0), TaskId(0), 0.9),
                (WorkerId(0), TaskId(1), DEFAULT_THETA),
            ],
        )
        .unwrap();
        assert_eq!(a.stored_len(), b.stored_len());
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_rejects_bad_entries() {
        assert!(matches!(
            SkillMatrix::from_sparse(1, 1, vec![(WorkerId(1), TaskId(0), 0.9)]),
            Err(McsError::WorkerOutOfRange { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_sparse(1, 1, vec![(WorkerId(0), TaskId(1), 0.9)]),
            Err(McsError::BundleOutOfRange { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_sparse(1, 1, vec![(WorkerId(0), TaskId(0), 1.9)]),
            Err(McsError::InvalidSkill { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_sparse(
                1,
                2,
                vec![(WorkerId(0), TaskId(0), 0.9), (WorkerId(0), TaskId(0), 0.8)]
            ),
            Err(McsError::DuplicateSkillEntry { .. })
        ));
    }

    #[test]
    fn serde_dense_wire_shape_is_unchanged() {
        let m = SkillMatrix::from_rows(vec![vec![0.1, 0.2]]).unwrap();
        let v = m.to_value();
        assert!(v.get("theta").is_some());
        assert!(v.get("offsets").is_none());
        let back = SkillMatrix::from_value(&v).unwrap();
        assert_eq!(m, back);
        assert!(!back.is_sparse());
    }

    #[test]
    fn serde_sparse_roundtrip_stays_sparse_and_equal() {
        let m = SkillMatrix::from_sparse(
            3,
            5,
            vec![(WorkerId(0), TaskId(1), 0.8), (WorkerId(2), TaskId(4), 0.3)],
        )
        .unwrap();
        let back = SkillMatrix::from_value(&m.to_value()).unwrap();
        assert!(back.is_sparse());
        assert_eq!(back.stored_len(), 2);
        assert_eq!(m, back);
    }

    #[test]
    fn serde_rejects_malformed_csr() {
        let m = SkillMatrix::from_sparse(2, 2, vec![(WorkerId(0), TaskId(0), 0.9)]).unwrap();
        let good = m.to_value();
        let tamper = |key: &str, val: Value| -> Value {
            let Value::Object(fields) = good.clone() else {
                unreachable!()
            };
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| if k == key { (k, val.clone()) } else { (k, v) })
                    .collect(),
            )
        };
        // Offsets length disagrees with the worker count.
        assert!(SkillMatrix::from_value(&tamper("offsets", vec![0usize, 1].to_value())).is_err());
        // Task index out of range.
        assert!(SkillMatrix::from_value(&tamper("tasks", vec![7u32].to_value())).is_err());
        // Theta out of range.
        assert!(SkillMatrix::from_value(&tamper("theta", vec![1.5f64].to_value())).is_err());
    }

    proptest! {
        #[test]
        fn prop_q_in_unit_interval(t in 0.0f64..=1.0) {
            let m = SkillMatrix::from_rows(vec![vec![t]]).unwrap();
            let q = m.q(WorkerId(0), TaskId(0));
            prop_assert!((0.0..=1.0).contains(&q));
            // q = alpha².
            let a = m.alpha(WorkerId(0), TaskId(0));
            prop_assert!((q - a * a).abs() < 1e-12);
        }

        #[test]
        fn prop_sparse_and_dense_agree(
            ws in proptest::collection::vec(0usize..3, 0..8),
            ts in proptest::collection::vec(0usize..4, 0..8),
            vs in proptest::collection::vec(0.0f64..=1.0, 0..8),
        ) {
            let mut dense_rows = vec![vec![DEFAULT_THETA; 4]; 3];
            let mut entries = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for ((&w, &t), &v) in ws.iter().zip(&ts).zip(&vs) {
                if seen.insert((w, t)) {
                    dense_rows[w][t] = v;
                    entries.push((WorkerId(w as u32), TaskId(t as u32), v));
                }
            }
            let dense = SkillMatrix::from_rows(dense_rows).unwrap();
            let sparse = SkillMatrix::from_sparse(3, 4, entries).unwrap();
            prop_assert_eq!(&dense, &sparse);
            for w in 0..3u32 {
                prop_assert_eq!(dense.worker_row(WorkerId(w)), sparse.worker_row(WorkerId(w)));
            }
            // Serde round-trips preserve logical equality for both layouts.
            let d2 = SkillMatrix::from_value(&dense.to_value()).unwrap();
            let s2 = SkillMatrix::from_value(&sparse.to_value()).unwrap();
            prop_assert_eq!(&d2, &s2);
            prop_assert_eq!(&dense, &d2);
        }
    }
}
