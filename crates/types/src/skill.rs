//! Worker skill matrices and derived coverage weights.

use serde::{Deserialize, Serialize};

use crate::{McsError, TaskId, WorkerId};

/// The skill matrix `θ = [θ_ij] ∈ [0,1]^{N×K}`.
///
/// `θ_ij` is the probability that the label worker `i` reports for binary
/// task `j` equals the true label. The platform maintains this matrix as
/// prior information (estimated from gold tasks, historical submissions, or
/// worker reputation — see `mcs-agg` for estimators) and uses the derived
/// weights `q_ij = (2θ_ij − 1)²` in the error-bound constraint of Lemma 1.
///
/// Stored dense and row-major: workers are rows, tasks are columns.
///
/// # Examples
///
/// ```
/// use mcs_types::{SkillMatrix, TaskId, WorkerId};
///
/// # fn main() -> Result<(), mcs_types::McsError> {
/// let skills = SkillMatrix::from_rows(vec![vec![0.9, 0.5], vec![0.1, 0.75]])?;
/// assert_eq!(skills.theta(WorkerId(0), TaskId(0)), 0.9);
/// // q = (2·0.9 − 1)² = 0.64
/// assert!((skills.q(WorkerId(0), TaskId(0)) - 0.64).abs() < 1e-12);
/// // θ = 0.5 carries zero information: q = 0.
/// assert_eq!(skills.q(WorkerId(0), TaskId(1)), 0.0);
/// // θ = 0.1 is *informative* (an anti-expert): q = 0.64.
/// assert!((skills.q(WorkerId(1), TaskId(0)) - 0.64).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkillMatrix {
    num_workers: usize,
    num_tasks: usize,
    /// Row-major `θ` values.
    theta: Vec<f64>,
}

impl SkillMatrix {
    /// Builds a skill matrix from per-worker rows.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidSkill`] if any entry is outside `[0, 1]`
    /// or not finite, and [`McsError::DimensionMismatch`] if rows have
    /// unequal lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, McsError> {
        let num_workers = rows.len();
        let num_tasks = rows.first().map_or(0, Vec::len);
        let mut theta = Vec::with_capacity(num_workers * num_tasks);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != num_tasks {
                return Err(McsError::DimensionMismatch {
                    what: "skill matrix row",
                    expected: num_tasks,
                    actual: row.len(),
                });
            }
            for (j, v) in row.into_iter().enumerate() {
                if !(0.0..=1.0).contains(&v) {
                    return Err(McsError::InvalidSkill {
                        worker: WorkerId(i as u32),
                        task: TaskId(j as u32),
                        value: v,
                    });
                }
                theta.push(v);
            }
        }
        Ok(SkillMatrix {
            num_workers,
            num_tasks,
            theta,
        })
    }

    /// Builds a skill matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::DimensionMismatch`] if `flat.len()` is not
    /// `num_workers * num_tasks`, or [`McsError::InvalidSkill`] on
    /// out-of-range entries.
    pub fn from_flat(
        num_workers: usize,
        num_tasks: usize,
        flat: Vec<f64>,
    ) -> Result<Self, McsError> {
        if flat.len() != num_workers * num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "flat skill matrix",
                expected: num_workers * num_tasks,
                actual: flat.len(),
            });
        }
        for (idx, &v) in flat.iter().enumerate() {
            if !(0.0..=1.0).contains(&v) {
                return Err(McsError::InvalidSkill {
                    worker: WorkerId((idx / num_tasks.max(1)) as u32),
                    task: TaskId((idx % num_tasks.max(1)) as u32),
                    value: v,
                });
            }
        }
        Ok(SkillMatrix {
            num_workers,
            num_tasks,
            theta: flat,
        })
    }

    /// Number of workers (rows).
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of tasks (columns).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// The skill level `θ_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` or `task` is out of range.
    #[inline]
    pub fn theta(&self, worker: WorkerId, task: TaskId) -> f64 {
        assert!(worker.index() < self.num_workers, "worker out of range");
        assert!(task.index() < self.num_tasks, "task out of range");
        self.theta[worker.index() * self.num_tasks + task.index()]
    }

    /// The aggregation weight `α_ij = 2θ_ij − 1` of Lemma 1.
    ///
    /// Positive for better-than-random workers, negative for anti-experts
    /// (whose labels are informative once flipped), zero at `θ = 0.5`.
    #[inline]
    pub fn alpha(&self, worker: WorkerId, task: TaskId) -> f64 {
        2.0 * self.theta(worker, task) - 1.0
    }

    /// The coverage weight `q_ij = (2θ_ij − 1)² ∈ [0, 1]` of the error-bound
    /// constraint.
    #[inline]
    pub fn q(&self, worker: WorkerId, task: TaskId) -> f64 {
        let a = self.alpha(worker, task);
        a * a
    }

    /// A worker's full `θ` row.
    pub fn worker_row(&self, worker: WorkerId) -> &[f64] {
        let start = worker.index() * self.num_tasks;
        &self.theta[start..start + self.num_tasks]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_out_of_range_theta() {
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![1.5]]),
            Err(McsError::InvalidSkill { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![-0.1]]),
            Err(McsError::InvalidSkill { .. })
        ));
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![f64::NAN]]),
            Err(McsError::InvalidSkill { .. })
        ));
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(matches!(
            SkillMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5]]),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_flat_checks_dimensions() {
        assert!(SkillMatrix::from_flat(2, 2, vec![0.5; 4]).is_ok());
        assert!(matches!(
            SkillMatrix::from_flat(2, 2, vec![0.5; 3]),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn q_is_symmetric_around_half() {
        let m = SkillMatrix::from_rows(vec![vec![0.9, 0.1, 0.5]]).unwrap();
        let q_expert = m.q(WorkerId(0), TaskId(0));
        let q_anti = m.q(WorkerId(0), TaskId(1));
        assert!((q_expert - q_anti).abs() < 1e-12);
        assert_eq!(m.q(WorkerId(0), TaskId(2)), 0.0);
    }

    #[test]
    fn alpha_sign() {
        let m = SkillMatrix::from_rows(vec![vec![0.8, 0.2]]).unwrap();
        assert!(m.alpha(WorkerId(0), TaskId(0)) > 0.0);
        assert!(m.alpha(WorkerId(0), TaskId(1)) < 0.0);
    }

    #[test]
    fn worker_row_slices() {
        let m = SkillMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert_eq!(m.worker_row(WorkerId(1)), &[0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "worker out of range")]
    fn theta_panics_out_of_range() {
        let m = SkillMatrix::from_rows(vec![vec![0.5]]).unwrap();
        let _ = m.theta(WorkerId(1), TaskId(0));
    }

    proptest! {
        #[test]
        fn prop_q_in_unit_interval(t in 0.0f64..=1.0) {
            let m = SkillMatrix::from_rows(vec![vec![t]]).unwrap();
            let q = m.q(WorkerId(0), TaskId(0));
            prop_assert!((0.0..=1.0).contains(&q));
            // q = alpha².
            let a = m.alpha(WorkerId(0), TaskId(0));
            prop_assert!((q - a * a).abs() < 1e-12);
        }
    }
}
