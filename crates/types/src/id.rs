//! Typed indices for workers and tasks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a worker in the worker set `N = {w_1, …, w_N}`.
///
/// The wrapped value is a zero-based index into whatever worker collection
/// the surrounding structure holds (e.g. a [`BidProfile`]).
///
/// [`BidProfile`]: crate::BidProfile
///
/// # Examples
///
/// ```
/// use mcs_types::WorkerId;
///
/// let w = WorkerId(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(w.to_string(), "w3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct WorkerId(pub u32);

/// Index of a task in the task set `T = {τ_1, …, τ_K}`.
///
/// # Examples
///
/// ```
/// use mcs_types::TaskId;
///
/// let t = TaskId(7);
/// assert_eq!(t.index(), 7);
/// assert_eq!(t.to_string(), "t7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(pub u32);

impl WorkerId {
    /// Returns the zero-based index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// Returns the zero-based index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for WorkerId {
    fn from(i: u32) -> Self {
        WorkerId(i)
    }
}

impl From<u32> for TaskId {
    fn from(i: u32) -> Self {
        TaskId(i)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_id_roundtrip() {
        let w: WorkerId = 5u32.into();
        assert_eq!(w, WorkerId(5));
        assert_eq!(w.index(), 5);
    }

    #[test]
    fn task_id_roundtrip() {
        let t: TaskId = 9u32.into();
        assert_eq!(t, TaskId(9));
        assert_eq!(t.index(), 9);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(WorkerId(1) < WorkerId(2));
        assert!(TaskId(0) < TaskId(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(WorkerId(12).to_string(), "w12");
        assert_eq!(TaskId(3).to_string(), "t3");
    }

    #[test]
    fn serde_transparent() {
        let json = serde_json::to_string(&WorkerId(4)).unwrap();
        assert_eq!(json, "4");
        let back: WorkerId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, WorkerId(4));
    }
}
