//! Stable content digests for auction inputs.
//!
//! The service layer caches schedule/PMF builds keyed by *what the auction
//! would compute over*, so it needs a digest of an [`Instance`] that is
//!
//! * **content-determined** — two instances that compare equal under
//!   `PartialEq` always digest equally, however they were constructed
//!   (bundle task order, builder path, cloning, serde round-trips);
//! * **field-sensitive** — changing any input the mechanism reads (one bid
//!   price, one bundle membership, one skill cell, one `δ_j`, the price
//!   grid, the cost range) changes the digest with overwhelming
//!   probability;
//! * **stable** — the value depends only on this module's canonical
//!   encoding, never on pointer identity, hash-map iteration order,
//!   platform endianness, or the Rust version, so digests may be persisted
//!   and compared across processes and machines.
//!
//! # Stability contract
//!
//! The encoding below is versioned by [`DIGEST_VERSION`], which is mixed
//! into every digest. Any change to the canonical field encoding MUST bump
//! the version so stale persisted digests can never alias fresh ones.
//! Within one version, `a == b  ⇒  a.digest() == b.digest()`, and the
//! converse holds up to 64-bit collision probability (FNV-1a; the cache
//! layer additionally stores nothing that would be unsound to serve on a
//! collision of *equal-shaped* inputs, but callers that need cryptographic
//! collision resistance must not use this digest).

use crate::Instance;

/// Version tag mixed into every [`Instance::digest`]; bump on any encoding
/// change (see the module-level stability contract).
pub const DIGEST_VERSION: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over a canonical byte encoding.
///
/// All multi-byte values are written little-endian; floats are written as
/// their IEEE-754 bit patterns (so `-0.0` and `0.0` digest differently,
/// which is fine — instance validation never produces both for equal
/// instances). Each logical field is preceded by a one-byte domain tag so
/// adjacent variable-length fields cannot alias each other.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Creates a hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a one-byte domain-separation tag.
    pub fn tag(&mut self, tag: u8) {
        self.write(&[tag]);
    }

    /// Absorbs a `u64` little-endian.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Absorbs an `i64` little-endian.
    pub fn write_i64(&mut self, x: i64) {
        self.write(&x.to_le_bytes());
    }

    /// Absorbs a `u32` little-endian.
    pub fn write_u32(&mut self, x: u32) {
        self.write(&x.to_le_bytes());
    }

    /// Absorbs a `usize` as `u64` so 32- and 64-bit platforms agree.
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Absorbs an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Field tags of the canonical [`Instance`] encoding. Values are part of
/// the stability contract; never reuse or renumber within a version.
mod field {
    pub const NUM_TASKS: u8 = 0x01;
    pub const BIDS: u8 = 0x02;
    pub const SKILLS: u8 = 0x03;
    pub const DELTAS: u8 = 0x04;
    pub const PRICE_GRID: u8 = 0x05;
    pub const COST_RANGE: u8 = 0x06;
    /// Written only when the completion model is effectively uncertain
    /// (some stored `p < 1`); see [`Instance::digest`](crate::Instance::digest).
    pub const COMPLETION: u8 = 0x07;
}

impl Instance {
    /// A stable 64-bit FNV-1a content digest of every field the mechanisms
    /// read: task count, the full bid profile (bundles and prices), the
    /// skill matrix, the per-task error bounds, the candidate price grid,
    /// and the cost range.
    ///
    /// Equal instances (in the `PartialEq` sense) always digest equally;
    /// see the [module-level stability contract](self) for what else is
    /// guaranteed. This is the cache key of the service layer's
    /// schedule/PMF cache, sound because schedule and PMF construction are
    /// deterministic functions of `(Instance, ε)`.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(DIGEST_VERSION);

        h.tag(field::NUM_TASKS);
        h.write_usize(self.num_tasks());

        h.tag(field::BIDS);
        h.write_usize(self.num_workers());
        for (_, bid) in self.bids().iter() {
            // Bundles are stored sorted and deduplicated, so iteration
            // order is canonical whatever order the caller listed tasks in.
            h.write_usize(bid.bundle().len());
            for t in bid.bundle().iter() {
                h.write_u32(t.0);
            }
            h.write_i64(bid.price().tenths());
        }

        h.tag(field::SKILLS);
        h.write_usize(self.skills().num_workers());
        h.write_usize(self.skills().num_tasks());
        // The *logical* matrix is hashed cell by cell, so a dense and a
        // CSR construction of equal matrices digest byte-identically —
        // which is what keeps the service PmfCache and request-batching
        // keys stable across layouts.
        for i in 0..self.skills().num_workers() {
            self.skills()
                .for_each_theta(crate::WorkerId(i as u32), |theta| h.write_f64(theta));
        }

        h.tag(field::DELTAS);
        h.write_usize(self.deltas().len());
        for &d in self.deltas() {
            h.write_f64(d);
        }

        h.tag(field::PRICE_GRID);
        h.write_i64(self.price_grid().min().tenths());
        h.write_i64(self.price_grid().max().tenths());
        h.write_i64(self.price_grid().step().tenths());

        h.tag(field::COST_RANGE);
        h.write_i64(self.cmin().tenths());
        h.write_i64(self.cmax().tenths());

        // Canonicalization, not an omission: a completion model with every
        // stored p = 1 (or no model at all) yields provably the same
        // effective covering problem — hence the same schedules and PMFs —
        // as Deterministic, so both digest identically and may share cache
        // entries. Any p < 1 makes the model (probabilities and shortfall
        // bounds) part of what the mechanisms compute over, so it is mixed
        // in.
        if let crate::CompletionModel::Bernoulli(b) = self.completion() {
            if self.completion().is_uncertain() {
                h.tag(field::COMPLETION);
                h.write_usize(b.rows().len());
                for row in b.rows() {
                    h.write_usize(row.len());
                    for &(t, p) in row {
                        h.write_u32(t.0);
                        h.write_f64(p);
                    }
                }
                h.write_usize(b.gammas().len());
                for &g in b.gammas() {
                    h.write_f64(g);
                }
            }
        }

        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bid, Bundle, Price, SkillMatrix, TaskId, WorkerId};

    fn base() -> Instance {
        Instance::builder(2)
            .bids(vec![
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(12.0),
                ),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.95]]).unwrap())
            .error_bounds(vec![0.2, 0.3])
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    #[test]
    fn permuted_but_equal_instances_collide() {
        // Same content, different construction order: bundle tasks listed
        // reversed and with a duplicate; deltas set via the vector path.
        let permuted = Instance::builder(2)
            .bids(vec![
                Bid::new(
                    Bundle::new(vec![TaskId(1), TaskId(0), TaskId(1)]),
                    Price::from_f64(12.0),
                ),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.95]]).unwrap())
            .error_bounds(vec![0.2, 0.3])
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert_eq!(base(), permuted);
        assert_eq!(base().digest(), permuted.digest());
    }

    #[test]
    fn digest_survives_clone_and_serde() {
        let inst = base();
        assert_eq!(inst.digest(), inst.clone().digest());
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst.digest(), back.digest());
    }

    #[test]
    fn one_bid_price_changes_digest() {
        let inst = base();
        let tweaked = inst
            .with_bid(
                WorkerId(1),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.1)),
            )
            .unwrap();
        assert_ne!(inst.digest(), tweaked.digest());
    }

    #[test]
    fn one_bundle_membership_changes_digest() {
        let inst = base();
        let tweaked = inst
            .with_bid(
                WorkerId(1),
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(15.0),
                ),
            )
            .unwrap();
        assert_ne!(inst.digest(), tweaked.digest());
    }

    #[test]
    fn one_skill_cell_changes_digest() {
        let tweaked = Instance::builder(2)
            .bids(vec![
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(12.0),
                ),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.94]]).unwrap())
            .error_bounds(vec![0.2, 0.3])
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert_ne!(base().digest(), tweaked.digest());
    }

    #[test]
    fn one_delta_changes_digest() {
        let tweaked = Instance::builder(2)
            .bids(vec![
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(12.0),
                ),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.95]]).unwrap())
            .error_bounds(vec![0.2, 0.30000001])
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert_ne!(base().digest(), tweaked.digest());
    }

    #[test]
    fn grid_and_cost_range_change_digest() {
        let grid = Instance::builder(2)
            .bids(vec![
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(12.0),
                ),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.95]]).unwrap())
            .error_bounds(vec![0.2, 0.3])
            .price_grid_f64(10.0, 20.0, 0.1)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap();
        assert_ne!(base().digest(), grid.digest());
        let range = Instance::builder(2)
            .bids(vec![
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(12.0),
                ),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.95]]).unwrap())
            .error_bounds(vec![0.2, 0.3])
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.5))
            .build()
            .unwrap();
        assert_ne!(base().digest(), range.digest());
    }

    #[test]
    fn completion_model_digest_canonicalization() {
        use crate::{BernoulliCompletion, CompletionModel};
        let inst = base();
        // All-ones Bernoulli is provably equivalent to Deterministic, so it
        // digests identically (shared PmfCache entries are sound).
        let unit = inst
            .with_completion(CompletionModel::Bernoulli(BernoulliCompletion::new(
                vec![vec![(TaskId(0), 1.0)], vec![(TaskId(1), 1.0)]],
                vec![0.1, 0.2],
            )))
            .unwrap();
        assert_eq!(inst.digest(), unit.digest());
        // Any p < 1 is read by the mechanisms and must change the digest.
        let uncertain = inst
            .with_completion(CompletionModel::Bernoulli(BernoulliCompletion::new(
                vec![vec![(TaskId(0), 0.9)], vec![]],
                vec![0.1, 0.2],
            )))
            .unwrap();
        assert_ne!(inst.digest(), uncertain.digest());
        // ... and so must the shortfall bounds, once uncertain.
        let tighter = inst
            .with_completion(CompletionModel::Bernoulli(BernoulliCompletion::new(
                vec![vec![(TaskId(0), 0.9)], vec![]],
                vec![0.05, 0.2],
            )))
            .unwrap();
        assert_ne!(uncertain.digest(), tighter.digest());
    }

    #[test]
    fn digest_is_stable_across_runs() {
        // Pin the concrete value: a change here means the canonical
        // encoding changed and DIGEST_VERSION must be bumped.
        let d = base().digest();
        assert_eq!(d, base().digest());
        // Known-answer check for the encoding itself.
        let mut h = Fnv1a::new();
        h.write(b"fnv");
        assert_eq!(h.finish(), {
            let mut s = FNV_OFFSET;
            for &b in b"fnv" {
                s ^= u64::from(b);
                s = s.wrapping_mul(FNV_PRIME);
            }
            s
        });
    }
}
