//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

use crate::{Price, TaskId, WorkerId};

/// Errors raised while constructing or validating MCS auction inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum McsError {
    /// A skill-matrix entry was outside `[0, 1]` or not finite.
    InvalidSkill {
        /// Worker (row) of the offending entry.
        worker: WorkerId,
        /// Task (column) of the offending entry.
        task: TaskId,
        /// The offending value.
        value: f64,
    },
    /// A sparse skill entry listed the same `(worker, task)` cell twice.
    DuplicateSkillEntry {
        /// Worker (row) of the repeated cell.
        worker: WorkerId,
        /// Task (column) of the repeated cell.
        task: TaskId,
    },
    /// A per-task error bound `δ_j` was outside the open interval `(0, 1)`.
    InvalidErrorBound {
        /// The task whose bound is invalid.
        task: TaskId,
        /// The offending value.
        value: f64,
    },
    /// A price grid had a non-positive step or `max < min`.
    InvalidPriceGrid {
        /// Requested minimum.
        min: Price,
        /// Requested maximum.
        max: Price,
        /// Requested step.
        step: Price,
    },
    /// Two containers that must agree in size did not.
    DimensionMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A worker id exceeded the profile length.
    WorkerOutOfRange {
        /// The offending id.
        worker: WorkerId,
        /// Number of workers in the container.
        num_workers: usize,
    },
    /// A bundle referenced a task id `≥ num_tasks`.
    BundleOutOfRange {
        /// The worker whose bundle is invalid.
        worker: WorkerId,
        /// Number of tasks in the instance.
        num_tasks: usize,
    },
    /// A worker bid an empty bundle.
    EmptyBundle {
        /// The offending worker.
        worker: WorkerId,
    },
    /// The cost range was empty (`c_max < c_min`) or a bid fell outside it.
    InvalidCostRange {
        /// Configured minimum cost.
        cmin: Price,
        /// Configured maximum cost.
        cmax: Price,
    },
    /// Even the full worker pool cannot satisfy some task's error-bound
    /// constraint, so no price is feasible.
    Infeasible {
        /// The first task whose constraint cannot be met.
        task: TaskId,
        /// Required coverage `Q_j`.
        required: f64,
        /// Maximum attainable coverage with all workers.
        attainable: f64,
    },
    /// A winner (or candidate) set that was expected to satisfy a task's
    /// covering constraint fell short — e.g. the surviving reports after
    /// worker dropout, or a backfill candidate pool that cannot close a
    /// residual requirement.
    ///
    /// Unlike [`McsError::Infeasible`] (the *full pool* cannot cover at
    /// all), a shortfall is about a specific, possibly partial, coverage
    /// state observed at runtime.
    CoverageShortfall {
        /// The task whose constraint is unmet.
        task: TaskId,
        /// Required coverage (`Q_j`, or the residual `Q'_j`).
        required: f64,
        /// Coverage actually achieved/attainable.
        achieved: f64,
    },
    /// An aggregation path required at least one label for a task but the
    /// delivered label set was empty there.
    EmptyLabelSet {
        /// The task with no labels.
        task: TaskId,
    },
    /// The worker pool can cover the tasks, but only at a price above the
    /// top of the candidate price grid, so the feasible price set is empty.
    NoFeasiblePrice {
        /// The smallest price at which the pool covers every task.
        required_price: Price,
        /// The top of the candidate grid.
        grid_max: Price,
    },
    /// A required builder field was missing.
    MissingField {
        /// Name of the missing field.
        field: &'static str,
    },
    /// A privacy budget ε was not strictly positive and finite.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// A completion probability `p_ij` was outside the half-open interval
    /// `(0, 1]` (zero-probability entries must simply be omitted from the
    /// bundle).
    InvalidCompletionProb {
        /// Worker of the offending entry.
        worker: WorkerId,
        /// Task of the offending entry.
        task: TaskId,
        /// The offending value.
        value: f64,
    },
    /// A chance-constraint shortfall bound `γ_j` was outside the open
    /// interval `(0, 1)`.
    InvalidShortfallBound {
        /// The task whose bound is invalid.
        task: TaskId,
        /// The offending value.
        value: f64,
    },
    /// A completion model listed the same `(worker, task)` probability
    /// twice.
    DuplicateCompletionEntry {
        /// Worker of the repeated entry.
        worker: WorkerId,
        /// Task of the repeated entry.
        task: TaskId,
    },
    /// An exact-solver backend failed (ILP stack errors surface here so the
    /// whole workspace shares one error type).
    Solver {
        /// Human-readable description of the backend failure.
        message: String,
    },
}

impl fmt::Display for McsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McsError::InvalidSkill {
                worker,
                task,
                value,
            } => write!(
                f,
                "skill level theta[{worker}][{task}] = {value} is outside [0, 1]"
            ),
            McsError::DuplicateSkillEntry { worker, task } => write!(
                f,
                "sparse skill entry theta[{worker}][{task}] was listed more than once"
            ),
            McsError::InvalidErrorBound { task, value } => write!(
                f,
                "error bound delta[{task}] = {value} is outside the open interval (0, 1)"
            ),
            McsError::InvalidPriceGrid { min, max, step } => write!(
                f,
                "price grid [{min}, {max}] with step {step} is empty or has non-positive step"
            ),
            McsError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
            McsError::WorkerOutOfRange {
                worker,
                num_workers,
            } => write!(f, "worker {worker} out of range for {num_workers} workers"),
            McsError::BundleOutOfRange { worker, num_tasks } => write!(
                f,
                "bundle of {worker} references a task outside the {num_tasks}-task set"
            ),
            McsError::EmptyBundle { worker } => {
                write!(f, "worker {worker} bid an empty bundle")
            }
            McsError::InvalidCostRange { cmin, cmax } => {
                write!(f, "invalid cost range [{cmin}, {cmax}]")
            }
            McsError::Infeasible {
                task,
                required,
                attainable,
            } => write!(
                f,
                "task {task} needs coverage {required} but the full pool attains only {attainable}"
            ),
            McsError::CoverageShortfall {
                task,
                required,
                achieved,
            } => write!(
                f,
                "task {task} requires coverage {required} but only {achieved} was achieved"
            ),
            McsError::EmptyLabelSet { task } => {
                write!(f, "task {task} received no labels")
            }
            McsError::NoFeasiblePrice {
                required_price,
                grid_max,
            } => write!(
                f,
                "covering the tasks requires price {required_price} but the grid tops out at {grid_max}"
            ),
            McsError::MissingField { field } => {
                write!(f, "instance builder is missing required field `{field}`")
            }
            McsError::InvalidEpsilon { value } => {
                write!(f, "privacy budget epsilon = {value} must be positive and finite")
            }
            McsError::InvalidCompletionProb {
                worker,
                task,
                value,
            } => write!(
                f,
                "completion probability p[{worker}][{task}] = {value} is outside (0, 1]"
            ),
            McsError::InvalidShortfallBound { task, value } => write!(
                f,
                "shortfall bound gamma[{task}] = {value} is outside the open interval (0, 1)"
            ),
            McsError::DuplicateCompletionEntry { worker, task } => write!(
                f,
                "completion probability p[{worker}][{task}] was listed more than once"
            ),
            McsError::Solver { message } => {
                write!(f, "exact solver failed: {message}")
            }
        }
    }
}

impl Error for McsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = McsError::EmptyBundle {
            worker: WorkerId(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("w3"));
        assert!(msg.starts_with("worker"));
    }

    #[test]
    fn error_trait_object() {
        fn take(_: &dyn Error) {}
        take(&McsError::MissingField { field: "bids" });
    }

    #[test]
    fn epsilon_and_solver_variants_render() {
        let e = McsError::InvalidEpsilon { value: -0.5 };
        assert!(e.to_string().contains("-0.5"));
        let s = McsError::Solver {
            message: "node budget exhausted".into(),
        };
        assert!(s.to_string().starts_with("exact solver failed"));
    }

    #[test]
    fn shortfall_and_empty_label_variants_render() {
        let e = McsError::CoverageShortfall {
            task: TaskId(2),
            required: 3.5,
            achieved: 1.25,
        };
        let msg = e.to_string();
        assert!(msg.contains("t2"));
        assert!(msg.contains("3.5"));
        assert!(msg.contains("1.25"));
        let e = McsError::EmptyLabelSet { task: TaskId(7) };
        assert!(e.to_string().contains("t7"));
    }

    #[test]
    fn completion_variants_render() {
        let e = McsError::InvalidCompletionProb {
            worker: WorkerId(1),
            task: TaskId(2),
            value: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("w1") && msg.contains("t2") && msg.contains("1.5"));
        let e = McsError::InvalidShortfallBound {
            task: TaskId(0),
            value: 0.0,
        };
        assert!(e.to_string().contains("gamma[t0]"));
        let e = McsError::DuplicateCompletionEntry {
            worker: WorkerId(3),
            task: TaskId(4),
        };
        assert!(e.to_string().contains("more than once"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<McsError>();
    }
}
