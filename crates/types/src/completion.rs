//! Task-completion models and the chance-constrained coverage quota.
//!
//! The paper assumes a selected worker completes every task in her bundle
//! deterministically, so the covering constraint `Σ q_ij ≥ Q_j` is exact.
//! Jiang et al. (arXiv 2305.16793) extend the same setting to tasks whose
//! completion is *Bernoulli*: worker `i` completes task `j` only with
//! probability `p_ij`, independently. This module generalizes the
//! covering layer to that model while keeping the deterministic path
//! bit-exact:
//!
//! * [`CompletionModel`] — `Deterministic` (the paper) or `Bernoulli`
//!   with sparse per-entry probabilities `p_ij ∈ (0, 1]` and per-task
//!   shortfall bounds `γ_j ∈ (0, 1)`.
//! * [`chance_quota`] — the Chernoff-derived effective requirement `R_j`
//!   such that any selected set with *expected* coverage `≥ R_j` has
//!   `Pr[realized coverage < Q_j] ≤ γ_j`.
//! * [`UncertainCoverage`] — the metadata an effective covering problem
//!   carries so verifiers can recover `p_ij`, the original `Q_j`, and
//!   `γ_j` behind the [`CoverageView`](crate::CoverageView) trait.
//!
//! # The Chernoff quota, in the log-form of Lemma 1
//!
//! Fix a task `j` and a selected set `S`. Realized coverage is
//! `X_j = Σ_{i∈S} q_ij · B_ij` with `B_ij ~ Bernoulli(p_ij)` independent,
//! so `μ_j = E[X_j] = Σ_{i∈S} p_ij · q_ij` — which is exactly the
//! coverage of `S` under the *effective weights* `q̃_ij = p_ij · q_ij`.
//! Each term lies in `[0, q_ij] ⊆ [0, 1]` (since `q = (2θ−1)² ≤ 1`), so
//! the multiplicative Chernoff lower tail gives, for `μ_j > Q_j`,
//!
//! ```text
//! Pr[X_j < Q_j] ≤ exp(−(μ_j − Q_j)² / (2 μ_j)).
//! ```
//!
//! Requiring this to be at most `γ_j` and writing `L_j = ln(1/γ_j)`
//! yields the closed-form quota
//!
//! ```text
//! R_j = Q_j + L_j + sqrt(L_j² + 2 L_j Q_j),
//! ```
//!
//! the smallest `μ` with `(μ − Q_j)² / (2μ) ≥ L_j`. The achieved bound
//! `γ̂_j = exp(−(μ_j − Q_j)²/(2 μ_j))` has the same `exp(−·/2)` log-form
//! as Lemma 1's `δ̂_j = exp(−C_j/2)`, so the paper's error-bound analysis
//! carries over with `C_j` replaced by `(μ_j − Q_j)²/μ_j`.
//!
//! # The `p = 1` invariant
//!
//! A task whose incident entries all have `p_ij = 1` is *certain*: its
//! realized coverage equals its effective coverage, so no inflation is
//! applied and its requirement stays the verbatim `2 ln(1/δ_j)`
//! expression. Effective weights multiply by `p_ij` only when
//! `p_ij < 1`. Both choices make a `Bernoulli` model with all-one
//! probabilities produce *bit-identical* covering problems — and hence
//! schedules, payments, and digests — to `Deterministic`; the
//! `mcs-verify` degenerate suite asserts this across every engine.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{McsError, TaskId, WorkerId};

/// `L = ln(1/γ)` for a shortfall bound `γ ∈ (0, 1)`.
#[inline]
fn log_term(gamma: f64) -> f64 {
    (1.0 / gamma).ln()
}

/// The chance-constrained effective quota `R` for a base requirement `Q`
/// and shortfall bound `γ`: the least expected coverage under which the
/// Chernoff lower tail guarantees `Pr[realized < Q] ≤ γ`.
///
/// `R = Q + L + sqrt(L² + 2·L·Q)` with `L = ln(1/γ)`. Monotone:
/// increasing in `Q`, decreasing in `γ` (tightening γ raises the quota),
/// and `R → Q` as `γ → 1⁻`.
///
/// # Examples
///
/// ```
/// use mcs_types::chance_quota;
///
/// let q = 3.0;
/// let r = chance_quota(q, 0.1);
/// assert!(r > q);
/// // Achieved bound at μ = R meets γ exactly (up to float error).
/// assert!((mcs_types::chernoff_shortfall_bound(r, q) - 0.1).abs() < 1e-9);
/// ```
pub fn chance_quota(base: f64, gamma: f64) -> f64 {
    let l = log_term(gamma);
    base + l + (l * l + 2.0 * l * base).sqrt()
}

/// The Chernoff bound on `Pr[realized coverage < base]` for a selected
/// set with expected coverage `mu`: `exp(−(μ−Q)²/(2μ))` when `μ > Q`,
/// and the trivial bound `1` otherwise.
///
/// Same `exp(−·/2)` log-form as Lemma 1's `δ̂ = exp(−C/2)` — here with
/// `C = (μ−Q)²/μ`.
pub fn chernoff_shortfall_bound(mu: f64, base: f64) -> f64 {
    if mu > base && mu > 0.0 {
        let slack = mu - base;
        (-(slack * slack) / (2.0 * mu)).exp()
    } else {
        1.0
    }
}

/// How selected workers complete the tasks in their bundles.
///
/// `Deterministic` is the paper's model (every bundled task completes);
/// `Bernoulli` is the uncertain-tasks extension. The default is
/// `Deterministic`, and instances serialized before this field existed
/// decode as `Deterministic`.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum CompletionModel {
    /// Every selected worker completes her whole bundle (the paper).
    #[default]
    Deterministic,
    /// Worker `i` completes task `j` independently with probability
    /// `p_ij`; coverage requirements become chance constraints.
    Bernoulli(BernoulliCompletion),
}

impl CompletionModel {
    /// Completion probability `p_ij`; `1.0` under `Deterministic` and for
    /// any pair without a stored override.
    #[inline]
    pub fn p(&self, worker: WorkerId, task: TaskId) -> f64 {
        match self {
            CompletionModel::Deterministic => 1.0,
            CompletionModel::Bernoulli(b) => b.p(worker, task),
        }
    }

    /// The per-task shortfall bound `γ_j`, if the model carries one.
    #[inline]
    pub fn gamma(&self, task: TaskId) -> Option<f64> {
        match self {
            CompletionModel::Deterministic => None,
            CompletionModel::Bernoulli(b) => b.gammas.get(task.index()).copied(),
        }
    }

    /// Whether any stored entry has `p < 1` — i.e. whether the model can
    /// behave differently from `Deterministic` at all.
    pub fn is_uncertain(&self) -> bool {
        match self {
            CompletionModel::Deterministic => false,
            CompletionModel::Bernoulli(b) => {
                b.rows.iter().any(|row| row.iter().any(|&(_, p)| p < 1.0))
            }
        }
    }

    /// Validates the model against an instance's dimensions.
    ///
    /// # Errors
    ///
    /// * [`McsError::DimensionMismatch`] — wrong number of probability
    ///   rows or shortfall bounds.
    /// * [`McsError::BundleOutOfRange`] — an entry references a task
    ///   `≥ num_tasks`.
    /// * [`McsError::DuplicateCompletionEntry`] — a `(worker, task)` pair
    ///   is listed twice.
    /// * [`McsError::InvalidCompletionProb`] — some `p_ij ∉ (0, 1]`.
    /// * [`McsError::InvalidShortfallBound`] — some `γ_j ∉ (0, 1)`.
    pub fn validate(&self, num_workers: usize, num_tasks: usize) -> Result<(), McsError> {
        let b = match self {
            CompletionModel::Deterministic => return Ok(()),
            CompletionModel::Bernoulli(b) => b,
        };
        if b.rows.len() != num_workers {
            return Err(McsError::DimensionMismatch {
                what: "completion probability rows",
                expected: num_workers,
                actual: b.rows.len(),
            });
        }
        if b.gammas.len() != num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "shortfall bound vector",
                expected: num_tasks,
                actual: b.gammas.len(),
            });
        }
        for (i, row) in b.rows.iter().enumerate() {
            let worker = WorkerId(i as u32);
            let mut seen: Vec<u32> = Vec::with_capacity(row.len());
            for &(task, p) in row {
                if task.index() >= num_tasks {
                    return Err(McsError::BundleOutOfRange { worker, num_tasks });
                }
                if seen.contains(&task.0) {
                    return Err(McsError::DuplicateCompletionEntry { worker, task });
                }
                seen.push(task.0);
                if !p.is_finite() || p <= 0.0 || p > 1.0 {
                    return Err(McsError::InvalidCompletionProb {
                        worker,
                        task,
                        value: p,
                    });
                }
            }
        }
        for (j, &g) in b.gammas.iter().enumerate() {
            if !g.is_finite() || g <= 0.0 || g >= 1.0 {
                return Err(McsError::InvalidShortfallBound {
                    task: TaskId(j as u32),
                    value: g,
                });
            }
        }
        Ok(())
    }

    /// The same model with every stored probability forced to `1.0`
    /// (shortfall bounds kept) — the degenerate instance the `p = 1`
    /// reduction suite compares against the deterministic path.
    pub fn with_unit_probabilities(&self) -> CompletionModel {
        match self {
            CompletionModel::Deterministic => CompletionModel::Deterministic,
            CompletionModel::Bernoulli(b) => CompletionModel::Bernoulli(BernoulliCompletion {
                rows: b
                    .rows
                    .iter()
                    .map(|row| row.iter().map(|&(t, _)| (t, 1.0)).collect())
                    .collect(),
                gammas: b.gammas.clone(),
            }),
        }
    }

    /// Projects the model onto a worker subset, preserving order — the
    /// companion of coverage `restrict_to` for counterexample shrinking.
    pub fn restrict_to_workers(&self, workers: &[WorkerId]) -> CompletionModel {
        match self {
            CompletionModel::Deterministic => CompletionModel::Deterministic,
            CompletionModel::Bernoulli(b) => CompletionModel::Bernoulli(BernoulliCompletion {
                rows: workers
                    .iter()
                    .map(|w| b.rows.get(w.index()).cloned().unwrap_or_default())
                    .collect(),
                gammas: b.gammas.clone(),
            }),
        }
    }

    /// Removes task `removed` and shifts higher task ids down by one —
    /// the companion of instance shrinking by task deletion.
    pub fn without_task(&self, removed: TaskId) -> CompletionModel {
        match self {
            CompletionModel::Deterministic => CompletionModel::Deterministic,
            CompletionModel::Bernoulli(b) => {
                let rows = b
                    .rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .filter(|&&(t, _)| t != removed)
                            .map(|&(t, p)| {
                                if t.0 > removed.0 {
                                    (TaskId(t.0 - 1), p)
                                } else {
                                    (t, p)
                                }
                            })
                            .collect()
                    })
                    .collect();
                let mut gammas = b.gammas.clone();
                if removed.index() < gammas.len() {
                    gammas.remove(removed.index());
                }
                CompletionModel::Bernoulli(BernoulliCompletion { rows, gammas })
            }
        }
    }
}

/// Sparse per-worker completion probabilities plus per-task shortfall
/// bounds — the payload of [`CompletionModel::Bernoulli`].
///
/// Row `i` lists `(task, p_ij)` overrides for worker `i`; pairs not
/// listed default to `p = 1`. Rows are kept sorted by task id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BernoulliCompletion {
    rows: Vec<Vec<(TaskId, f64)>>,
    gammas: Vec<f64>,
}

impl BernoulliCompletion {
    /// Builds the model from per-worker `(task, p)` override rows and
    /// per-task shortfall bounds `γ_j`. Rows are sorted by task id;
    /// domain validation happens in [`CompletionModel::validate`] (called
    /// by the instance builder).
    pub fn new(mut rows: Vec<Vec<(TaskId, f64)>>, gammas: Vec<f64>) -> Self {
        for row in &mut rows {
            row.sort_unstable_by_key(|&(t, _)| t.0);
        }
        BernoulliCompletion { rows, gammas }
    }

    /// Completion probability `p_ij` (defaults to `1.0` off-row).
    ///
    /// A linear scan: override rows are bundle-sized, and the builders
    /// touch each `(worker, task)` pair once.
    #[inline]
    pub fn p(&self, worker: WorkerId, task: TaskId) -> f64 {
        self.rows
            .get(worker.index())
            .and_then(|row| row.iter().find(|&&(t, _)| t == task))
            .map_or(1.0, |&(_, p)| p)
    }

    /// The per-worker override rows.
    #[inline]
    pub fn rows(&self) -> &[Vec<(TaskId, f64)>] {
        &self.rows
    }

    /// The per-task shortfall bounds `γ_j`.
    #[inline]
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }
}

impl Serialize for CompletionModel {
    fn to_value(&self) -> Value {
        match self {
            CompletionModel::Deterministic => Value::Object(vec![(
                "model".to_string(),
                Value::String("deterministic".to_string()),
            )]),
            CompletionModel::Bernoulli(b) => Value::Object(vec![
                ("model".to_string(), Value::String("bernoulli".to_string())),
                ("rows".to_string(), b.rows.to_value()),
                ("gammas".to_string(), b.gammas.to_value()),
            ]),
        }
    }
}

impl Deserialize for CompletionModel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(
            v.get("model")
                .ok_or_else(|| DeError::missing_field("model"))?,
        )?;
        match tag.as_str() {
            "deterministic" => Ok(CompletionModel::Deterministic),
            "bernoulli" => {
                let rows = Vec::<Vec<(TaskId, f64)>>::from_value(
                    v.get("rows")
                        .ok_or_else(|| DeError::missing_field("rows"))?,
                )?;
                let gammas = Vec::<f64>::from_value(
                    v.get("gammas")
                        .ok_or_else(|| DeError::missing_field("gammas"))?,
                )?;
                Ok(CompletionModel::Bernoulli(BernoulliCompletion::new(
                    rows, gammas,
                )))
            }
            other => Err(DeError::custom(format!(
                "unknown completion model `{other}`"
            ))),
        }
    }
}

/// Uncertainty metadata attached to an *effective* covering problem: the
/// raw `p_ij` aligned with the CSR entries, the original deterministic
/// requirements `Q_j`, and the shortfall bounds `γ_j`.
///
/// The stored weights of the owning problem are the effective
/// `q̃_ij = p_ij · q_ij` and its requirements the inflated `R_j`; this
/// struct is what lets verifiers (and the Monte Carlo shortfall checker)
/// recover the chance-constraint statement from the covering problem
/// alone, via the [`CoverageView`](crate::CoverageView) accessors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainCoverage {
    probs: Vec<f64>,
    base_requirements: Vec<f64>,
    gammas: Vec<f64>,
}

impl UncertainCoverage {
    pub(crate) fn from_parts(
        probs: Vec<f64>,
        base_requirements: Vec<f64>,
        gammas: Vec<f64>,
    ) -> Self {
        UncertainCoverage {
            probs,
            base_requirements,
            gammas,
        }
    }

    /// Per-entry probabilities, parallel to the CSR weight array.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Original deterministic requirements `Q_j = 2 ln(1/δ_j)`.
    #[inline]
    pub fn base_requirements(&self) -> &[f64] {
        &self.base_requirements
    }

    /// Per-task shortfall bounds `γ_j`.
    #[inline]
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    pub(crate) fn restrict_entries(&self, ranges: &[(usize, usize)]) -> UncertainCoverage {
        let mut probs = Vec::new();
        for &(lo, hi) in ranges {
            probs.extend_from_slice(&self.probs[lo..hi]);
        }
        UncertainCoverage {
            probs,
            base_requirements: self.base_requirements.clone(),
            gammas: self.gammas.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_exceeds_base_and_inverts_cleanly() {
        for &q in &[0.1, 0.7, 3.0, 12.5] {
            for &g in &[0.01, 0.1, 0.3, 0.7] {
                let r = chance_quota(q, g);
                assert!(r > q, "quota must exceed the base requirement");
                // At μ = R the Chernoff bound equals γ.
                let back = chernoff_shortfall_bound(r, q);
                assert!((back - g).abs() < 1e-9, "q={q} g={g}: {back} vs {g}");
            }
        }
    }

    #[test]
    fn quota_is_monotone() {
        let r1 = chance_quota(3.0, 0.1);
        let r2 = chance_quota(3.0, 0.05);
        assert!(r2 > r1, "tightening gamma raises the quota");
        assert!(chance_quota(4.0, 0.1) > r1, "raising Q raises the quota");
    }

    #[test]
    fn shortfall_bound_is_trivial_without_slack() {
        assert_eq!(chernoff_shortfall_bound(2.0, 2.0), 1.0);
        assert_eq!(chernoff_shortfall_bound(1.0, 2.0), 1.0);
        assert!(chernoff_shortfall_bound(3.0, 2.0) < 1.0);
    }

    fn model() -> CompletionModel {
        CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(1), 0.8), (TaskId(0), 0.6)], vec![]],
            vec![0.1, 0.2],
        ))
    }

    #[test]
    fn probability_lookup_defaults_to_one() {
        let m = model();
        assert_eq!(m.p(WorkerId(0), TaskId(0)), 0.6);
        assert_eq!(m.p(WorkerId(0), TaskId(1)), 0.8);
        assert_eq!(m.p(WorkerId(1), TaskId(0)), 1.0);
        assert_eq!(m.p(WorkerId(7), TaskId(0)), 1.0);
        assert_eq!(
            CompletionModel::Deterministic.p(WorkerId(0), TaskId(0)),
            1.0
        );
    }

    #[test]
    fn uncertainty_flag_requires_a_sub_one_entry() {
        assert!(model().is_uncertain());
        assert!(!CompletionModel::Deterministic.is_uncertain());
        assert!(!model().with_unit_probabilities().is_uncertain());
    }

    #[test]
    fn validation_catches_domain_errors() {
        let m = model();
        m.validate(2, 2).unwrap();
        assert!(matches!(
            m.validate(3, 2),
            Err(McsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            m.validate(2, 1),
            Err(McsError::DimensionMismatch { .. })
        ));
        let bad_p = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(0), 0.0)]],
            vec![0.1],
        ));
        assert!(matches!(
            bad_p.validate(1, 1),
            Err(McsError::InvalidCompletionProb { value, .. }) if value == 0.0
        ));
        let bad_g = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(0), 0.5)]],
            vec![1.0],
        ));
        assert!(matches!(
            bad_g.validate(1, 1),
            Err(McsError::InvalidShortfallBound { value, .. }) if value == 1.0
        ));
        let dup = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(0), 0.5), (TaskId(0), 0.7)]],
            vec![0.1],
        ));
        assert!(matches!(
            dup.validate(1, 1),
            Err(McsError::DuplicateCompletionEntry { .. })
        ));
        let oob = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(5), 0.5)]],
            vec![0.1],
        ));
        assert!(matches!(
            oob.validate(1, 1),
            Err(McsError::BundleOutOfRange { .. })
        ));
        CompletionModel::Deterministic.validate(0, 0).unwrap();
    }

    #[test]
    fn shrinking_helpers_preserve_structure() {
        let m = model();
        let r = m.restrict_to_workers(&[WorkerId(1), WorkerId(0)]);
        assert_eq!(r.p(WorkerId(0), TaskId(0)), 1.0);
        assert_eq!(r.p(WorkerId(1), TaskId(0)), 0.6);
        let w = m.without_task(TaskId(0));
        assert_eq!(w.p(WorkerId(0), TaskId(0)), 0.8, "task 1 shifted down");
        assert_eq!(w.gamma(TaskId(0)), Some(0.2));
    }

    #[test]
    fn serde_roundtrip_both_variants() {
        for m in [CompletionModel::Deterministic, model()] {
            let v = m.to_value();
            let back = CompletionModel::from_value(&v).unwrap();
            assert_eq!(m, back);
        }
        assert!(CompletionModel::from_value(&Value::Object(vec![(
            "model".to_string(),
            Value::String("quantum".to_string())
        )]))
        .is_err());
    }
}
