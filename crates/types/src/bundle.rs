//! Task bundles — the sets of tasks workers bid on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TaskId;

/// A set of tasks (`Γ ⊆ T`) that a worker offers to execute.
///
/// Stored as a sorted, deduplicated vector so membership tests are
/// `O(log |Γ|)` and iteration order is deterministic. The paper calls any
/// subset of the task set `T` a *bundle*; every worker is single-minded and
/// bids exactly one bundle.
///
/// # Examples
///
/// ```
/// use mcs_types::{Bundle, TaskId};
///
/// let bundle = Bundle::new(vec![TaskId(2), TaskId(0), TaskId(2)]);
/// assert_eq!(bundle.len(), 2);
/// assert!(bundle.contains(TaskId(0)));
/// assert!(!bundle.contains(TaskId(1)));
/// assert_eq!(bundle.iter().collect::<Vec<_>>(), vec![TaskId(0), TaskId(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Bundle {
    tasks: Vec<TaskId>,
}

impl Bundle {
    /// Creates a bundle from a list of tasks, sorting and deduplicating.
    pub fn new(mut tasks: Vec<TaskId>) -> Self {
        tasks.sort_unstable();
        tasks.dedup();
        Bundle { tasks }
    }

    /// Creates an empty bundle.
    ///
    /// Empty bundles are rejected by instance validation but are useful as
    /// placeholders while constructing profiles.
    pub fn empty() -> Self {
        Bundle { tasks: Vec::new() }
    }

    /// Number of tasks in the bundle, `|Γ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the bundle contains no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, task: TaskId) -> bool {
        self.tasks.binary_search(&task).is_ok()
    }

    /// Iterates over the tasks in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.iter().copied()
    }

    /// Returns the tasks as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Returns `true` if every task id is below `num_tasks`.
    pub fn within_task_count(&self, num_tasks: usize) -> bool {
        self.tasks.last().is_none_or(|t| t.index() < num_tasks)
    }

    /// Returns the intersection with another bundle.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcs_types::{Bundle, TaskId};
    /// let a = Bundle::new(vec![TaskId(0), TaskId(1), TaskId(2)]);
    /// let b = Bundle::new(vec![TaskId(1), TaskId(3)]);
    /// assert_eq!(a.intersection(&b), Bundle::new(vec![TaskId(1)]));
    /// ```
    pub fn intersection(&self, other: &Bundle) -> Bundle {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        Bundle {
            tasks: small
                .tasks
                .iter()
                .copied()
                .filter(|t| large.contains(*t))
                .collect(),
        }
    }

    /// Returns the union with another bundle.
    pub fn union(&self, other: &Bundle) -> Bundle {
        let mut tasks = Vec::with_capacity(self.len() + other.len());
        tasks.extend_from_slice(&self.tasks);
        tasks.extend_from_slice(&other.tasks);
        Bundle::new(tasks)
    }
}

impl FromIterator<TaskId> for Bundle {
    fn from_iter<I: IntoIterator<Item = TaskId>>(iter: I) -> Self {
        Bundle::new(iter.into_iter().collect())
    }
}

impl Extend<TaskId> for Bundle {
    fn extend<I: IntoIterator<Item = TaskId>>(&mut self, iter: I) {
        self.tasks.extend(iter);
        self.tasks.sort_unstable();
        self.tasks.dedup();
    }
}

impl<'a> IntoIterator for &'a Bundle {
    type Item = TaskId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, TaskId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter().copied()
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_sorts_and_dedups() {
        let b = Bundle::new(vec![TaskId(5), TaskId(1), TaskId(5), TaskId(3)]);
        assert_eq!(b.as_slice(), &[TaskId(1), TaskId(3), TaskId(5)]);
    }

    #[test]
    fn empty_bundle() {
        let b = Bundle::empty();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(!b.contains(TaskId(0)));
        assert_eq!(b.to_string(), "{}");
    }

    #[test]
    fn contains_only_members() {
        let b = Bundle::new(vec![TaskId(0), TaskId(2), TaskId(4)]);
        assert!(b.contains(TaskId(0)));
        assert!(!b.contains(TaskId(1)));
        assert!(b.contains(TaskId(4)));
        assert!(!b.contains(TaskId(5)));
    }

    #[test]
    fn within_task_count_checks_max() {
        let b = Bundle::new(vec![TaskId(0), TaskId(9)]);
        assert!(b.within_task_count(10));
        assert!(!b.within_task_count(9));
        assert!(Bundle::empty().within_task_count(0));
    }

    #[test]
    fn union_and_intersection() {
        let a = Bundle::new(vec![TaskId(0), TaskId(1)]);
        let b = Bundle::new(vec![TaskId(1), TaskId(2)]);
        assert_eq!(a.union(&b).as_slice(), &[TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(a.intersection(&b).as_slice(), &[TaskId(1)]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut b: Bundle = (0..3u32).map(TaskId).collect();
        b.extend([TaskId(1), TaskId(7)]);
        assert_eq!(b.as_slice(), &[TaskId(0), TaskId(1), TaskId(2), TaskId(7)]);
    }

    #[test]
    fn display() {
        let b = Bundle::new(vec![TaskId(1), TaskId(0)]);
        assert_eq!(b.to_string(), "{t0, t1}");
    }

    proptest! {
        #[test]
        fn prop_membership_matches_slice(ids in proptest::collection::vec(0u32..64, 0..32)) {
            let b = Bundle::new(ids.iter().copied().map(TaskId).collect());
            for t in 0u32..64 {
                prop_assert_eq!(b.contains(TaskId(t)), ids.contains(&t));
            }
        }

        #[test]
        fn prop_intersection_subset_of_both(
            a in proptest::collection::vec(0u32..32, 0..16),
            b in proptest::collection::vec(0u32..32, 0..16),
        ) {
            let ba = Bundle::new(a.into_iter().map(TaskId).collect());
            let bb = Bundle::new(b.into_iter().map(TaskId).collect());
            let inter = ba.intersection(&bb);
            for t in inter.iter() {
                prop_assert!(ba.contains(t) && bb.contains(t));
            }
            let uni = ba.union(&bb);
            for t in ba.iter().chain(bb.iter()) {
                prop_assert!(uni.contains(t));
            }
        }
    }
}
