//! Per-price candidate indexing for the ascending price sweep.
//!
//! Algorithm 1 evaluates one winner set per bidding-price interval, and
//! the candidate pool at price `p` is exactly the workers bidding at most
//! `p`. The [`CandidateIndex`] materializes that structure once: workers
//! sorted by `(bid price, id)` — the canonical candidate order every
//! schedule engine uses — bucketed by distinct bid price, so the sweep at
//! a higher price only has to *introduce* the newly admitted bucket(s)
//! instead of re-deriving the pool from scratch. On million-worker
//! instances this turns the per-interval candidate bookkeeping into a
//! pair of slice lookups.

use crate::WorkerId;

/// Workers bucketed by ascending bid price.
///
/// The global [`order`](CandidateIndex::order) is sorted by
/// `(price, worker id)` ascending — identical to the candidate order of
/// the per-price greedy — and `bucket b` holds the contiguous run of
/// workers bidding exactly [`price_of_bucket(b)`]
/// (tenths). Every candidate prefix of the ascending sweep is therefore a
/// prefix of `order`, and the *newcomers* between two prices are the
/// concatenation of whole buckets.
///
/// [`price_of_bucket(b)`]: CandidateIndex::price_of_bucket
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateIndex {
    /// Worker ids sorted by `(bid price, id)`.
    order: Vec<WorkerId>,
    /// `bucket_offsets[b]..bucket_offsets[b + 1]` indexes `order` for
    /// bucket `b`; one trailing entry equal to `order.len()`.
    bucket_offsets: Vec<usize>,
    /// Distinct bid prices in tenths, ascending, one per bucket.
    bucket_prices: Vec<i64>,
}

impl CandidateIndex {
    /// Builds the index from per-worker bid prices in tenths
    /// (`prices_tenths[i]` belongs to worker `i`).
    pub fn from_tenths(prices_tenths: &[i64]) -> CandidateIndex {
        let mut order: Vec<WorkerId> = (0..prices_tenths.len())
            .map(|i| WorkerId(i as u32))
            .collect();
        order.sort_by_key(|&w| (prices_tenths[w.index()], w));

        let mut bucket_offsets = Vec::new();
        let mut bucket_prices = Vec::new();
        for (pos, &w) in order.iter().enumerate() {
            let p = prices_tenths[w.index()];
            if bucket_prices.last() != Some(&p) {
                bucket_prices.push(p);
                bucket_offsets.push(pos);
            }
        }
        bucket_offsets.push(order.len());
        CandidateIndex {
            order,
            bucket_offsets,
            bucket_prices,
        }
    }

    /// The canonical candidate order: ascending `(bid price, id)`.
    #[inline]
    pub fn order(&self) -> &[WorkerId] {
        &self.order
    }

    /// Number of indexed workers.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the index is empty (no workers).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of distinct bid prices.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.bucket_prices.len()
    }

    /// The workers bidding exactly the `b`-th distinct price.
    #[inline]
    pub fn bucket(&self, b: usize) -> &[WorkerId] {
        &self.order[self.bucket_offsets[b]..self.bucket_offsets[b + 1]]
    }

    /// The `b`-th distinct bid price, in tenths.
    #[inline]
    pub fn price_of_bucket(&self, b: usize) -> i64 {
        self.bucket_prices[b]
    }

    /// Length of the candidate prefix admitted at `price_tenths`: the
    /// number of workers bidding at most that price.
    pub fn prefix_len(&self, price_tenths: i64) -> usize {
        // First bucket strictly above the price bounds the prefix.
        let b = self.bucket_prices.partition_point(|&p| p <= price_tenths);
        self.bucket_offsets[b]
    }

    /// The candidate pool at `price_tenths`: every worker bidding at most
    /// that price, in canonical order.
    #[inline]
    pub fn admitted_at(&self, price_tenths: i64) -> &[WorkerId] {
        &self.order[..self.prefix_len(price_tenths)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_price_then_id() {
        let idx = CandidateIndex::from_tenths(&[150, 120, 150, 100]);
        assert_eq!(
            idx.order(),
            &[WorkerId(3), WorkerId(1), WorkerId(0), WorkerId(2)]
        );
        assert_eq!(idx.num_buckets(), 3);
        assert_eq!(idx.price_of_bucket(0), 100);
        assert_eq!(idx.bucket(2), &[WorkerId(0), WorkerId(2)]);
    }

    #[test]
    fn prefixes_cover_whole_buckets() {
        let idx = CandidateIndex::from_tenths(&[150, 120, 150, 100]);
        assert_eq!(idx.prefix_len(99), 0);
        assert_eq!(idx.prefix_len(100), 1);
        assert_eq!(idx.prefix_len(120), 2);
        assert_eq!(idx.prefix_len(149), 2);
        assert_eq!(idx.prefix_len(150), 4);
        assert_eq!(idx.prefix_len(1_000), 4);
        assert_eq!(idx.admitted_at(120), &[WorkerId(3), WorkerId(1)]);
    }

    #[test]
    fn empty_index_is_well_formed() {
        let idx = CandidateIndex::from_tenths(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.num_buckets(), 0);
        assert_eq!(idx.prefix_len(100), 0);
        assert!(idx.admitted_at(100).is_empty());
    }

    #[test]
    fn all_ties_form_one_bucket() {
        let idx = CandidateIndex::from_tenths(&[130, 130, 130]);
        assert_eq!(idx.num_buckets(), 1);
        assert_eq!(
            idx.bucket(0),
            &[WorkerId(0), WorkerId(1), WorkerId(2)],
            "ties fall back to ascending id"
        );
    }
}
