//! Bids, bid profiles, and workers' private true types.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Bundle, McsError, Price, WorkerId};

/// A worker's submitted bid `b_i = (Γ_i, ρ_i)`.
///
/// In the hSRC auction every worker submits exactly one bundle of tasks she
/// offers to execute and a price for executing all of them. A bid need not
/// match the worker's private [`TrueType`]; the mechanism's ε·Δc-truthfulness
/// guarantee is about how little a worker can gain from such a mismatch.
///
/// # Examples
///
/// ```
/// use mcs_types::{Bid, Bundle, Price, TaskId};
///
/// let bid = Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0));
/// assert_eq!(bid.price(), Price::from_f64(12.0));
/// assert!(bid.bundle().contains(TaskId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bid {
    bundle: Bundle,
    price: Price,
}

impl Bid {
    /// Creates a bid from a bundle and a bidding price.
    pub fn new(bundle: Bundle, price: Price) -> Self {
        Bid { bundle, price }
    }

    /// The bidding bundle `Γ_i`.
    #[inline]
    pub fn bundle(&self) -> &Bundle {
        &self.bundle
    }

    /// The bidding price `ρ_i`.
    #[inline]
    pub fn price(&self) -> Price {
        self.price
    }

    /// Returns a copy of this bid with a different price.
    pub fn with_price(&self, price: Price) -> Bid {
        Bid {
            bundle: self.bundle.clone(),
            price,
        }
    }

    /// Returns a copy of this bid with a different bundle.
    pub fn with_bundle(&self, bundle: Bundle) -> Bid {
        Bid {
            bundle,
            price: self.price,
        }
    }
}

impl fmt::Display for Bid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.bundle, self.price)
    }
}

/// A worker's private type: her true interested bundle `Γ*_i` and true cost
/// `c*_i`.
///
/// The truthful bid of Definition 2 is exactly `(Γ*_i, c*_i)`; see
/// [`TrueType::truthful_bid`]. Simulation code holds `TrueType`s for all
/// workers and derives bid profiles from them — truthfully, or with
/// strategic deviations when measuring the truthfulness gap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrueType {
    bundle: Bundle,
    cost: Price,
}

impl TrueType {
    /// Creates a private type from the true bundle and true cost.
    pub fn new(bundle: Bundle, cost: Price) -> Self {
        TrueType { bundle, cost }
    }

    /// The true interested bundle `Γ*_i`.
    #[inline]
    pub fn bundle(&self) -> &Bundle {
        &self.bundle
    }

    /// The true task-execution cost `c*_i`.
    #[inline]
    pub fn cost(&self) -> Price {
        self.cost
    }

    /// The truthful bid `b*_i = (Γ*_i, c*_i)` (Definition 2).
    pub fn truthful_bid(&self) -> Bid {
        Bid::new(self.bundle.clone(), self.cost)
    }
}

/// The full bid profile `b = (b_1, …, b_N)`, indexed by worker.
///
/// # Examples
///
/// ```
/// use mcs_types::{Bid, BidProfile, Bundle, Price, TaskId, WorkerId};
///
/// let profile = BidProfile::new(vec![
///     Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
///     Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(11.0)),
/// ]);
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile.bid(WorkerId(1)).price(), Price::from_f64(11.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BidProfile {
    bids: Vec<Bid>,
}

impl BidProfile {
    /// Creates a profile from per-worker bids (index = worker id).
    pub fn new(bids: Vec<Bid>) -> Self {
        BidProfile { bids }
    }

    /// Number of workers `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.bids.len()
    }

    /// Returns `true` if there are no workers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bids.is_empty()
    }

    /// The bid of a specific worker.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    #[inline]
    pub fn bid(&self, worker: WorkerId) -> &Bid {
        &self.bids[worker.index()]
    }

    /// The bid of a specific worker, if in range.
    pub fn get(&self, worker: WorkerId) -> Option<&Bid> {
        self.bids.get(worker.index())
    }

    /// Iterates over `(WorkerId, &Bid)` pairs in worker order.
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, &Bid)> + '_ {
        self.bids
            .iter()
            .enumerate()
            .map(|(i, b)| (WorkerId(i as u32), b))
    }

    /// The bids as a slice, indexed by worker.
    #[inline]
    pub fn as_slice(&self) -> &[Bid] {
        &self.bids
    }

    /// Returns a new profile identical except for one worker's bid.
    ///
    /// This is the *neighbouring profile* relation of Definition 7
    /// (differential privacy): two profiles are neighbours when they differ
    /// in only one bid.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::WorkerOutOfRange`] if `worker` is out of range.
    pub fn with_bid(&self, worker: WorkerId, bid: Bid) -> Result<BidProfile, McsError> {
        if worker.index() >= self.bids.len() {
            return Err(McsError::WorkerOutOfRange {
                worker,
                num_workers: self.bids.len(),
            });
        }
        let mut bids = self.bids.clone();
        bids[worker.index()] = bid;
        Ok(BidProfile { bids })
    }

    /// Number of bids differing between two profiles of equal length.
    ///
    /// Returns `None` when the profiles have different lengths (in which
    /// case the neighbour relation is undefined).
    pub fn hamming_distance(&self, other: &BidProfile) -> Option<usize> {
        if self.len() != other.len() {
            return None;
        }
        Some(
            self.bids
                .iter()
                .zip(&other.bids)
                .filter(|(a, b)| a != b)
                .count(),
        )
    }

    /// The largest bidding price in the profile, or `None` if empty.
    pub fn max_price(&self) -> Option<Price> {
        self.bids.iter().map(Bid::price).max()
    }

    /// The smallest bidding price in the profile, or `None` if empty.
    pub fn min_price(&self) -> Option<Price> {
        self.bids.iter().map(Bid::price).min()
    }
}

impl FromIterator<Bid> for BidProfile {
    fn from_iter<I: IntoIterator<Item = Bid>>(iter: I) -> Self {
        BidProfile {
            bids: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskId;

    fn bid(tasks: &[u32], price: f64) -> Bid {
        Bid::new(
            Bundle::new(tasks.iter().copied().map(TaskId).collect()),
            Price::from_f64(price),
        )
    }

    #[test]
    fn truthful_bid_matches_type() {
        let t = TrueType::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(15.0));
        let b = t.truthful_bid();
        assert_eq!(b.bundle(), t.bundle());
        assert_eq!(b.price(), t.cost());
    }

    #[test]
    fn with_price_and_bundle_produce_deviations() {
        let b = bid(&[0, 1], 10.0);
        let dev = b.with_price(Price::from_f64(12.0));
        assert_eq!(dev.bundle(), b.bundle());
        assert_eq!(dev.price(), Price::from_f64(12.0));
        let dev2 = b.with_bundle(Bundle::new(vec![TaskId(2)]));
        assert_eq!(dev2.price(), b.price());
        assert!(dev2.bundle().contains(TaskId(2)));
    }

    #[test]
    fn profile_indexing() {
        let p = BidProfile::new(vec![bid(&[0], 10.0), bid(&[1], 20.0)]);
        assert_eq!(p.bid(WorkerId(0)).price(), Price::from_f64(10.0));
        assert!(p.get(WorkerId(2)).is_none());
        assert_eq!(p.max_price(), Some(Price::from_f64(20.0)));
        assert_eq!(p.min_price(), Some(Price::from_f64(10.0)));
    }

    #[test]
    fn neighbour_profiles_differ_in_one_bid() {
        let p = BidProfile::new(vec![bid(&[0], 10.0), bid(&[1], 20.0)]);
        let q = p.with_bid(WorkerId(1), bid(&[1], 25.0)).unwrap();
        assert_eq!(p.hamming_distance(&q), Some(1));
        assert_eq!(p.hamming_distance(&p.clone()), Some(0));
        assert!(p.with_bid(WorkerId(5), bid(&[0], 1.0)).is_err());
    }

    #[test]
    fn hamming_undefined_for_mismatched_lengths() {
        let p = BidProfile::new(vec![bid(&[0], 10.0)]);
        let q = BidProfile::new(vec![bid(&[0], 10.0), bid(&[1], 20.0)]);
        assert_eq!(p.hamming_distance(&q), None);
    }

    #[test]
    fn from_iterator_collects_in_order() {
        let p: BidProfile = (0..3).map(|i| bid(&[i], 10.0 + i as f64)).collect();
        assert_eq!(p.len(), 3);
        assert_eq!(p.bid(WorkerId(2)).price(), Price::from_f64(12.0));
    }

    #[test]
    fn display_bid() {
        assert_eq!(bid(&[0], 10.5).to_string(), "({t0}, 10.5)");
    }
}
