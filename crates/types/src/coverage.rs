//! Layout-independent views of the covering problem, and the CSR core.
//!
//! The paper's workers are single-minded: each bids one bundle
//! `Γ_i ⊆ T`, and `q_ij = (2θ_ij − 1)²` is zero outside it. A dense
//! `N×K` matrix therefore wastes `O(N·K)` space and — worse — `O(N·K)`
//! time in every greedy pass, restriction, and feasibility check. This
//! module provides
//!
//! * [`CoverageView`] — the read interface both layouts share, so
//!   mechanisms, solvers, and verifiers are layout-agnostic; and
//! * [`SparseCoverage`] — compressed sparse rows with per-worker prefix
//!   offsets, `(task, q)` entry arrays, and *cached* per-worker static
//!   totals, making all core operations `O(nnz)` instead of `O(N·K)`.
//!
//! # Exact-equivalence contract
//!
//! [`SparseCoverage`] stores exactly the entries a dense
//! [`CoverageProblem`](crate::CoverageProblem) row holds with `q > 0.0`,
//! in the same ascending task order. Every accumulation the engines
//! perform over these rows (gains, totals, residual subtraction,
//! feasibility sums) starts from `+0.0` and only ever adds non-negative
//! terms, and IEEE-754 addition of `+0.0` to a non-negative value is the
//! identity — so skipping the zero entries yields *bit-identical* floats,
//! not merely approximately equal ones. The differential harness in
//! `mcs-verify` asserts this observational equivalence continuously.

use serde::{Deserialize, Serialize};

use crate::{CoverageProblem, McsError, TaskId, UncertainCoverage, WorkerId};

/// Tolerance below which residual coverage counts as satisfied — the same
/// constant the schedule engines use.
const COVER_EPS: f64 = 1e-9;

/// A read-only, layout-independent view of a covering problem `(q, Q)`.
///
/// Implemented by the dense [`CoverageProblem`] and the CSR
/// [`SparseCoverage`]; consumers written against this trait work with
/// either layout. Provided methods define the *semantics* once; layouts
/// override them only with bit-identical faster paths.
pub trait CoverageView {
    /// Number of workers (rows).
    fn num_workers(&self) -> usize;

    /// Number of tasks (covering constraints).
    fn num_tasks(&self) -> usize;

    /// Worker `i`'s contribution to task `j` (zero outside her bundle).
    fn q(&self, worker: WorkerId, task: TaskId) -> f64;

    /// Required coverage `Q_j` for a task.
    fn requirement(&self, task: TaskId) -> f64;

    /// All requirements `Q`.
    fn requirements(&self) -> &[f64];

    /// Total contribution `Σ_j q_ij` of a worker across all tasks — the
    /// static score used by the Baseline auction and the `β` of Lemma 2.
    fn worker_total(&self, worker: WorkerId) -> f64;

    /// Worker `i`'s non-zero `(task index, q_ij)` entries, ascending by
    /// task — materialized; [`SparseCoverage::row`] iterates without
    /// allocating.
    fn sparse_row(&self, worker: WorkerId) -> Vec<(usize, f64)>;

    /// The constant `β = max_i Σ_j q_ij` of Lemma 2.
    fn beta(&self) -> f64 {
        (0..self.num_workers())
            .map(|i| self.worker_total(WorkerId(i as u32)))
            .fold(0.0, f64::max)
    }

    /// Checks whether a subset of workers satisfies every covering
    /// constraint, with a small tolerance for float accumulation.
    fn is_satisfied_by<I>(&self, workers: I) -> bool
    where
        I: IntoIterator<Item = WorkerId>,
        Self: Sized,
    {
        let mut coverage = vec![0.0f64; self.num_tasks()];
        for w in workers {
            for (j, q) in self.sparse_row(w) {
                coverage[j] += q;
            }
        }
        coverage
            .iter()
            .zip(self.requirements())
            .all(|(c, r)| *c >= *r - COVER_EPS)
    }

    /// Maximum attainable coverage of task `j` using every worker.
    fn max_attainable(&self, task: TaskId) -> f64 {
        (0..self.num_workers())
            .map(|i| self.q(WorkerId(i as u32), task))
            .sum()
    }

    /// Verifies the full pool can satisfy every constraint.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::Infeasible`] naming the first uncoverable task.
    fn check_feasible(&self) -> Result<(), McsError> {
        for j in 0..self.num_tasks() {
            let t = TaskId(j as u32);
            let attainable = self.max_attainable(t);
            if attainable < self.requirement(t) - COVER_EPS {
                return Err(McsError::Infeasible {
                    task: t,
                    required: self.requirement(t),
                    attainable,
                });
            }
        }
        Ok(())
    }

    /// Whether this problem was derived under an uncertain completion
    /// model — i.e. stored weights are effective `p_ij · q_ij` and
    /// requirements are chance-constrained quotas `R_j`.
    fn is_uncertain(&self) -> bool {
        false
    }

    /// Completion probability `p_ij` of the entry behind `q(worker, task)`
    /// (`1.0` for certain problems and for entries without an override).
    fn completion_prob(&self, worker: WorkerId, task: TaskId) -> f64 {
        let _ = (worker, task);
        1.0
    }

    /// The original deterministic requirement `Q_j = 2 ln(1/δ_j)`.
    ///
    /// Equals [`CoverageView::requirement`] for certain problems; under
    /// an uncertain model `requirement` returns the inflated quota `R_j`
    /// and this returns the `Q_j` the Monte Carlo verifier checks realized
    /// coverage against.
    fn base_requirement(&self, task: TaskId) -> f64 {
        self.requirement(task)
    }

    /// The chance-constraint shortfall bound `γ_j`, when one exists.
    fn shortfall_bound(&self, task: TaskId) -> Option<f64> {
        let _ = task;
        None
    }
}

impl CoverageView for CoverageProblem {
    #[inline]
    fn num_workers(&self) -> usize {
        CoverageProblem::num_workers(self)
    }

    #[inline]
    fn num_tasks(&self) -> usize {
        CoverageProblem::num_tasks(self)
    }

    #[inline]
    fn q(&self, worker: WorkerId, task: TaskId) -> f64 {
        CoverageProblem::q(self, worker, task)
    }

    #[inline]
    fn requirement(&self, task: TaskId) -> f64 {
        CoverageProblem::requirement(self, task)
    }

    #[inline]
    fn requirements(&self) -> &[f64] {
        CoverageProblem::requirements(self)
    }

    #[inline]
    fn worker_total(&self, worker: WorkerId) -> f64 {
        CoverageProblem::worker_total(self, worker)
    }

    fn sparse_row(&self, worker: WorkerId) -> Vec<(usize, f64)> {
        self.worker_row(worker)
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q > 0.0)
            .map(|(j, &q)| (j, q))
            .collect()
    }
}

/// The covering problem in compressed-sparse-row form.
///
/// Row `i`'s non-zero entries live at `tasks[offsets[i]..offsets[i+1]]`
/// (ascending task indices) with weights in the parallel `weights` range;
/// `totals[i]` caches `Σ_j q_ij` so static-score ordering and `β` never
/// re-sum rows, and `requirements[j]` holds `Q_j`.
///
/// Build one with [`Instance::sparse_coverage`](crate::Instance::sparse_coverage)
/// (directly from bundles, `O(nnz + K)`), [`SparseCoverage::from_dense`],
/// or [`SparseCoverage::from_rows`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseCoverage {
    num_workers: usize,
    num_tasks: usize,
    offsets: Vec<usize>,
    tasks: Vec<u32>,
    weights: Vec<f64>,
    totals: Vec<f64>,
    requirements: Vec<f64>,
    /// Present only when the owning instance's completion model is
    /// effectively uncertain (some stored `p < 1`); `weights` are then
    /// `p_ij · q_ij` and `requirements` the chance quotas `R_j`. Kept
    /// `None` in the degenerate all-`p = 1` case so the problem — and its
    /// `PartialEq`/serde forms — stay identical to the deterministic one.
    #[serde(default)]
    uncertainty: Option<UncertainCoverage>,
}

impl SparseCoverage {
    /// Assembles a CSR problem from already-validated parts. Internal:
    /// public construction goes through the checked constructors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        num_workers: usize,
        num_tasks: usize,
        offsets: Vec<usize>,
        tasks: Vec<u32>,
        weights: Vec<f64>,
        totals: Vec<f64>,
        requirements: Vec<f64>,
        uncertainty: Option<UncertainCoverage>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), num_workers + 1);
        debug_assert_eq!(tasks.len(), weights.len());
        debug_assert_eq!(totals.len(), num_workers);
        debug_assert_eq!(requirements.len(), num_tasks);
        if let Some(u) = &uncertainty {
            debug_assert_eq!(u.probs().len(), weights.len());
        }
        SparseCoverage {
            num_workers,
            num_tasks,
            offsets,
            tasks,
            weights,
            totals,
            requirements,
            uncertainty,
        }
    }

    /// Builds a CSR problem from per-worker `(task, q)` rows.
    ///
    /// Entries within each row may arrive unordered; zero-weight entries
    /// are dropped (canonical form, see the module docs).
    ///
    /// # Errors
    ///
    /// * [`McsError::DimensionMismatch`] — `requirements.len()` is not
    ///   `num_tasks`.
    /// * [`McsError::BundleOutOfRange`] — a row references a task index
    ///   `≥ num_tasks`.
    /// * [`McsError::InvalidSkill`] — a weight is negative or not finite.
    pub fn from_rows(
        num_tasks: usize,
        rows: Vec<Vec<(usize, f64)>>,
        requirements: Vec<f64>,
    ) -> Result<Self, McsError> {
        if requirements.len() != num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "requirement vector",
                expected: num_tasks,
                actual: requirements.len(),
            });
        }
        let num_workers = rows.len();
        let mut offsets = Vec::with_capacity(num_workers + 1);
        let mut tasks: Vec<u32> = Vec::new();
        let mut weights = Vec::new();
        let mut totals = Vec::with_capacity(num_workers);
        offsets.push(0);
        for (i, mut row) in rows.into_iter().enumerate() {
            row.sort_unstable_by_key(|&(j, _)| j);
            let mut total = 0.0;
            for (j, q) in row {
                if j >= num_tasks {
                    return Err(McsError::BundleOutOfRange {
                        worker: WorkerId(i as u32),
                        num_tasks,
                    });
                }
                if !q.is_finite() || q < 0.0 {
                    return Err(McsError::InvalidSkill {
                        worker: WorkerId(i as u32),
                        task: TaskId(j as u32),
                        value: q,
                    });
                }
                if q > 0.0 {
                    tasks.push(j as u32);
                    weights.push(q);
                    total += q;
                }
            }
            totals.push(total);
            offsets.push(tasks.len());
        }
        Ok(SparseCoverage {
            num_workers,
            num_tasks,
            offsets,
            tasks,
            weights,
            totals,
            requirements,
            uncertainty: None,
        })
    }

    /// Converts a dense problem, keeping exactly the `q > 0.0` cells.
    pub fn from_dense(cover: &CoverageProblem) -> Self {
        let n = CoverageProblem::num_workers(cover);
        let k = CoverageProblem::num_tasks(cover);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut tasks = Vec::new();
        let mut weights = Vec::new();
        let mut totals = Vec::with_capacity(n);
        offsets.push(0);
        for i in 0..n {
            let mut total = 0.0;
            for (j, &q) in cover.worker_row(WorkerId(i as u32)).iter().enumerate() {
                if q > 0.0 {
                    tasks.push(j as u32);
                    weights.push(q);
                    total += q;
                }
            }
            totals.push(total);
            offsets.push(tasks.len());
        }
        SparseCoverage {
            num_workers: n,
            num_tasks: k,
            offsets,
            tasks,
            weights,
            totals,
            requirements: cover.requirements().to_vec(),
            uncertainty: None,
        }
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.tasks.len()
    }

    /// Iterates worker `i`'s `(task index, q_ij)` entries, ascending by
    /// task, without allocating. Indexing is by raw row index to match the
    /// engines' candidate bookkeeping.
    #[inline]
    pub fn row(&self, worker: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.offsets[worker];
        let hi = self.offsets[worker + 1];
        self.tasks[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&j, &q)| (j as usize, q))
    }

    /// Number of non-zero entries in worker `i`'s row.
    #[inline]
    pub fn row_len(&self, worker: usize) -> usize {
        self.offsets[worker + 1] - self.offsets[worker]
    }

    /// The cached static total `Σ_j q_ij` by raw row index.
    #[inline]
    pub fn total(&self, worker: usize) -> f64 {
        self.totals[worker]
    }

    /// Restricts the problem to a subset of workers (e.g. those with
    /// `ρ_i ≤ p`), preserving original worker ids via the returned mapping.
    ///
    /// Copies only the subset's non-zero entries — `O(Σ row_len)` rather
    /// than the dense path's `O(|workers| · K)` row deep-copies.
    pub fn restrict_to(&self, workers: &[WorkerId]) -> (SparseCoverage, Vec<WorkerId>) {
        let mut offsets = Vec::with_capacity(workers.len() + 1);
        let mut tasks = Vec::new();
        let mut weights = Vec::new();
        let mut totals = Vec::with_capacity(workers.len());
        let mut ranges = Vec::with_capacity(workers.len());
        offsets.push(0);
        for &w in workers {
            let lo = self.offsets[w.index()];
            let hi = self.offsets[w.index() + 1];
            tasks.extend_from_slice(&self.tasks[lo..hi]);
            weights.extend_from_slice(&self.weights[lo..hi]);
            totals.push(self.totals[w.index()]);
            ranges.push((lo, hi));
            offsets.push(tasks.len());
        }
        (
            SparseCoverage {
                num_workers: workers.len(),
                num_tasks: self.num_tasks,
                offsets,
                tasks,
                weights,
                totals,
                requirements: self.requirements.clone(),
                uncertainty: self
                    .uncertainty
                    .as_ref()
                    .map(|u| u.restrict_entries(&ranges)),
            },
            workers.to_vec(),
        )
    }

    /// Materializes the equivalent dense problem (tests and the dense
    /// baseline bench; never on hot paths). Effective weights and quotas
    /// are already baked into the numbers; the uncertainty *metadata* is
    /// not carried — the dense layout stays the plain engine reference.
    pub fn to_dense(&self) -> CoverageProblem {
        let mut q = vec![0.0; self.num_workers * self.num_tasks];
        for i in 0..self.num_workers {
            for (j, w) in self.row(i) {
                q[i * self.num_tasks + j] = w;
            }
        }
        CoverageProblem::from_raw(
            self.num_workers,
            self.num_tasks,
            q,
            self.requirements.clone(),
        )
        .expect("CSR invariants imply valid dense dimensions")
    }
}

impl CoverageView for SparseCoverage {
    #[inline]
    fn num_workers(&self) -> usize {
        self.num_workers
    }

    #[inline]
    fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    fn q(&self, worker: WorkerId, task: TaskId) -> f64 {
        let lo = self.offsets[worker.index()];
        let hi = self.offsets[worker.index() + 1];
        match self.tasks[lo..hi].binary_search(&task.0) {
            Ok(pos) => self.weights[lo + pos],
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn requirement(&self, task: TaskId) -> f64 {
        self.requirements[task.index()]
    }

    #[inline]
    fn requirements(&self) -> &[f64] {
        &self.requirements
    }

    #[inline]
    fn worker_total(&self, worker: WorkerId) -> f64 {
        self.totals[worker.index()]
    }

    fn sparse_row(&self, worker: WorkerId) -> Vec<(usize, f64)> {
        self.row(worker.index()).collect()
    }

    #[inline]
    fn beta(&self) -> f64 {
        self.totals.iter().copied().fold(0.0, f64::max)
    }

    #[inline]
    fn is_uncertain(&self) -> bool {
        self.uncertainty.is_some()
    }

    fn completion_prob(&self, worker: WorkerId, task: TaskId) -> f64 {
        let Some(u) = &self.uncertainty else {
            return 1.0;
        };
        let lo = self.offsets[worker.index()];
        let hi = self.offsets[worker.index() + 1];
        match self.tasks[lo..hi].binary_search(&task.0) {
            Ok(pos) => u.probs()[lo + pos],
            Err(_) => 1.0,
        }
    }

    fn base_requirement(&self, task: TaskId) -> f64 {
        match &self.uncertainty {
            Some(u) => u.base_requirements()[task.index()],
            None => self.requirements[task.index()],
        }
    }

    fn shortfall_bound(&self, task: TaskId) -> Option<f64> {
        self.uncertainty.as_ref().map(|u| u.gammas()[task.index()])
    }

    /// One pass over all entries instead of `K` column scans. Per-column
    /// addition order equals the dense column scan's worker order, so the
    /// sums — and any [`McsError::Infeasible`] payload — are bit-identical.
    fn check_feasible(&self) -> Result<(), McsError> {
        let mut attainable = vec![0.0f64; self.num_tasks];
        for i in 0..self.num_workers {
            for (j, q) in self.row(i) {
                attainable[j] += q;
            }
        }
        for (j, (&got, &need)) in attainable.iter().zip(&self.requirements).enumerate() {
            if got < need - COVER_EPS {
                return Err(McsError::Infeasible {
                    task: TaskId(j as u32),
                    required: need,
                    attainable: got,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dense_fixture() -> CoverageProblem {
        CoverageProblem::from_raw(3, 2, vec![0.64, 0.0, 0.0, 0.81, 0.36, 0.25], vec![0.9, 0.8])
            .unwrap()
    }

    #[test]
    fn from_dense_keeps_structure_and_totals() {
        let dense = dense_fixture();
        let sparse = SparseCoverage::from_dense(&dense);
        assert_eq!(sparse.nnz(), 4);
        assert_eq!(sparse.row(0).collect::<Vec<_>>(), vec![(0, 0.64)]);
        assert_eq!(sparse.row(1).collect::<Vec<_>>(), vec![(1, 0.81)]);
        assert_eq!(
            sparse.row(2).collect::<Vec<_>>(),
            vec![(0, 0.36), (1, 0.25)]
        );
        for w in 0..3u32 {
            let w = WorkerId(w);
            assert_eq!(
                CoverageView::worker_total(&sparse, w),
                dense.worker_total(w)
            );
            for t in 0..2u32 {
                let t = TaskId(t);
                assert_eq!(CoverageView::q(&sparse, w, t), dense.q(w, t));
            }
        }
        assert_eq!(CoverageView::beta(&sparse), CoverageView::beta(&dense));
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn view_semantics_match_across_layouts() {
        let dense = dense_fixture();
        let sparse = SparseCoverage::from_dense(&dense);
        let all = [WorkerId(0), WorkerId(1), WorkerId(2)];
        assert_eq!(
            CoverageView::is_satisfied_by(&sparse, all),
            dense.is_satisfied_by(all)
        );
        assert_eq!(
            CoverageView::check_feasible(&sparse),
            dense.check_feasible()
        );
        for t in 0..2u32 {
            assert_eq!(
                CoverageView::max_attainable(&sparse, TaskId(t)),
                dense.max_attainable(TaskId(t))
            );
        }
    }

    #[test]
    fn from_rows_validates_and_canonicalizes() {
        // Unordered entries get sorted; zero weights dropped.
        let s = SparseCoverage::from_rows(
            3,
            vec![vec![(2, 0.5), (0, 0.25), (1, 0.0)]],
            vec![0.1, 0.1, 0.1],
        )
        .unwrap();
        assert_eq!(s.row(0).collect::<Vec<_>>(), vec![(0, 0.25), (2, 0.5)]);
        assert_eq!(s.nnz(), 2);
        assert!(matches!(
            SparseCoverage::from_rows(1, vec![vec![(3, 0.5)]], vec![0.1]),
            Err(McsError::BundleOutOfRange { .. })
        ));
        assert!(matches!(
            SparseCoverage::from_rows(1, vec![vec![(0, -0.5)]], vec![0.1]),
            Err(McsError::InvalidSkill { .. })
        ));
        assert!(matches!(
            SparseCoverage::from_rows(1, vec![], vec![0.1, 0.2]),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn restrict_to_copies_only_selected_rows() {
        let sparse = SparseCoverage::from_dense(&dense_fixture());
        let (sub, map) = sparse.restrict_to(&[WorkerId(2), WorkerId(0)]);
        assert_eq!(map, vec![WorkerId(2), WorkerId(0)]);
        assert_eq!(CoverageView::num_workers(&sub), 2);
        assert_eq!(sub.row(0).collect::<Vec<_>>(), vec![(0, 0.36), (1, 0.25)]);
        assert_eq!(sub.row(1).collect::<Vec<_>>(), vec![(0, 0.64)]);
        assert_eq!(sub.total(0), sparse.total(2));
        assert_eq!(sub.requirements(), sparse.requirements());
    }

    #[test]
    fn infeasible_error_matches_dense() {
        let dense =
            CoverageProblem::from_raw(2, 2, vec![0.5, 0.0, 0.25, 0.0], vec![0.5, 1.0]).unwrap();
        let sparse = SparseCoverage::from_dense(&dense);
        assert_eq!(
            dense.check_feasible(),
            CoverageView::check_feasible(&sparse)
        );
    }

    proptest! {
        #[test]
        fn prop_dense_and_sparse_views_agree(
            q in proptest::collection::vec(0.0f64..1.0, 12..13),
            mask in proptest::collection::vec(0usize..2, 12..13),
            req in proptest::collection::vec(0.0f64..2.0, 4..5),
        ) {
            // Mask roughly half the cells to exactly 0.0 so the sparse
            // layout actually skips entries.
            let q: Vec<f64> = q.iter().zip(&mask).map(|(&v, &m)| if m == 0 { 0.0 } else { v }).collect();
            let dense = CoverageProblem::from_raw(3, 4, q, req).unwrap();
            let sparse = SparseCoverage::from_dense(&dense);
            for w in 0..3u32 {
                let w = WorkerId(w);
                // Bit-identical, not approximately equal.
                prop_assert_eq!(
                    CoverageView::worker_total(&sparse, w).to_bits(),
                    dense.worker_total(w).to_bits()
                );
                prop_assert_eq!(CoverageView::sparse_row(&dense, w), sparse.sparse_row(w));
            }
            prop_assert_eq!(CoverageView::beta(&sparse).to_bits(), dense.beta().to_bits());
            prop_assert_eq!(CoverageView::check_feasible(&sparse), dense.check_feasible());
            prop_assert_eq!(sparse.to_dense(), dense);
        }
    }
}
