//! Exact fixed-point money amounts and candidate price grids.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::McsError;

/// Number of fixed-point units per whole currency unit.
///
/// The paper's simulations space all costs and candidate prices at intervals
/// of 0.1, so one tenth is the natural atom. All arithmetic on [`Price`] is
/// exact integer arithmetic in these units.
pub const UNITS_PER_WHOLE: i64 = 10;

/// An exact money amount in tenths of a currency unit.
///
/// `Price` is used for bidding prices `ρ_i`, true costs `c_i`, candidate
/// single prices `p ∈ P`, payments, and total payments. Keeping prices in
/// integer tenths makes the 0.1-spaced grids of the paper's Table I exact,
/// gives prices a total order (needed to sort workers in Algorithm 1 and to
/// key the exponential-mechanism PMF), and avoids float round-off in payment
/// comparisons.
///
/// # Examples
///
/// ```
/// use mcs_types::Price;
///
/// let p = Price::from_f64(35.5);
/// assert_eq!(p.tenths(), 355);
/// assert_eq!(p.as_f64(), 35.5);
/// assert_eq!((p + Price::from_f64(0.1)).to_string(), "35.6");
/// assert_eq!(p * 3, Price::from_f64(106.5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Price(i64);

impl Price {
    /// The zero amount.
    pub const ZERO: Price = Price(0);

    /// Constructs a price from an integer number of tenths.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcs_types::Price;
    /// assert_eq!(Price::from_tenths(123).as_f64(), 12.3);
    /// ```
    #[inline]
    pub const fn from_tenths(tenths: i64) -> Self {
        Price(tenths)
    }

    /// Constructs a price from a float, rounding to the nearest tenth.
    ///
    /// This is intended for literals and configuration values that are
    /// already on (or near) the 0.1 grid; values are rounded half away from
    /// zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcs_types::Price;
    /// assert_eq!(Price::from_f64(10.0), Price::from_tenths(100));
    /// assert_eq!(Price::from_f64(0.25), Price::from_tenths(3));
    /// ```
    #[inline]
    pub fn from_f64(value: f64) -> Self {
        Price((value * UNITS_PER_WHOLE as f64).round() as i64)
    }

    /// Returns the amount as an integer number of tenths.
    #[inline]
    pub const fn tenths(self) -> i64 {
        self.0
    }

    /// Returns the amount as a float number of whole currency units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / UNITS_PER_WHOLE as f64
    }

    /// Returns `true` if the amount is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Returns `true` if the amount is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction clamped at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcs_types::Price;
    /// let a = Price::from_f64(1.0);
    /// let b = Price::from_f64(2.5);
    /// assert_eq!(a.saturating_sub_at_zero(b), Price::ZERO);
    /// ```
    #[inline]
    pub fn saturating_sub_at_zero(self, other: Price) -> Price {
        Price((self.0 - other.0).max(0))
    }

    /// Returns the smaller of two prices.
    #[inline]
    pub fn min(self, other: Price) -> Price {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two prices.
    #[inline]
    pub fn max(self, other: Price) -> Price {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Price {
    type Output = Price;
    #[inline]
    fn add(self, rhs: Price) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl AddAssign for Price {
    #[inline]
    fn add_assign(&mut self, rhs: Price) {
        self.0 += rhs.0;
    }
}

impl Sub for Price {
    type Output = Price;
    #[inline]
    fn sub(self, rhs: Price) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl SubAssign for Price {
    #[inline]
    fn sub_assign(&mut self, rhs: Price) {
        self.0 -= rhs.0;
    }
}

impl Neg for Price {
    type Output = Price;
    #[inline]
    fn neg(self) -> Price {
        Price(-self.0)
    }
}

/// Scales a price by an integer count, e.g. `p · |S(p)|` for a single-price
/// total payment.
impl Mul<usize> for Price {
    type Output = Price;
    #[inline]
    fn mul(self, rhs: usize) -> Price {
        Price(self.0 * rhs as i64)
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        iter.fold(Price::ZERO, |acc, p| acc + p)
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / UNITS_PER_WHOLE;
        let frac = (self.0 % UNITS_PER_WHOLE).abs();
        if frac == 0 {
            write!(f, "{whole}")
        } else if self.0 < 0 && whole == 0 {
            write!(f, "-0.{frac}")
        } else {
            write!(f, "{whole}.{frac}")
        }
    }
}

/// An inclusive, evenly spaced grid of candidate prices — the paper's price
/// set `P`.
///
/// The paper draws the single clearing price from
/// `P = {p_min, p_min + step, …, p_max}`; in the simulations
/// `P = [35, 60]` at step 0.1. The grid stores its endpoints and step in
/// exact tenths and yields each member without accumulation error.
///
/// # Examples
///
/// ```
/// use mcs_types::{Price, PriceGrid};
///
/// let grid = PriceGrid::from_f64(35.0, 60.0, 0.1).unwrap();
/// assert_eq!(grid.len(), 251);
/// assert_eq!(grid.get(0), Some(Price::from_f64(35.0)));
/// assert_eq!(grid.get(250), Some(Price::from_f64(60.0)));
/// assert!(grid.contains(Price::from_f64(42.7)));
/// assert!(!grid.contains(Price::from_f64(61.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PriceGrid {
    min: Price,
    max: Price,
    step: Price,
}

impl PriceGrid {
    /// Creates a grid spanning `[min, max]` with the given step.
    ///
    /// The maximum is included only when `max − min` is an exact multiple of
    /// `step`; otherwise the last member is the largest grid point below
    /// `max` (matching how one would enumerate `{min, min+step, …} ∩ [min, max]`).
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidPriceGrid`] if `step` is not positive or
    /// `max < min`.
    pub fn new(min: Price, max: Price, step: Price) -> Result<Self, McsError> {
        if !step.is_positive() || max < min {
            return Err(McsError::InvalidPriceGrid { min, max, step });
        }
        Ok(PriceGrid { min, max, step })
    }

    /// Creates a grid from float endpoints and step (rounded to tenths).
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidPriceGrid`] under the same conditions as
    /// [`PriceGrid::new`].
    pub fn from_f64(min: f64, max: f64, step: f64) -> Result<Self, McsError> {
        Self::new(
            Price::from_f64(min),
            Price::from_f64(max),
            Price::from_f64(step),
        )
    }

    /// Lowest grid member.
    #[inline]
    pub fn min(&self) -> Price {
        self.min
    }

    /// Upper bound of the grid (the highest member when aligned).
    #[inline]
    pub fn max(&self) -> Price {
        self.max
    }

    /// Grid spacing.
    #[inline]
    pub fn step(&self) -> Price {
        self.step
    }

    /// Number of grid members, i.e. `|P|`.
    #[inline]
    pub fn len(&self) -> usize {
        ((self.max.tenths() - self.min.tenths()) / self.step.tenths()) as usize + 1
    }

    /// Returns `true` if the grid has no members (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the `idx`-th member, if in range.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<Price> {
        if idx < self.len() {
            Some(Price::from_tenths(
                self.min.tenths() + idx as i64 * self.step.tenths(),
            ))
        } else {
            None
        }
    }

    /// Returns `true` if `p` is exactly a member of the grid.
    pub fn contains(&self, p: Price) -> bool {
        p >= self.min && p <= self.max && (p.tenths() - self.min.tenths()) % self.step.tenths() == 0
    }

    /// Iterates over all members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Price> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }

    /// Collects the members into a vector.
    pub fn to_vec(&self) -> Vec<Price> {
        self.iter().collect()
    }

    /// Returns the sub-grid of members `≥ p`, or `None` if empty.
    ///
    /// Used when restricting `P` to feasible prices: infeasibility is
    /// monotone (if no worker set at price `p` covers the tasks, neither
    /// does any at a lower price), so the feasible subset is a suffix.
    pub fn suffix_from(&self, p: Price) -> Option<PriceGrid> {
        if p <= self.min {
            return Some(self.clone());
        }
        if p > self.max {
            return None;
        }
        // Round p up to the next grid point.
        let offset = p.tenths() - self.min.tenths();
        let steps = (offset + self.step.tenths() - 1) / self.step.tenths();
        let new_min = Price::from_tenths(self.min.tenths() + steps * self.step.tenths());
        if new_min > self.max {
            None
        } else {
            Some(PriceGrid {
                min: new_min,
                max: self.max,
                step: self.step,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn price_from_f64_rounds_to_tenths() {
        assert_eq!(Price::from_f64(10.04), Price::from_tenths(100));
        assert_eq!(Price::from_f64(10.05), Price::from_tenths(101));
        assert_eq!(Price::from_f64(-1.25), Price::from_tenths(-13));
    }

    #[test]
    fn price_arithmetic_is_exact() {
        let mut acc = Price::ZERO;
        for _ in 0..1000 {
            acc += Price::from_f64(0.1);
        }
        assert_eq!(acc, Price::from_f64(100.0));
    }

    #[test]
    #[allow(clippy::erasing_op)] // p * 0 is exactly the case under test
    fn price_scaling_by_cardinality() {
        let p = Price::from_f64(35.5);
        assert_eq!(p * 10, Price::from_f64(355.0));
        assert_eq!(p * 0, Price::ZERO);
    }

    #[test]
    fn price_display() {
        assert_eq!(Price::from_f64(35.0).to_string(), "35");
        assert_eq!(Price::from_f64(35.5).to_string(), "35.5");
        assert_eq!(Price::from_f64(-0.5).to_string(), "-0.5");
        assert_eq!(Price::from_f64(-1.5).to_string(), "-1.5");
        assert_eq!(Price::ZERO.to_string(), "0");
    }

    #[test]
    fn price_sum() {
        let total: Price = [1.0, 2.0, 3.5].iter().map(|&v| Price::from_f64(v)).sum();
        assert_eq!(total, Price::from_f64(6.5));
    }

    #[test]
    fn saturating_sub() {
        let a = Price::from_f64(3.0);
        let b = Price::from_f64(5.0);
        assert_eq!(a.saturating_sub_at_zero(b), Price::ZERO);
        assert_eq!(b.saturating_sub_at_zero(a), Price::from_f64(2.0));
    }

    #[test]
    fn grid_matches_paper_setting() {
        // Paper setting I: P = [35, 60] spaced at 0.1 → 251 prices.
        let grid = PriceGrid::from_f64(35.0, 60.0, 0.1).unwrap();
        assert_eq!(grid.len(), 251);
        let v = grid.to_vec();
        assert_eq!(v.first().copied(), Some(Price::from_f64(35.0)));
        assert_eq!(v.last().copied(), Some(Price::from_f64(60.0)));
        assert_eq!(v[1] - v[0], Price::from_f64(0.1));
    }

    #[test]
    fn grid_rejects_bad_parameters() {
        assert!(PriceGrid::from_f64(35.0, 30.0, 0.1).is_err());
        assert!(PriceGrid::from_f64(35.0, 60.0, 0.0).is_err());
        assert!(PriceGrid::from_f64(35.0, 60.0, -0.1).is_err());
    }

    #[test]
    fn grid_unaligned_max_truncates() {
        let grid = PriceGrid::from_f64(1.0, 1.95, 0.2).unwrap();
        // Members: 1.0, 1.2, 1.4, 1.6, 1.8 (1.95 unaligned, rounded to 2.0
        // max bound keeps 1.95 → tenths 19 vs min 10, step 2 → floor(9/2)=4 → 5 members).
        // from_f64(1.95) rounds to 2.0, so members go to 2.0 exactly.
        assert_eq!(grid.get(grid.len() - 1), Some(Price::from_f64(2.0)));
    }

    #[test]
    fn grid_suffix() {
        let grid = PriceGrid::from_f64(35.0, 60.0, 0.1).unwrap();
        let suffix = grid.suffix_from(Price::from_f64(50.05)).unwrap();
        assert_eq!(suffix.min(), Price::from_f64(50.1));
        assert_eq!(suffix.max(), Price::from_f64(60.0));
        assert!(grid.suffix_from(Price::from_f64(60.1)).is_none());
        assert_eq!(grid.suffix_from(Price::from_f64(10.0)), Some(grid.clone()));
    }

    #[test]
    fn grid_contains() {
        let grid = PriceGrid::from_f64(10.0, 20.0, 0.5).unwrap();
        assert!(grid.contains(Price::from_f64(10.5)));
        assert!(!grid.contains(Price::from_f64(10.4)));
        assert!(!grid.contains(Price::from_f64(9.5)));
        assert!(!grid.contains(Price::from_f64(20.5)));
    }

    proptest! {
        #[test]
        fn prop_grid_iter_members_all_contained(
            min in 0i64..500, extra in 1i64..500, step in 1i64..13
        ) {
            let grid = PriceGrid::new(
                Price::from_tenths(min),
                Price::from_tenths(min + extra),
                Price::from_tenths(step),
            ).unwrap();
            let v = grid.to_vec();
            prop_assert_eq!(v.len(), grid.len());
            for p in &v {
                prop_assert!(grid.contains(*p));
            }
            // Ascending and evenly spaced.
            for w in v.windows(2) {
                prop_assert_eq!(w[1] - w[0], Price::from_tenths(step));
            }
        }

        #[test]
        fn prop_price_roundtrip(t in -100_000i64..100_000) {
            let p = Price::from_tenths(t);
            prop_assert_eq!(Price::from_f64(p.as_f64()), p);
        }

        #[test]
        fn prop_suffix_members_subset(start in 0i64..300) {
            let grid = PriceGrid::from_f64(10.0, 30.0, 0.1).unwrap();
            if let Some(sub) = grid.suffix_from(Price::from_tenths(start)) {
                for p in sub.iter() {
                    prop_assert!(grid.contains(p));
                    prop_assert!(p >= Price::from_tenths(start));
                }
            }
        }
    }
}
