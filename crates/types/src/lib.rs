//! Domain types for mobile crowd sensing (MCS) incentive mechanisms.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! `dp-mcs` workspace, following the system model of Jin et al.,
//! *Enabling Privacy-Preserving Incentives for Mobile Crowd Sensing
//! Systems* (ICDCS 2016):
//!
//! * [`WorkerId`] / [`TaskId`] — typed indices into the worker set `N` and
//!   task set `T`.
//! * [`Price`] — an exact fixed-point money amount (integer tenths), so the
//!   paper's 0.1-spaced cost grid is represented without floating-point
//!   drift and prices are totally ordered and hashable.
//! * [`Bundle`] — a set of tasks a worker bids on (`Γ_i`).
//! * [`Bid`] / [`BidProfile`] — a worker's submitted `(Γ_i, ρ_i)` and the
//!   full profile `b`.
//! * [`SkillMatrix`] — `θ = [θ_ij]`, each entry the probability that worker
//!   `i` labels task `j` correctly, together with the derived coverage
//!   weights `q_ij = (2θ_ij − 1)²` of Lemma 1.
//! * [`Instance`] — a complete auction input: bids, skills, per-task error
//!   bounds `δ_j`, candidate price grid `P`, and the cost range
//!   `[c_min, c_max]`.
//! * [`CompletionModel`] — deterministic or Bernoulli task completion;
//!   the Bernoulli case turns coverage requirements into chance
//!   constraints `Pr[shortfall for task j] ≤ γ_j` via [`chance_quota`].
//!
//! # Examples
//!
//! ```
//! use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId};
//!
//! # fn main() -> Result<(), mcs_types::McsError> {
//! let bundle = Bundle::new(vec![TaskId(0), TaskId(1)]);
//! let bids = vec![
//!     Bid::new(bundle.clone(), Price::from_f64(12.5)),
//!     Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(20.0)),
//! ];
//! let skills = SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.5, 0.7]])?;
//! let instance = Instance::builder(2)
//!     .bids(bids)
//!     .skills(skills)
//!     .uniform_error_bound(0.15)
//!     .price_grid_f64(10.0, 25.0, 0.1)
//!     .cost_range(Price::from_f64(10.0), Price::from_f64(25.0))
//!     .build()?;
//! assert_eq!(instance.num_workers(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bid;
mod bundle;
mod candidate;
mod completion;
mod coverage;
mod digest;
mod error;
mod id;
mod instance;
mod price;
mod skill;

pub use bid::{Bid, BidProfile, TrueType};
pub use bundle::Bundle;
pub use candidate::CandidateIndex;
pub use completion::{
    chance_quota, chernoff_shortfall_bound, BernoulliCompletion, CompletionModel, UncertainCoverage,
};
pub use coverage::{CoverageView, SparseCoverage};
pub use digest::{Fnv1a, DIGEST_VERSION};
pub use error::McsError;
pub use id::{TaskId, WorkerId};
pub use instance::{CoverageProblem, Instance, InstanceBuilder};
pub use price::{Price, PriceGrid};
pub use skill::{SkillMatrix, DEFAULT_THETA};
