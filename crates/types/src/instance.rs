//! Complete auction instances and the derived covering problem.

use serde::{Deserialize, Serialize};

use crate::{
    chance_quota, Bid, BidProfile, CompletionModel, McsError, Price, PriceGrid, SkillMatrix,
    SparseCoverage, TaskId, UncertainCoverage, WorkerId,
};

/// A complete, validated input to the hSRC auction.
///
/// Bundles together everything the platform knows when it runs winner and
/// payment determination:
///
/// * the bid profile `b` (one bid per worker),
/// * the skill matrix `θ`,
/// * the per-task aggregation-error bounds `δ_j`,
/// * the candidate price grid `P` (before feasibility filtering), and
/// * the cost range `[c_min, c_max]` of the finite cost set `C`.
///
/// Construct instances through [`Instance::builder`], which validates all
/// cross-field invariants.
///
/// # Examples
///
/// ```
/// use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId};
///
/// # fn main() -> Result<(), mcs_types::McsError> {
/// let instance = Instance::builder(1)
///     .bids(vec![Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0))])
///     .skills(SkillMatrix::from_rows(vec![vec![0.9]])?)
///     .uniform_error_bound(0.2)
///     .price_grid_f64(10.0, 20.0, 0.1)
///     .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
///     .build()?;
/// let cover = instance.coverage_problem();
/// assert!(cover.q(mcs_types::WorkerId(0), TaskId(0)) > 0.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    num_tasks: usize,
    bids: BidProfile,
    skills: SkillMatrix,
    deltas: Vec<f64>,
    price_grid: PriceGrid,
    cmin: Price,
    cmax: Price,
    /// Task-completion model; defaults to [`CompletionModel::Deterministic`]
    /// (instances serialized before this field existed decode as such).
    #[serde(default)]
    completion: CompletionModel,
}

impl Instance {
    /// Starts building an instance over `num_tasks` tasks.
    pub fn builder(num_tasks: usize) -> InstanceBuilder {
        InstanceBuilder {
            num_tasks,
            bids: None,
            skills: None,
            deltas: None,
            price_grid: None,
            cost_range: None,
            completion: None,
        }
    }

    /// Number of workers `N`.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.bids.len()
    }

    /// Number of tasks `K`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// The bid profile `b`.
    #[inline]
    pub fn bids(&self) -> &BidProfile {
        &self.bids
    }

    /// The skill matrix `θ`.
    #[inline]
    pub fn skills(&self) -> &SkillMatrix {
        &self.skills
    }

    /// The per-task error bounds `δ_j`.
    #[inline]
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// The candidate price grid `P` (not yet feasibility-filtered).
    #[inline]
    pub fn price_grid(&self) -> &PriceGrid {
        &self.price_grid
    }

    /// Lower end of the cost set `C`.
    #[inline]
    pub fn cmin(&self) -> Price {
        self.cmin
    }

    /// Upper end of the cost set `C`.
    #[inline]
    pub fn cmax(&self) -> Price {
        self.cmax
    }

    /// The cost spread `Δc = c_max − c_min` appearing in the truthfulness
    /// bound (Theorem 3).
    #[inline]
    pub fn delta_c(&self) -> Price {
        self.cmax - self.cmin
    }

    /// The task-completion model.
    #[inline]
    pub fn completion(&self) -> &CompletionModel {
        &self.completion
    }

    /// Returns a copy of this instance with a different completion model.
    ///
    /// # Errors
    ///
    /// Same validation as the builder's — see [`CompletionModel::validate`].
    pub fn with_completion(&self, completion: CompletionModel) -> Result<Instance, McsError> {
        completion.validate(self.num_workers(), self.num_tasks)?;
        Ok(Instance {
            completion,
            ..self.clone()
        })
    }

    /// Derives the covering problem `(q, Q)` of the TPM formulation.
    ///
    /// `q_ij = (2θ_ij − 1)²` where task `j` is in worker `i`'s bundle and 0
    /// elsewhere; `Q_j = 2 ln(1/δ_j)`.
    ///
    /// Under an uncertain [`CompletionModel`] this is the *effective*
    /// problem: weights become `p_ij · q_ij` and any task with an incident
    /// `p < 1` entry gets the chance quota [`chance_quota`]`(Q_j, γ_j)`
    /// instead of `Q_j`. Entries with `p = 1` and certain tasks keep the
    /// verbatim deterministic expressions, so the all-`p = 1` case is
    /// bit-identical to [`CompletionModel::Deterministic`].
    pub fn coverage_problem(&self) -> CoverageProblem {
        let n = self.num_workers();
        let k = self.num_tasks;
        let uncertain_model = self.completion.is_uncertain();
        let mut task_uncertain = vec![false; k];
        let mut q = vec![0.0; n * k];
        for (wid, bid) in self.bids.iter() {
            for t in bid.bundle().iter() {
                let raw = self.skills.q(wid, t);
                let p = if uncertain_model {
                    self.completion.p(wid, t)
                } else {
                    1.0
                };
                q[wid.index() * k + t.index()] = if p < 1.0 && raw > 0.0 {
                    task_uncertain[t.index()] = true;
                    p * raw
                } else {
                    raw
                };
            }
        }
        let requirements = self.effective_requirements(&task_uncertain);
        CoverageProblem {
            num_workers: n,
            num_tasks: k,
            q,
            requirements,
        }
    }

    /// Derives the covering problem directly in CSR form, in
    /// `O(nnz + K)` — no dense `N×K` matrix is ever materialized.
    ///
    /// Stores exactly the cells [`Instance::coverage_problem`] would hold
    /// with `q > 0.0`, in the same ascending task order, so every
    /// accumulation the engines perform over it is bit-identical to the
    /// dense path (see the `coverage` module docs for the argument).
    pub fn sparse_coverage(&self) -> SparseCoverage {
        let n = self.num_workers();
        let uncertain_model = self.completion.is_uncertain();
        let mut task_uncertain = vec![false; self.num_tasks];
        let mut offsets = Vec::with_capacity(n + 1);
        let mut tasks = Vec::new();
        let mut weights = Vec::new();
        let mut probs = Vec::new();
        let mut totals = Vec::with_capacity(n);
        offsets.push(0);
        for (wid, bid) in self.bids.iter() {
            let mut total = 0.0;
            // Bundles iterate sorted and deduplicated, so rows come out in
            // ascending task order with no repeated cells.
            for t in bid.bundle().iter() {
                let raw = self.skills.q(wid, t);
                if raw > 0.0 {
                    let p = if uncertain_model {
                        self.completion.p(wid, t)
                    } else {
                        1.0
                    };
                    let q = if p < 1.0 {
                        task_uncertain[t.index()] = true;
                        p * raw
                    } else {
                        raw
                    };
                    tasks.push(t.0);
                    weights.push(q);
                    if uncertain_model {
                        probs.push(p);
                    }
                    total += q;
                }
            }
            totals.push(total);
            offsets.push(tasks.len());
        }
        let requirements = self.effective_requirements(&task_uncertain);
        let uncertainty = if uncertain_model {
            let base = self.deltas.iter().map(|&d| 2.0 * (1.0 / d).ln()).collect();
            let gammas = (0..self.num_tasks)
                .map(|j| self.completion.gamma(TaskId(j as u32)).unwrap_or(1.0))
                .collect();
            Some(UncertainCoverage::from_parts(probs, base, gammas))
        } else {
            None
        };
        SparseCoverage::from_parts(
            n,
            self.num_tasks,
            offsets,
            tasks,
            weights,
            totals,
            requirements,
            uncertainty,
        )
    }

    /// `Q_j = 2 ln(1/δ_j)` for certain tasks, the Chernoff chance quota
    /// `R_j = `[`chance_quota`]`(Q_j, γ_j)` for tasks flagged as having an
    /// incident `p < 1` entry. The certain branch is the verbatim
    /// deterministic expression — the key to the `p = 1` bit-identity.
    fn effective_requirements(&self, task_uncertain: &[bool]) -> Vec<f64> {
        self.deltas
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let base = 2.0 * (1.0 / d).ln();
                if task_uncertain[j] {
                    match self.completion.gamma(TaskId(j as u32)) {
                        Some(g) => chance_quota(base, g),
                        None => base,
                    }
                } else {
                    base
                }
            })
            .collect()
    }

    /// Returns a neighbouring instance that differs only in `worker`'s bid.
    ///
    /// Skills, error bounds, price grid and cost range are shared — exactly
    /// the neighbour relation under which Definition 7 (differential
    /// privacy) is stated.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::WorkerOutOfRange`], [`McsError::EmptyBundle`],
    /// [`McsError::BundleOutOfRange`], or [`McsError::InvalidCostRange`] if
    /// the replacement bid is invalid for this instance.
    pub fn with_bid(&self, worker: WorkerId, bid: Bid) -> Result<Instance, McsError> {
        if bid.bundle().is_empty() {
            return Err(McsError::EmptyBundle { worker });
        }
        if !bid.bundle().within_task_count(self.num_tasks) {
            return Err(McsError::BundleOutOfRange {
                worker,
                num_tasks: self.num_tasks,
            });
        }
        if bid.price() < self.cmin || bid.price() > self.cmax {
            return Err(McsError::InvalidCostRange {
                cmin: self.cmin,
                cmax: self.cmax,
            });
        }
        Ok(Instance {
            bids: self.bids.with_bid(worker, bid)?,
            ..self.clone()
        })
    }

    /// Restricts the instance to an admitted subset of workers (e.g. those
    /// passing a reputation gate), preserving original ids via the returned
    /// mapping: new [`WorkerId`] `k` is old `workers[k]`.
    ///
    /// Bids, skill rows and the completion model keep only the selected
    /// rows; tasks, error bounds, price grid and cost range are shared —
    /// the instance-level companion of [`CoverageProblem::restrict_to`].
    ///
    /// # Errors
    ///
    /// Returns [`McsError::WorkerOutOfRange`] if any id is outside the
    /// pool, plus any builder validation error (e.g. an empty `workers`
    /// slice produces an instance with no bids).
    pub fn restrict_to_workers(
        &self,
        workers: &[WorkerId],
    ) -> Result<(Instance, Vec<WorkerId>), McsError> {
        for &w in workers {
            if w.index() >= self.num_workers() {
                return Err(McsError::WorkerOutOfRange {
                    worker: w,
                    num_workers: self.num_workers(),
                });
            }
        }
        let bids: Vec<Bid> = workers.iter().map(|&w| self.bids.bid(w).clone()).collect();
        let rows: Vec<Vec<f64>> = workers
            .iter()
            .map(|&w| self.skills.worker_row(w).to_vec())
            .collect();
        let completion = self.completion.restrict_to_workers(workers);
        let restricted = Instance::builder(self.num_tasks)
            .bids(bids)
            .skills(SkillMatrix::from_rows(rows)?)
            .error_bounds(self.deltas.clone())
            .price_grid(self.price_grid.clone())
            .cost_range(self.cmin, self.cmax)
            .completion(completion)
            .build()?;
        Ok((restricted, workers.to_vec()))
    }
}

/// The covering program extracted from an instance: the constraint data of
/// the TPM problem (Eq. 8).
///
/// Row `i` holds worker `i`'s coverage contribution `q_ij` to each task
/// (zero for tasks outside her bundle); `requirements[j]` holds `Q_j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageProblem {
    num_workers: usize,
    num_tasks: usize,
    q: Vec<f64>,
    requirements: Vec<f64>,
}

impl CoverageProblem {
    /// Builds a covering problem directly from raw `q` and `Q` data.
    ///
    /// Mostly useful in tests and in solver benchmarks that bypass the
    /// auction model.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::DimensionMismatch`] if `q.len()` is not
    /// `num_workers * num_tasks` or `requirements.len()` is not `num_tasks`.
    pub fn from_raw(
        num_workers: usize,
        num_tasks: usize,
        q: Vec<f64>,
        requirements: Vec<f64>,
    ) -> Result<Self, McsError> {
        if q.len() != num_workers * num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "coverage matrix",
                expected: num_workers * num_tasks,
                actual: q.len(),
            });
        }
        if requirements.len() != num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "requirement vector",
                expected: num_tasks,
                actual: requirements.len(),
            });
        }
        Ok(CoverageProblem {
            num_workers,
            num_tasks,
            q,
            requirements,
        })
    }

    /// Number of workers (variables).
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of tasks (covering constraints).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Worker `i`'s contribution to task `j` (zero outside her bundle).
    #[inline]
    pub fn q(&self, worker: WorkerId, task: TaskId) -> f64 {
        self.q[worker.index() * self.num_tasks + task.index()]
    }

    /// Worker `i`'s full contribution row.
    #[inline]
    pub fn worker_row(&self, worker: WorkerId) -> &[f64] {
        let start = worker.index() * self.num_tasks;
        &self.q[start..start + self.num_tasks]
    }

    /// Required coverage `Q_j` for a task.
    #[inline]
    pub fn requirement(&self, task: TaskId) -> f64 {
        self.requirements[task.index()]
    }

    /// All requirements `Q`.
    #[inline]
    pub fn requirements(&self) -> &[f64] {
        &self.requirements
    }

    /// Total contribution `Σ_j q_ij` of a worker across all tasks — the
    /// static score used by the Baseline auction and the `β` constant of
    /// Lemma 2.
    pub fn worker_total(&self, worker: WorkerId) -> f64 {
        self.worker_row(worker).iter().sum()
    }

    /// The constant `β = max_i Σ_j q_ij` of Lemma 2.
    pub fn beta(&self) -> f64 {
        (0..self.num_workers)
            .map(|i| self.worker_total(WorkerId(i as u32)))
            .fold(0.0, f64::max)
    }

    /// Checks whether a subset of workers satisfies every covering
    /// constraint, with a small tolerance for float accumulation.
    pub fn is_satisfied_by<I>(&self, workers: I) -> bool
    where
        I: IntoIterator<Item = WorkerId>,
    {
        let mut coverage = vec![0.0f64; self.num_tasks];
        for w in workers {
            for (j, cov) in coverage.iter_mut().enumerate() {
                *cov += self.q(w, TaskId(j as u32));
            }
        }
        coverage
            .iter()
            .zip(&self.requirements)
            .all(|(c, r)| *c >= *r - 1e-9)
    }

    /// Maximum attainable coverage of task `j` using every worker.
    pub fn max_attainable(&self, task: TaskId) -> f64 {
        (0..self.num_workers)
            .map(|i| self.q(WorkerId(i as u32), task))
            .sum()
    }

    /// Verifies the full pool can satisfy every constraint.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::Infeasible`] naming the first uncoverable task.
    pub fn check_feasible(&self) -> Result<(), McsError> {
        for j in 0..self.num_tasks {
            let t = TaskId(j as u32);
            let attainable = self.max_attainable(t);
            if attainable < self.requirement(t) - 1e-9 {
                return Err(McsError::Infeasible {
                    task: t,
                    required: self.requirement(t),
                    attainable,
                });
            }
        }
        Ok(())
    }

    /// Restricts the problem to a subset of workers (e.g. those with
    /// `ρ_i ≤ p`), preserving original worker ids via the returned mapping.
    ///
    /// Returns the restricted problem and a vector mapping new row index →
    /// original [`WorkerId`].
    pub fn restrict_to(&self, workers: &[WorkerId]) -> (CoverageProblem, Vec<WorkerId>) {
        let mut q = Vec::with_capacity(workers.len() * self.num_tasks);
        for &w in workers {
            q.extend_from_slice(self.worker_row(w));
        }
        (
            CoverageProblem {
                num_workers: workers.len(),
                num_tasks: self.num_tasks,
                q,
                requirements: self.requirements.clone(),
            },
            workers.to_vec(),
        )
    }
}

/// Incremental builder for [`Instance`] (see [`Instance::builder`]).
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    num_tasks: usize,
    bids: Option<BidProfile>,
    skills: Option<SkillMatrix>,
    deltas: Option<Vec<f64>>,
    price_grid: Option<PriceGrid>,
    cost_range: Option<(Price, Price)>,
    completion: Option<CompletionModel>,
}

impl InstanceBuilder {
    /// Sets the bid profile from any bid collection.
    pub fn bids<I: IntoIterator<Item = Bid>>(mut self, bids: I) -> Self {
        self.bids = Some(bids.into_iter().collect());
        self
    }

    /// Sets the full bid profile.
    pub fn bid_profile(mut self, bids: BidProfile) -> Self {
        self.bids = Some(bids);
        self
    }

    /// Sets the skill matrix.
    pub fn skills(mut self, skills: SkillMatrix) -> Self {
        self.skills = Some(skills);
        self
    }

    /// Sets per-task error bounds `δ_j`.
    pub fn error_bounds(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = Some(deltas);
        self
    }

    /// Sets a single error bound used for every task.
    pub fn uniform_error_bound(mut self, delta: f64) -> Self {
        self.deltas = Some(vec![delta; self.num_tasks]);
        self
    }

    /// Sets the candidate price grid.
    pub fn price_grid(mut self, grid: PriceGrid) -> Self {
        self.price_grid = Some(grid);
        self
    }

    /// Sets the candidate price grid from float endpoints.
    ///
    /// Invalid parameters surface as an error from [`InstanceBuilder::build`].
    pub fn price_grid_f64(mut self, min: f64, max: f64, step: f64) -> Self {
        self.price_grid = PriceGrid::from_f64(min, max, step).ok();
        self
    }

    /// Sets the cost range `[c_min, c_max]` of the cost set `C`.
    pub fn cost_range(mut self, cmin: Price, cmax: Price) -> Self {
        self.cost_range = Some((cmin, cmax));
        self
    }

    /// Sets the task-completion model (defaults to
    /// [`CompletionModel::Deterministic`]).
    pub fn completion(mut self, model: CompletionModel) -> Self {
        self.completion = Some(model);
        self
    }

    /// Validates all fields and produces the instance.
    ///
    /// # Errors
    ///
    /// * [`McsError::MissingField`] — a required field was never set.
    /// * [`McsError::DimensionMismatch`] — skills/deltas disagree with the
    ///   worker or task counts.
    /// * [`McsError::EmptyBundle`] / [`McsError::BundleOutOfRange`] — a bid's
    ///   bundle is empty or references unknown tasks.
    /// * [`McsError::InvalidErrorBound`] — some `δ_j ∉ (0, 1)`.
    /// * [`McsError::InvalidCostRange`] — `c_max < c_min` or a bid price
    ///   outside `[c_min, c_max]`.
    /// * [`McsError::InvalidCompletionProb`] /
    ///   [`McsError::InvalidShortfallBound`] /
    ///   [`McsError::DuplicateCompletionEntry`] — an invalid completion
    ///   model (see [`CompletionModel::validate`]).
    pub fn build(self) -> Result<Instance, McsError> {
        let bids = self.bids.ok_or(McsError::MissingField { field: "bids" })?;
        let skills = self
            .skills
            .ok_or(McsError::MissingField { field: "skills" })?;
        let deltas = self.deltas.ok_or(McsError::MissingField {
            field: "error_bounds",
        })?;
        let price_grid = self.price_grid.ok_or(McsError::MissingField {
            field: "price_grid",
        })?;
        let (cmin, cmax) = self.cost_range.ok_or(McsError::MissingField {
            field: "cost_range",
        })?;

        if cmax < cmin {
            return Err(McsError::InvalidCostRange { cmin, cmax });
        }
        if skills.num_workers() != bids.len() {
            return Err(McsError::DimensionMismatch {
                what: "skill matrix workers",
                expected: bids.len(),
                actual: skills.num_workers(),
            });
        }
        if skills.num_tasks() != self.num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "skill matrix tasks",
                expected: self.num_tasks,
                actual: skills.num_tasks(),
            });
        }
        if deltas.len() != self.num_tasks {
            return Err(McsError::DimensionMismatch {
                what: "error bound vector",
                expected: self.num_tasks,
                actual: deltas.len(),
            });
        }
        for (j, &d) in deltas.iter().enumerate() {
            if !(d > 0.0 && d < 1.0) {
                return Err(McsError::InvalidErrorBound {
                    task: TaskId(j as u32),
                    value: d,
                });
            }
        }
        for (wid, bid) in bids.iter() {
            if bid.bundle().is_empty() {
                return Err(McsError::EmptyBundle { worker: wid });
            }
            if !bid.bundle().within_task_count(self.num_tasks) {
                return Err(McsError::BundleOutOfRange {
                    worker: wid,
                    num_tasks: self.num_tasks,
                });
            }
            if bid.price() < cmin || bid.price() > cmax {
                return Err(McsError::InvalidCostRange { cmin, cmax });
            }
        }

        let completion = self.completion.unwrap_or_default();
        completion.validate(bids.len(), self.num_tasks)?;

        Ok(Instance {
            num_tasks: self.num_tasks,
            bids,
            skills,
            deltas,
            price_grid,
            cmin,
            cmax,
            completion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bundle;

    fn valid_builder() -> InstanceBuilder {
        Instance::builder(2)
            .bids(vec![
                Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
                Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(1)]),
                    Price::from_f64(15.0),
                ),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.7, 0.95]]).unwrap())
            .uniform_error_bound(0.15)
            .price_grid_f64(10.0, 20.0, 0.1)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
    }

    #[test]
    fn build_valid_instance() {
        let inst = valid_builder().build().unwrap();
        assert_eq!(inst.num_workers(), 2);
        assert_eq!(inst.num_tasks(), 2);
        assert_eq!(inst.delta_c(), Price::from_f64(10.0));
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = Instance::builder(1).build().unwrap_err();
        assert!(matches!(err, McsError::MissingField { field: "bids" }));
    }

    #[test]
    fn rejects_empty_bundle() {
        let err = valid_builder()
            .bids(vec![Bid::new(Bundle::empty(), Price::from_f64(10.0))])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8]]).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, McsError::EmptyBundle { .. }));
    }

    #[test]
    fn rejects_bundle_out_of_range() {
        let err = valid_builder()
            .bids(vec![Bid::new(
                Bundle::new(vec![TaskId(5)]),
                Price::from_f64(10.0),
            )])
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8]]).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, McsError::BundleOutOfRange { .. }));
    }

    #[test]
    fn rejects_bad_delta() {
        let err = valid_builder()
            .error_bounds(vec![0.15, 1.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, McsError::InvalidErrorBound { .. }));
        let err = valid_builder()
            .error_bounds(vec![0.0, 0.15])
            .build()
            .unwrap_err();
        assert!(matches!(err, McsError::InvalidErrorBound { .. }));
    }

    #[test]
    fn rejects_bid_outside_cost_range() {
        let err = valid_builder()
            .cost_range(Price::from_f64(12.0), Price::from_f64(20.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, McsError::InvalidCostRange { .. }));
    }

    #[test]
    fn rejects_skill_dimension_mismatch() {
        let err = valid_builder()
            .skills(SkillMatrix::from_rows(vec![vec![0.9, 0.8]]).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, McsError::DimensionMismatch { .. }));
    }

    #[test]
    fn coverage_problem_masks_outside_bundle() {
        let inst = valid_builder().build().unwrap();
        let cover = inst.coverage_problem();
        // Worker 0 bids only task 0, so her q for task 1 is masked to 0.
        assert!(cover.q(WorkerId(0), TaskId(0)) > 0.0);
        assert_eq!(cover.q(WorkerId(0), TaskId(1)), 0.0);
        assert!(cover.q(WorkerId(1), TaskId(1)) > 0.0);
        // Q_j = 2 ln(1/0.15).
        let expected = 2.0 * (1.0f64 / 0.15).ln();
        assert!((cover.requirement(TaskId(0)) - expected).abs() < 1e-12);
    }

    #[test]
    fn coverage_satisfaction() {
        let inst = valid_builder().build().unwrap();
        let cover = inst.coverage_problem();
        // q(0,0) = 0.64, q(1,0) = 0.16, q(1,1) = 0.81; Q ≈ 3.794 — pool
        // cannot cover, so nothing satisfies.
        assert!(!cover.is_satisfied_by([WorkerId(0), WorkerId(1)]));
        assert!(cover.check_feasible().is_err());
    }

    #[test]
    fn feasible_pool_passes_check() {
        let cover = CoverageProblem::from_raw(3, 1, vec![0.5, 0.6, 0.7], vec![1.5]).unwrap();
        cover.check_feasible().unwrap();
        assert!(cover.is_satisfied_by([WorkerId(0), WorkerId(1), WorkerId(2)]));
        assert!(!cover.is_satisfied_by([WorkerId(0), WorkerId(1)]));
        assert!((cover.beta() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn restriction_preserves_rows() {
        let cover =
            CoverageProblem::from_raw(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], vec![0.5, 0.5])
                .unwrap();
        let (sub, map) = cover.restrict_to(&[WorkerId(2), WorkerId(0)]);
        assert_eq!(sub.num_workers(), 2);
        assert_eq!(map, vec![WorkerId(2), WorkerId(0)]);
        assert_eq!(sub.worker_row(WorkerId(0)), &[0.5, 0.6]);
        assert_eq!(sub.worker_row(WorkerId(1)), &[0.1, 0.2]);
    }

    #[test]
    fn instance_restriction_remaps_rows_and_shares_task_data() {
        let inst = valid_builder().build().unwrap();
        let (sub, map) = inst
            .restrict_to_workers(&[WorkerId(1), WorkerId(0)])
            .unwrap();
        assert_eq!(sub.num_workers(), 2);
        assert_eq!(map, vec![WorkerId(1), WorkerId(0)]);
        // New row 0 is old worker 1, bid and skills alike.
        assert_eq!(sub.bids().bid(WorkerId(0)), inst.bids().bid(WorkerId(1)));
        assert_eq!(
            sub.skills().worker_row(WorkerId(0)),
            inst.skills().worker_row(WorkerId(1))
        );
        assert_eq!(sub.deltas(), inst.deltas());
        assert_eq!(sub.price_grid(), inst.price_grid());
        assert_eq!(sub.cmin(), inst.cmin());
        assert_eq!(sub.cmax(), inst.cmax());
        // A strict subset drops the excluded worker's row entirely.
        let (only_one, _) = inst.restrict_to_workers(&[WorkerId(0)]).unwrap();
        assert_eq!(only_one.num_workers(), 1);
        assert_eq!(
            only_one.bids().bid(WorkerId(0)),
            inst.bids().bid(WorkerId(0))
        );
        // Out-of-range ids are typed errors.
        assert!(matches!(
            inst.restrict_to_workers(&[WorkerId(9)]),
            Err(McsError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn uncertain_completion_scales_weights_and_inflates_quota() {
        use crate::{BernoulliCompletion, CoverageView};
        let det = valid_builder().build().unwrap();
        let model = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(0), 0.5)], vec![]],
            vec![0.1, 0.2],
        ));
        let inst = valid_builder().completion(model).build().unwrap();
        let cover = inst.coverage_problem();
        let sparse = inst.sparse_coverage();
        // q(0,0) = (2·0.9 − 1)² = 0.64, scaled by p = 0.5.
        assert!((cover.q(WorkerId(0), TaskId(0)) - 0.32).abs() < 1e-12);
        // Entries without an override keep the exact deterministic bits.
        assert_eq!(
            cover.q(WorkerId(1), TaskId(1)).to_bits(),
            det.coverage_problem().q(WorkerId(1), TaskId(1)).to_bits()
        );
        // Task 0 (incident p < 1) gets the chance quota; task 1 stays at
        // the verbatim 2 ln(1/δ) bits.
        let q0 = 2.0 * (1.0f64 / 0.15).ln();
        assert_eq!(
            cover.requirement(TaskId(0)).to_bits(),
            chance_quota(q0, 0.1).to_bits()
        );
        assert!(cover.requirement(TaskId(0)) > q0);
        assert_eq!(cover.requirement(TaskId(1)).to_bits(), q0.to_bits());
        // The CSR problem carries the chance-constraint metadata.
        assert!(CoverageView::is_uncertain(&sparse));
        assert_eq!(sparse.completion_prob(WorkerId(0), TaskId(0)), 0.5);
        assert_eq!(sparse.completion_prob(WorkerId(1), TaskId(1)), 1.0);
        assert_eq!(sparse.base_requirement(TaskId(0)).to_bits(), q0.to_bits());
        assert_eq!(sparse.shortfall_bound(TaskId(0)), Some(0.1));
        assert_eq!(sparse.shortfall_bound(TaskId(1)), Some(0.2));
        // Dense and sparse derive the same effective numbers.
        assert_eq!(sparse.to_dense(), cover);
        // Metadata survives worker restriction, staying entry-aligned.
        let (sub, _) = sparse.restrict_to(&[WorkerId(0)]);
        assert_eq!(sub.completion_prob(WorkerId(0), TaskId(0)), 0.5);
    }

    #[test]
    fn unit_probability_bernoulli_is_bit_identical_to_deterministic() {
        use crate::BernoulliCompletion;
        let det = valid_builder().build().unwrap();
        let model = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(0), 1.0)], vec![(TaskId(1), 1.0)]],
            vec![0.1, 0.2],
        ));
        let unit = valid_builder().completion(model).build().unwrap();
        assert_eq!(det.coverage_problem(), unit.coverage_problem());
        assert_eq!(det.sparse_coverage(), unit.sparse_coverage());
        assert!(!crate::CoverageView::is_uncertain(&unit.sparse_coverage()));
    }

    #[test]
    fn builder_rejects_invalid_completion() {
        use crate::BernoulliCompletion;
        let bad = CompletionModel::Bernoulli(BernoulliCompletion::new(
            vec![vec![(TaskId(0), 1.5)], vec![]],
            vec![0.1, 0.2],
        ));
        let err = valid_builder().completion(bad).build().unwrap_err();
        assert!(matches!(err, McsError::InvalidCompletionProb { .. }));
        let wrong_rows =
            CompletionModel::Bernoulli(BernoulliCompletion::new(vec![vec![]], vec![0.1, 0.2]));
        let err = valid_builder().completion(wrong_rows).build().unwrap_err();
        assert!(matches!(err, McsError::DimensionMismatch { .. }));
    }

    #[test]
    fn serde_roundtrip_preserves_instance() {
        let inst = valid_builder().build().unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
        // Derived structures match too.
        assert_eq!(inst.coverage_problem(), back.coverage_problem());
        // Uncertain instances round-trip with their completion model.
        let uncertain = inst
            .with_completion(CompletionModel::Bernoulli(crate::BernoulliCompletion::new(
                vec![vec![(TaskId(0), 0.7)], vec![]],
                vec![0.1, 0.1],
            )))
            .unwrap();
        let json = serde_json::to_string(&uncertain).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(uncertain, back);
        assert_eq!(uncertain.sparse_coverage(), back.sparse_coverage());
    }

    #[test]
    fn neighbour_instance_shares_everything_but_one_bid() {
        let inst = valid_builder().build().unwrap();
        let nb = inst
            .with_bid(
                WorkerId(0),
                Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(18.0)),
            )
            .unwrap();
        assert_eq!(inst.bids().hamming_distance(nb.bids()), Some(1));
        assert_eq!(inst.skills(), nb.skills());
        // Invalid replacements are rejected.
        assert!(inst
            .with_bid(
                WorkerId(0),
                Bid::new(Bundle::empty(), Price::from_f64(12.0))
            )
            .is_err());
        assert!(inst
            .with_bid(
                WorkerId(0),
                Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(25.0)),
            )
            .is_err());
    }
}
