//! Solver error types.

use std::error::Error;
use std::fmt;

/// Errors raised while validating or solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// A constraint row's coefficient vector length differed from the
    /// number of variables.
    DimensionMismatch {
        /// Index of the offending constraint.
        constraint: usize,
        /// Number of variables in the program.
        num_vars: usize,
        /// Length of the offending row.
        row_len: usize,
    },
    /// A coefficient, objective entry, or right-hand side was NaN or
    /// infinite.
    NonFiniteCoefficient {
        /// Where the bad value was found.
        location: &'static str,
    },
    /// The pivot loop exceeded its iteration budget.
    ///
    /// With Bland's rule active this can only happen if the budget is
    /// genuinely too small for the instance.
    IterationLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch {
                constraint,
                num_vars,
                row_len,
            } => write!(
                f,
                "constraint {constraint} has {row_len} coefficients, expected {num_vars}"
            ),
            LpError::NonFiniteCoefficient { location } => {
                write!(f, "non-finite coefficient in {location}")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded the iteration limit of {limit}")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LpError::IterationLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<LpError>();
    }
}
