//! The two-phase dense tableau simplex engine.

use crate::problem::{LinearProgram, Relation};
use crate::LpError;

/// Tuning knobs for the simplex loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Hard cap on pivots per phase.
    pub max_iterations: usize,
    /// Feasibility/optimality tolerance.
    pub tolerance: f64,
    /// Consecutive degenerate (non-improving) pivots under Dantzig's rule
    /// before permanently switching to Bland's anti-cycling rule.
    pub stall_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 100_000,
            tolerance: 1e-9,
            stall_threshold: 64,
        }
    }
}

/// An optimal solution: the minimizing point, its objective value, and the
/// dual prices of the constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    x: Vec<f64>,
    duals: Vec<f64>,
}

impl Solution {
    /// The optimal objective value.
    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The optimal point.
    #[inline]
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// One coordinate of the optimal point.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[inline]
    pub fn value(&self, var: usize) -> f64 {
        self.x[var]
    }

    /// The dual prices (shadow prices), one per constraint in input order.
    ///
    /// Read from the optimal reduced-cost row of the tableau. For a
    /// minimization over `x ≥ 0`, duals of `≥` constraints are
    /// non-negative, duals of `≤` constraints non-positive, duals of `=`
    /// constraints free; strong duality gives `Σ y_i b_i =` the optimal
    /// objective. Duals of redundant rows eliminated in phase 1 are
    /// reported as zero.
    #[inline]
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

/// The three possible results of solving a (valid) linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(Solution),
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
}

/// Dense simplex tableau with an explicit cost row.
struct Tableau {
    /// Constraint rows, all the same length as `cost`.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (kept non-negative).
    b: Vec<f64>,
    /// Reduced-cost row, canonicalized w.r.t. the current basis.
    cost: Vec<f64>,
    /// Basic column for each row.
    basis: Vec<usize>,
}

enum PivotResult {
    Optimal,
    Unbounded,
}

impl Tableau {
    /// Canonicalizes the cost row against the current basis: subtracts
    /// `cost[basis[r]] · row_r` so basic columns get zero reduced cost.
    fn canonicalize_cost(&mut self, raw_cost: &[f64]) {
        self.cost = raw_cost.to_vec();
        for r in 0..self.a.len() {
            let cb = raw_cost[self.basis[r]];
            if cb != 0.0 {
                let row = &self.a[r];
                for (c, &rj) in self.cost.iter_mut().zip(row) {
                    *c -= cb * rj;
                }
            }
        }
    }

    /// Performs one pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize, tol: f64) {
        let pivot_val = self.a[row][col];
        debug_assert!(pivot_val.abs() > tol, "pivot on a (near-)zero element");
        // Normalize the pivot row.
        let inv = 1.0 / pivot_val;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        self.b[row] *= inv;
        // Eliminate the column from every other row. One copy of the
        // normalized pivot row sidesteps the borrow of `self.a` inside the
        // elimination loop.
        let pivot_row: Vec<f64> = self.a[row].clone();
        let pivot_b = self.b[row];
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor != 0.0 {
                let dst = &mut self.a[r];
                for (j, &pv) in pivot_row.iter().enumerate() {
                    dst[j] -= factor * pv;
                }
                self.b[r] -= factor * pivot_b;
                if self.b[r] < 0.0 && self.b[r] > -tol {
                    self.b[r] = 0.0;
                }
            }
        }
        // Update the cost row.
        let factor = self.cost[col];
        if factor != 0.0 {
            let pivot_row = &self.a[row];
            for (c, &prj) in self.cost.iter_mut().zip(pivot_row) {
                *c -= factor * prj;
            }
        }
        self.basis[row] = col;
    }

    /// Computes `z = Σ c_B · b` for a raw cost vector (the objective value
    /// of the current basic solution).
    fn objective_of(&self, raw_cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.b)
            .map(|(&bc, &bv)| raw_cost[bc] * bv)
            .sum()
    }

    /// Runs the simplex loop on the current (canonicalized) cost row over
    /// columns `< active_cols`.
    fn run(
        &mut self,
        active_cols: usize,
        options: &SimplexOptions,
    ) -> Result<PivotResult, LpError> {
        let tol = options.tolerance;
        let mut bland = false;
        let mut stall = 0usize;
        for _ in 0..options.max_iterations {
            // Entering column.
            let entering = if bland {
                (0..active_cols).find(|&j| self.cost[j] < -tol)
            } else {
                let mut best: Option<(usize, f64)> = None;
                for j in 0..active_cols {
                    let c = self.cost[j];
                    if c < -tol && best.is_none_or(|(_, bc)| c < bc) {
                        best = Some((j, c));
                    }
                }
                best.map(|(j, _)| j)
            };
            let Some(col) = entering else {
                return Ok(PivotResult::Optimal);
            };

            // Ratio test: tightest non-negative ratio, ties by smallest
            // basic column index (lexicographic safeguard).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let arc = self.a[r][col];
                if arc > tol {
                    let ratio = self.b[r] / arc;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - tol
                                || ((ratio - lratio).abs() <= tol && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, ratio)) = leave else {
                return Ok(PivotResult::Unbounded);
            };

            // Stall accounting: a degenerate pivot leaves the solution (and
            // objective) unchanged; too many in a row → Bland's rule.
            if ratio.abs() <= tol {
                stall += 1;
                if stall >= options.stall_threshold {
                    bland = true;
                }
            } else {
                stall = 0;
            }

            self.pivot(row, col, tol);
        }
        Err(LpError::IterationLimit {
            limit: options.max_iterations,
        })
    }
}

/// Solves a validated program with the two-phase method.
pub(crate) fn solve_two_phase(
    lp: &LinearProgram,
    options: &SimplexOptions,
) -> Result<LpOutcome, LpError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    let tol = options.tolerance;

    // Normalize rows to non-negative rhs, flipping the relation if needed.
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = lp
        .constraints()
        .iter()
        .map(|c| (c.coeffs.clone(), c.relation, c.rhs))
        .collect();
    for (coeffs, rel, rhs) in rows.iter_mut() {
        if *rhs < 0.0 {
            for v in coeffs.iter_mut() {
                *v = -*v;
            }
            *rhs = -*rhs;
            *rel = match *rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    // Column layout: structural | slack/surplus | artificial.
    let num_slack = rows
        .iter()
        .filter(|(_, rel, _)| *rel != Relation::Eq)
        .count();
    let art_start = n + num_slack;
    let num_art = rows
        .iter()
        .filter(|(_, rel, _)| *rel != Relation::Le)
        .count();
    let cols = art_start + num_art;

    let mut a = vec![vec![0.0; cols]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_art = art_start;
    // Per original row: the unit column whose reduced cost reveals the
    // dual (column index, its coefficient sign in the row).
    let mut dual_probe = vec![(usize::MAX, 1.0f64); m];
    for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(coeffs);
        b[r] = *rhs;
        match rel {
            Relation::Le => {
                a[r][next_slack] = 1.0;
                basis[r] = next_slack;
                dual_probe[r] = (next_slack, 1.0);
                next_slack += 1;
            }
            Relation::Ge => {
                a[r][next_slack] = -1.0;
                dual_probe[r] = (next_slack, -1.0);
                next_slack += 1;
                a[r][next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                a[r][next_art] = 1.0;
                basis[r] = next_art;
                dual_probe[r] = (next_art, 1.0);
                next_art += 1;
            }
        }
    }

    let mut tab = Tableau {
        a,
        b,
        cost: vec![0.0; cols],
        basis,
    };

    // Phase 1: minimize the sum of artificials.
    if num_art > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for c in phase1_cost.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        tab.canonicalize_cost(&phase1_cost);
        match tab.run(cols, options)? {
            PivotResult::Optimal => {}
            // Phase 1's objective is bounded below by 0, so unboundedness
            // cannot occur; treat defensively as infeasible.
            PivotResult::Unbounded => return Ok(LpOutcome::Infeasible),
        }
        let phase1_obj = tab.objective_of(&phase1_cost);
        // Scale-aware feasibility test.
        let scale = tab.b.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
        if phase1_obj > tol.max(1e-7) * scale {
            return Ok(LpOutcome::Infeasible);
        }

        // Drive any artificial still in the basis out (it sits at value 0).
        for r in 0..tab.a.len() {
            if tab.basis[r] >= art_start {
                let pivot_col = (0..art_start).find(|&j| tab.a[r][j].abs() > tol.max(1e-8));
                if let Some(j) = pivot_col {
                    tab.pivot(r, j, tol);
                }
                // If no pivot column exists the row is redundant
                // (all-zero over real columns); it stays with its
                // artificial basic at value zero, which is harmless in
                // phase 2 because artificial columns are excluded from
                // entering.
            }
        }
    }

    // Phase 2: minimize the real objective over non-artificial columns.
    let mut phase2_cost = vec![0.0; cols];
    phase2_cost[..n].copy_from_slice(lp.objective());
    tab.canonicalize_cost(&phase2_cost);
    match tab.run(art_start, options)? {
        PivotResult::Optimal => {}
        PivotResult::Unbounded => return Ok(LpOutcome::Unbounded),
    }

    // Extract the structural solution.
    let mut x = vec![0.0; n];
    for (r, &bc) in tab.basis.iter().enumerate() {
        if bc < n {
            x[bc] = tab.b[r].max(0.0);
        }
    }
    let objective = lp.objective().iter().zip(&x).map(|(c, v)| c * v).sum();
    // Duals from the optimal reduced-cost row: for a unit column `±e_r`
    // with zero raw cost, `r_col = ∓y_r` in the normalized problem; rows
    // flipped during rhs normalization negate once more.
    let duals = (0..m)
        .map(|r| {
            let (col, sign) = dual_probe[r];
            if col == usize::MAX {
                return 0.0;
            }
            let y_norm = -sign * tab.cost[col];
            if lp.constraints()[r].rhs < 0.0 {
                -y_norm
            } else {
                y_norm
            }
        })
        .collect();
    Ok(LpOutcome::Optimal(Solution {
        objective,
        x,
        duals,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearProgram;
    use proptest::prelude::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;

    fn optimal(lp: &LinearProgram) -> Solution {
        match lp.solve().unwrap() {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_two_variable() {
        // min x + y s.t. x + 2y ≥ 4, 3x + y ≥ 6 → x = 1.6, y = 1.2, obj 2.8?
        // Check: intersection of x+2y=4 and 3x+y=6: x=1.6, y=1.2 → obj 2.8.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .geq(vec![1.0, 2.0], 4.0)
            .geq(vec![3.0, 1.0], 6.0);
        let s = optimal(&lp);
        assert!(
            (s.objective() - 2.8).abs() < 1e-8,
            "obj = {}",
            s.objective()
        );
        assert!((s.value(0) - 1.6).abs() < 1e-8);
        assert!((s.value(1) - 1.2).abs() < 1e-8);
    }

    #[test]
    fn maximization_via_negation() {
        // max 3x + 2y s.t. x + y ≤ 4, x ≤ 2 ⇒ min −3x −2y; optimum x=2, y=2.
        let lp = LinearProgram::minimize(vec![-3.0, -2.0])
            .leq(vec![1.0, 1.0], 4.0)
            .leq(vec![1.0, 0.0], 2.0);
        let s = optimal(&lp);
        assert!((s.objective() + 10.0).abs() < 1e-8);
        assert!((s.value(0) - 2.0).abs() < 1e-8);
        assert!((s.value(1) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + 4y s.t. x + y = 3, x ≤ 2 → x=2, y=1, obj 6.
        let lp = LinearProgram::minimize(vec![1.0, 4.0])
            .eq(vec![1.0, 1.0], 3.0)
            .leq(vec![1.0, 0.0], 2.0);
        let s = optimal(&lp);
        assert!((s.objective() - 6.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_box() {
        let lp = LinearProgram::minimize(vec![1.0])
            .geq(vec![1.0], 2.0)
            .leq(vec![1.0], 1.0);
        assert_eq!(lp.solve().unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn infeasible_negative_rhs_le() {
        // x ≤ −1 with x ≥ 0 is infeasible (exercises rhs normalization).
        let lp = LinearProgram::minimize(vec![1.0]).leq(vec![1.0], -1.0);
        assert_eq!(lp.solve().unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_direction() {
        let lp = LinearProgram::minimize(vec![-1.0]).geq(vec![1.0], 1.0);
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn no_constraints_zero_optimum() {
        let lp = LinearProgram::minimize(vec![1.0, 2.0]);
        let s = optimal(&lp);
        assert_eq!(s.objective(), 0.0);
        assert_eq!(s.x(), &[0.0, 0.0]);
    }

    #[test]
    fn no_constraints_negative_cost_unbounded() {
        let lp = LinearProgram::minimize(vec![1.0, -1.0]);
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn covering_relaxation_fractional_optimum() {
        // min x0 + x1, 0.5 x0 + 0.5 x1 ≥ 0.75, x ≤ 1 → x0 + x1 = 1.5.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .geq(vec![0.5, 0.5], 0.75)
            .upper_bounds(1.0);
        let s = optimal(&lp);
        assert!((s.objective() - 1.5).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple identical constraints create degeneracy.
        let lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0])
            .geq(vec![1.0, 1.0, 0.0], 1.0)
            .geq(vec![1.0, 1.0, 0.0], 1.0)
            .geq(vec![1.0, 1.0, 0.0], 1.0)
            .geq(vec![0.0, 1.0, 1.0], 1.0)
            .upper_bounds(1.0);
        let s = optimal(&lp);
        assert!((s.objective() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equality_rows() {
        // Second equality is a copy — phase 1 leaves a redundant row.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .eq(vec![1.0, 1.0], 2.0)
            .eq(vec![1.0, 1.0], 2.0);
        let s = optimal(&lp);
        assert!((s.objective() - 2.0).abs() < 1e-8);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .geq(vec![1.0, 2.0], 4.0)
            .geq(vec![3.0, 1.0], 6.0);
        let err = lp
            .solve_with(&SimplexOptions {
                max_iterations: 1,
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { limit: 1 }));
    }

    /// Brute-force check for tiny covering LPs: sample many feasible points
    /// and verify none beats the reported optimum.
    fn assert_no_sampled_point_beats(lp: &LinearProgram, sol: &Solution, seed: u64) {
        let n = lp.num_vars();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..2000 {
            let candidate: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let feasible = lp.constraints().iter().all(|c| {
                let lhs: f64 = c.coeffs.iter().zip(&candidate).map(|(a, x)| a * x).sum();
                match c.relation {
                    Relation::Le => lhs <= c.rhs + 1e-9,
                    Relation::Ge => lhs >= c.rhs - 1e-9,
                    Relation::Eq => (lhs - c.rhs).abs() < 1e-9,
                }
            });
            if feasible {
                let obj: f64 = lp
                    .objective()
                    .iter()
                    .zip(&candidate)
                    .map(|(c, x)| c * x)
                    .sum();
                assert!(
                    obj >= sol.objective() - 1e-7,
                    "sampled point beats optimum: {obj} < {}",
                    sol.objective()
                );
            }
        }
    }

    #[test]
    fn sampled_points_never_beat_optimum() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0])
            .geq(vec![0.8, 0.3, 0.1], 0.5)
            .geq(vec![0.1, 0.9, 0.4], 0.6)
            .upper_bounds(1.0);
        let s = optimal(&lp);
        assert_no_sampled_point_beats(&lp, &s, 7);
    }

    #[test]
    fn duals_match_textbook_solution() {
        // min x + y s.t. x + 2y ≥ 4, 3x + y ≥ 6: optimum (1.6, 1.2).
        // Duals solve A^T y = c on the active set:
        //   y1 + 3y2 = 1, 2y1 + y2 = 1 → y1 = 0.4, y2 = 0.2.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .geq(vec![1.0, 2.0], 4.0)
            .geq(vec![3.0, 1.0], 6.0);
        let s = optimal(&lp);
        let d = s.duals();
        assert!((d[0] - 0.4).abs() < 1e-8, "duals {d:?}");
        assert!((d[1] - 0.2).abs() < 1e-8);
        // Strong duality: y·b = objective.
        let dual_obj = d[0] * 4.0 + d[1] * 6.0;
        assert!((dual_obj - s.objective()).abs() < 1e-8);
    }

    #[test]
    fn dual_signs_by_relation() {
        // min x s.t. x ≥ 2 (dual ≥ 0 and binding) and x ≤ 5 (slack → 0).
        let lp = LinearProgram::minimize(vec![1.0])
            .geq(vec![1.0], 2.0)
            .leq(vec![1.0], 5.0);
        let s = optimal(&lp);
        assert!(s.duals()[0] >= -1e-9);
        assert!(s.duals()[0] > 0.5); // binding: shadow price 1
        assert!((s.duals()[1]).abs() < 1e-9); // non-binding
    }

    #[test]
    fn equality_dual_strong_duality() {
        let lp = LinearProgram::minimize(vec![1.0, 4.0])
            .eq(vec![1.0, 1.0], 3.0)
            .leq(vec![1.0, 0.0], 2.0);
        let s = optimal(&lp);
        let dual_obj = s.duals()[0] * 3.0 + s.duals()[1] * 2.0;
        assert!((dual_obj - s.objective()).abs() < 1e-8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_random_covering_lp_solution_is_feasible_and_undominated(
            seed in 0u64..500,
            n in 2usize..6,
            k in 1usize..4,
        ) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut lp = LinearProgram::minimize(vec![1.0; n]);
            for _ in 0..k {
                let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
                // rhs ≤ Σ coeffs guarantees feasibility within the unit box.
                let total: f64 = coeffs.iter().sum();
                let rhs = rng.gen_range(0.0..total * 0.9);
                lp = lp.geq(coeffs, rhs);
            }
            lp = lp.upper_bounds(1.0);
            let s = match lp.solve().unwrap() {
                LpOutcome::Optimal(s) => s,
                other => return Err(TestCaseError::fail(format!("not optimal: {other:?}"))),
            };
            // Feasibility of the reported point.
            for c in lp.constraints() {
                let lhs: f64 = c.coeffs.iter().zip(s.x()).map(|(a, x)| a * x).sum();
                match c.relation {
                    Relation::Ge => prop_assert!(lhs >= c.rhs - 1e-7),
                    Relation::Le => prop_assert!(lhs <= c.rhs + 1e-7),
                    Relation::Eq => prop_assert!((lhs - c.rhs).abs() < 1e-7),
                }
            }
            // Undominated by random sampling.
            assert_no_sampled_point_beats(&lp, &s, seed ^ 0xABCD);
            // Strong duality and dual sign feasibility.
            let duals = s.duals();
            let dual_obj: f64 = lp
                .constraints()
                .iter()
                .zip(duals)
                .map(|(c, y)| c.rhs * y)
                .sum();
            prop_assert!(
                (dual_obj - s.objective()).abs() < 1e-6,
                "strong duality violated: {dual_obj} vs {}",
                s.objective()
            );
            for (c, &y) in lp.constraints().iter().zip(duals) {
                match c.relation {
                    Relation::Ge => prop_assert!(y >= -1e-7),
                    Relation::Le => prop_assert!(y <= 1e-7),
                    Relation::Eq => {}
                }
            }
        }
    }
}
