//! Problem construction: objective, constraints, validation.

use crate::simplex::{solve_two_phase, LpOutcome, SimplexOptions};
use crate::LpError;

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ a_i x_i ≤ b`
    Le,
    /// `Σ a_i x_i ≥ b`
    Ge,
    /// `Σ a_i x_i = b`
    Eq,
}

/// One linear constraint with dense coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Dense coefficient row (length = number of variables).
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program in minimization form over non-negative variables.
///
/// All variables are implicitly constrained to `x ≥ 0`; upper bounds (such
/// as the `x ≤ 1` box of a relaxed 0/1 program) are expressed as ordinary
/// `≤` constraints via [`LinearProgram::leq`] or
/// [`LinearProgram::upper_bounds`].
///
/// # Examples
///
/// ```
/// use mcs_lp::{LinearProgram, LpOutcome};
///
/// // Relaxation of a tiny covering problem.
/// let lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0])
///     .geq(vec![0.6, 0.0, 0.4], 0.8)
///     .geq(vec![0.0, 0.5, 0.5], 0.5)
///     .upper_bounds(1.0);
/// let outcome = lp.solve().unwrap();
/// assert!(matches!(outcome, LpOutcome::Optimal(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Starts a program minimizing `objective · x`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective coefficients.
    #[inline]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows.
    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint with an explicit relation.
    pub fn constraint(mut self, coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Self {
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        self
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn leq(self, coeffs: Vec<f64>, rhs: f64) -> Self {
        self.constraint(coeffs, Relation::Le, rhs)
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn geq(self, coeffs: Vec<f64>, rhs: f64) -> Self {
        self.constraint(coeffs, Relation::Ge, rhs)
    }

    /// Adds `coeffs · x = rhs`.
    pub fn eq(self, coeffs: Vec<f64>, rhs: f64) -> Self {
        self.constraint(coeffs, Relation::Eq, rhs)
    }

    /// Adds `x_i ≤ bound` for every variable.
    pub fn upper_bounds(mut self, bound: f64) -> Self {
        let n = self.num_vars();
        for i in 0..n {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            self.constraints.push(Constraint {
                coeffs,
                relation: Relation::Le,
                rhs: bound,
            });
        }
        self
    }

    /// Validates dimensions and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] or
    /// [`LpError::NonFiniteCoefficient`].
    pub fn validate(&self) -> Result<(), LpError> {
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFiniteCoefficient {
                location: "objective",
            });
        }
        for (idx, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != self.num_vars() {
                return Err(LpError::DimensionMismatch {
                    constraint: idx,
                    num_vars: self.num_vars(),
                    row_len: c.coeffs.len(),
                });
            }
            if c.coeffs.iter().any(|v| !v.is_finite()) || !c.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    location: "constraint",
                });
            }
        }
        Ok(())
    }

    /// Solves with default options.
    ///
    /// # Errors
    ///
    /// Returns validation errors or [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves with explicit options.
    ///
    /// # Errors
    ///
    /// Returns validation errors or [`LpError::IterationLimit`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<LpOutcome, LpError> {
        self.validate()?;
        solve_two_phase(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_constraints() {
        let lp = LinearProgram::minimize(vec![1.0, 2.0])
            .geq(vec![1.0, 0.0], 1.0)
            .leq(vec![0.0, 1.0], 2.0)
            .eq(vec![1.0, 1.0], 2.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 3);
        assert_eq!(lp.constraints()[0].relation, Relation::Ge);
        assert_eq!(lp.constraints()[1].relation, Relation::Le);
        assert_eq!(lp.constraints()[2].relation, Relation::Eq);
    }

    #[test]
    fn upper_bounds_adds_identity_rows() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0]).upper_bounds(1.0);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.constraints()[0].coeffs, vec![1.0, 0.0]);
        assert_eq!(lp.constraints()[1].coeffs, vec![0.0, 1.0]);
    }

    #[test]
    fn validate_rejects_bad_rows() {
        let lp = LinearProgram::minimize(vec![1.0, 1.0]).geq(vec![1.0], 1.0);
        assert!(matches!(
            lp.validate(),
            Err(LpError::DimensionMismatch { .. })
        ));
        let lp = LinearProgram::minimize(vec![f64::NAN]);
        assert!(matches!(
            lp.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
        let lp = LinearProgram::minimize(vec![1.0]).geq(vec![f64::INFINITY], 1.0);
        assert!(matches!(
            lp.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }
}
