//! A dense two-phase primal simplex solver for linear programs.
//!
//! This crate is the linear-algebra substrate underneath `mcs-ilp`'s
//! branch-and-bound: the paper solves the TPM covering integer program with
//! GUROBI, and we replace GUROBI with our own exact stack. The LP relaxation
//! of a TPM node is
//!
//! ```text
//! minimize    Σ x_i
//! subject to  Σ_i q_ij · x_i ≥ Q_j      for every task j
//!             x_i ≤ 1                   for every worker i
//!             x_i ≥ 0
//! ```
//!
//! which this crate solves via the classic two-phase tableau method:
//! phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution, phase 2 minimizes the real objective. Entering
//! variables use Dantzig's rule with an automatic switch to Bland's rule
//! after a stall, which guarantees termination on degenerate problems.
//!
//! The solver is dense and tableau-based — simple, auditable, and fast
//! enough for the instance sizes where the paper runs its optimal baseline
//! (N ≤ 140 workers, K ≤ 50 tasks).
//!
//! # Examples
//!
//! ```
//! use mcs_lp::{LinearProgram, LpOutcome};
//!
//! // minimize x + y  s.t.  x + 2y ≥ 4,  3x + y ≥ 6
//! let lp = LinearProgram::minimize(vec![1.0, 1.0])
//!     .geq(vec![1.0, 2.0], 4.0)
//!     .geq(vec![3.0, 1.0], 6.0);
//! match lp.solve().unwrap() {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective() - 2.8).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;

pub use error::LpError;
pub use problem::{Constraint, LinearProgram, Relation};
pub use simplex::{LpOutcome, SimplexOptions, Solution};
