//! Smoke coverage for the WAL-image fuzzer, plus the (ignored) corpus
//! regenerator that produced the checked-in `tests/corpus/wal_*.bin`
//! files.

use mcs_verify::fuzz::{build_wal_image, run_wal_fuzz, wal_builtin_corpus};

/// A short seeded run violates no recovery invariant. CI runs the long
/// version through `wire_fuzz --target wal --iters 2000`.
#[test]
fn wal_fuzz_short_run_is_clean() {
    let outcome = run_wal_fuzz(300, 42);
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(outcome.executed, 300 + wal_builtin_corpus().len() as u64);
    assert!(outcome.recovered > 0);
    assert!(outcome.rejected > 0);
}

/// Every checked-in corpus file is a real WAL-shaped image, not a stale
/// placeholder: the valid one recovers, the damaged ones exercise the
/// exact defect their name claims.
#[test]
fn checked_in_corpus_matches_the_live_format() {
    use mcs_service::{recover_from_bytes, TailDefect, WalError};

    let corpus = wal_builtin_corpus();
    // Index order mirrors WAL_SEED_CORPUS in src/fuzz.rs.
    let (valid, header_only, torn, bad_crc, bad_magic, oversized, dup_lsn) = (
        &corpus[0], &corpus[1], &corpus[2], &corpus[3], &corpus[4], &corpus[5], &corpus[6],
    );

    let (ledger, scan) = recover_from_bytes(valid).expect("frozen valid image recovers");
    assert!(scan.defect.is_none());
    assert_eq!(ledger.total_rounds(), 2);
    let full_frames = scan.frames.len();

    let (_, scan) = recover_from_bytes(header_only).expect("bare header recovers");
    assert!(scan.frames.is_empty() && scan.defect.is_none());

    let (_, scan) = recover_from_bytes(torn).expect("torn tail recovers");
    assert!(matches!(scan.defect, Some(TailDefect::Torn { .. })));

    let (_, scan) = recover_from_bytes(bad_crc).expect("crc damage recovers");
    assert!(matches!(scan.defect, Some(TailDefect::BadChecksum { .. })));
    assert!(scan.frames.len() < full_frames);

    assert!(matches!(
        recover_from_bytes(bad_magic),
        Err(WalError::BadMagic)
    ));

    let (_, scan) = recover_from_bytes(oversized).expect("oversized length recovers");
    assert!(matches!(
        scan.defect,
        Some(TailDefect::OversizedFrame { .. })
    ));

    let (_, scan) = recover_from_bytes(dup_lsn).expect("duplicate lsn recovers");
    assert!(matches!(
        scan.defect,
        Some(TailDefect::NonMonotonicLsn { .. })
    ));
}

/// Regenerates the checked-in corpus from the live format. Run manually
/// after an intentional format change:
///
/// ```text
/// cargo test -p mcs-verify --test wal_fuzz_smoke -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes into tests/corpus; run by hand after a format change"]
fn regenerate_wal_corpus() {
    use mcs_service::{scan_bytes, WAL_HEADER_LEN};
    use std::path::Path;

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let golden = build_wal_image();
    let scan = scan_bytes(&golden).expect("golden image scans");
    assert!(scan.frames.len() >= 3);

    std::fs::write(dir.join("wal_valid.bin"), &golden).expect("write valid");
    std::fs::write(
        dir.join("wal_header_only.bin"),
        &golden[..WAL_HEADER_LEN as usize],
    )
    .expect("write header-only");

    // Torn tail: cut the last frame in half.
    let last_start = scan.boundaries[scan.boundaries.len() - 2] as usize;
    let torn_at = last_start + (golden.len() - last_start) / 2;
    std::fs::write(dir.join("wal_torn_tail.bin"), &golden[..torn_at]).expect("write torn");

    // CRC damage: flip one payload byte of the middle frame.
    let mut bad_crc = golden.clone();
    let mid_start = scan.boundaries[scan.boundaries.len() / 2] as usize;
    bad_crc[mid_start + 20] ^= 0x40;
    std::fs::write(dir.join("wal_bad_crc.bin"), &bad_crc).expect("write bad crc");

    // Wrong magic.
    let mut bad_magic = golden.clone();
    bad_magic[..8].copy_from_slice(b"NOTAWAL!");
    std::fs::write(dir.join("wal_bad_magic.bin"), &bad_magic).expect("write bad magic");

    // Oversized length field on the second frame.
    let mut oversized = golden.clone();
    let second_start = scan.boundaries[1] as usize;
    oversized[second_start..second_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(dir.join("wal_oversized_len.bin"), &oversized).expect("write oversized");

    // Non-monotonic LSN: repeat the first frame verbatim after itself.
    let first_end = scan.boundaries[1] as usize;
    let mut dup = golden[..first_end].to_vec();
    dup.extend_from_slice(&golden[WAL_HEADER_LEN as usize..first_end]);
    std::fs::write(dir.join("wal_dup_lsn.bin"), &dup).expect("write dup lsn");
}
