//! Deterministic statistical ε-DP checks for three (ε, instance-shape)
//! configurations, plus exact-DP and truthfulness coverage on the same
//! instances.
//!
//! Everything is seeded: the instances, the neighbour choices, and the
//! sampling streams, so a failure here reproduces bit-for-bit.

use mcs_verify::dp::{exact_dp_check, statistical_dp_check, truthfulness_probe};
use mcs_verify::gen::{generate, Shape};

/// Normal quantile for the Wilson intervals; two-sided tail ≈ 1e-4 per
/// price, so a correct sampler essentially never trips by chance.
const Z: f64 = 3.89;
const SAMPLES: u64 = 20_000;

#[test]
fn statistical_dp_tight_epsilon_uniform() {
    let instance = generate(Shape::Uniform, 101);
    let report = statistical_dp_check(&instance, 0.2, SAMPLES, 101, Z)
        .expect("sampled PMFs must be consistent with ε = 0.2");
    assert!(report.consistent);
    assert!(report.support > 0);
    // The empirical ratio can exceed the *analytic* ε through sampling
    // noise (that is what the Wilson test absorbs), but not by much at
    // this sample size.
    assert!(
        report.empirical_epsilon < 1.0,
        "empirical ε̂ = {} implausibly large for ε = 0.2",
        report.empirical_epsilon
    );
}

#[test]
fn statistical_dp_mid_epsilon_tied_prices() {
    let instance = generate(Shape::TiedPrices, 202);
    let report = statistical_dp_check(&instance, 0.5, SAMPLES, 202, Z)
        .expect("sampled PMFs must be consistent with ε = 0.5");
    assert!(report.consistent);
    assert!(report.support > 0);
}

#[test]
fn statistical_dp_loose_epsilon_skewed_skills() {
    let instance = generate(Shape::SkewedSkills, 303);
    let report = statistical_dp_check(&instance, 1.0, SAMPLES, 303, Z)
        .expect("sampled PMFs must be consistent with ε = 1.0");
    assert!(report.consistent);
    assert!(report.support > 0);
}

#[test]
fn exact_dp_holds_on_every_feasible_shape() {
    for (shape, seed) in [
        (Shape::Uniform, 11u64),
        (Shape::SkewedSkills, 12),
        (Shape::DegenerateBundles, 13),
        (Shape::TiedPrices, 14),
    ] {
        for epsilon in [0.1, 0.5, 2.0] {
            let instance = generate(shape, seed);
            let stats = exact_dp_check(&instance, epsilon, seed)
                .unwrap_or_else(|m| panic!("{} ε={epsilon}: {m}", shape.name()));
            assert!(stats.checked > 0, "{} checked nothing", shape.name());
            assert!(stats.max_log_ratio <= epsilon + 1e-9);
        }
    }
}

#[test]
fn truthfulness_price_channel_bounded_on_every_feasible_shape() {
    for (shape, seed) in [
        (Shape::Uniform, 21u64),
        (Shape::SkewedSkills, 22),
        (Shape::DegenerateBundles, 23),
        (Shape::TiedPrices, 24),
    ] {
        let instance = generate(shape, seed);
        let stats = truthfulness_probe(&instance, 0.5, seed)
            .unwrap_or_else(|m| panic!("{}: {m}", shape.name()));
        assert!(stats.probes > 0, "{} probed nothing", shape.name());
        assert!(stats.max_price_channel_gain <= stats.price_channel_bound + 1e-9);
    }
}
