//! Bounded differential sweep: every shape, many seeds, all invariants.
//!
//! The `verify_sweep` binary runs the full-scale version; this test
//! keeps CI's `cargo test` fast while still covering each shape × seed
//! lattice deterministically.

use mcs_verify::differential::{check_instance, DiffStats};
use mcs_verify::gen::{generate, Shape};

#[test]
fn differential_invariants_hold_across_shapes_and_seeds() {
    let mut total = DiffStats::default();
    for seed in 0..60u64 {
        for shape in Shape::SMALL {
            let instance = generate(shape, seed);
            let stats =
                check_instance(shape, seed, &instance).unwrap_or_else(|report| panic!("{report}"));
            total.merge(&stats);
        }
    }
    // 60 seeds × 5 feasible shapes succeed (uncertain-tasks runs on its
    // chance-inflated quotas), 60 infeasible ones agree on the error,
    // and every feasible instance got its ILP ratio checked.
    assert_eq!(total.agreed_ok, 300);
    assert_eq!(total.agreed_err, 60);
    assert_eq!(total.ilp_checked, 300);
    assert!(
        total.max_ratio <= total.max_bound + 1e-9,
        "worst ratio {} above worst bound {}",
        total.max_ratio,
        total.max_bound
    );
}

#[test]
fn large_sparse_invariants_hold_on_sized_instances() {
    // The full-size large-sparse shape runs in the release-mode
    // `verify_sweep`; here a smaller sized variant keeps debug CI fast
    // while still driving all five engines over CSR-heavy instances.
    let mut total = DiffStats::default();
    for seed in 0..4u64 {
        let instance = mcs_verify::gen::large_sparse_sized(1_200, seed);
        let stats = check_instance(Shape::LargeSparse, seed, &instance)
            .unwrap_or_else(|report| panic!("{report}"));
        total.merge(&stats);
    }
    assert_eq!(total.agreed_ok, 4);
    // Above the task-count gate the ILP sanity check never runs.
    assert_eq!(total.ilp_checked, 0);
}

#[test]
fn greedy_never_beats_the_proven_optimum() {
    // The ratio is ≥ 1 by definition of optimality; a value below 1
    // would mean the ILP "optimum" is not optimal (or the greedy winner
    // set is infeasible and the covering check missed it).
    let mut worst = f64::INFINITY;
    for seed in 100..140u64 {
        let instance = generate(Shape::Uniform, seed);
        let stats = check_instance(Shape::Uniform, seed, &instance)
            .unwrap_or_else(|report| panic!("{report}"));
        if stats.ilp_checked > 0 {
            worst = worst.min(stats.max_ratio);
        }
    }
    assert!(worst >= 1.0, "greedy ratio {worst} below 1");
}
