//! Bounded fuzz run in `cargo test`: corpus + 500 seeded mutations.
//! The `wire_fuzz` binary runs the longer CI version.

use mcs_verify::fuzz::run_fuzz;

#[test]
fn decoder_survives_corpus_and_mutations() {
    let outcome = run_fuzz(500, 42);
    assert!(
        outcome.clean(),
        "decoder panicked or round-tripped unstably: {outcome:?}"
    );
    assert_eq!(
        outcome.executed,
        500 + 20,
        "corpus (12 seed + 8 synthesized) + mutations"
    );
    assert!(outcome.accepted > 0, "some inputs must decode");
    assert!(outcome.rejected > 0, "some inputs must reject");
}

#[test]
fn different_seeds_explore_different_inputs() {
    let a = run_fuzz(300, 1);
    let b = run_fuzz(300, 2);
    assert!(a.clean() && b.clean());
    // Not a hard guarantee, but with 300 random mutations the accept
    // counts coinciding for different seeds would be suspicious enough
    // to look at the RNG plumbing.
    assert!(
        a.accepted != b.accepted || a.rejected != b.rejected,
        "seeds 1 and 2 produced identical outcome profiles: {a:?}"
    );
}
