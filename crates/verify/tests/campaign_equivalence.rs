//! Campaign-lifecycle differential: the refactored engine against the
//! legacy loop, across every winner-determination strategy and both
//! mechanisms.
//!
//! The refactor's byte-identity claim must hold whatever schedule engine
//! fills the winner sets, because strategy equivalence and campaign
//! equivalence compose: each (strategy, mechanism) pair runs the full
//! legacy oracle and the lifecycle engine from the same seed and demands
//! identical reports and an identical RNG stream position afterwards.

use rand::Rng;

use mcs_auction::{BaselineAuction, DpHsrcAuction, Strategy};
use mcs_num::rng;
use mcs_sim::campaign::{
    run_campaign, AdversaryGroup, AdversaryPlan, AdversaryStrategy, CampaignSpec, SkillSource,
};
use mcs_verify::campaign::{check_adversarial, check_equivalence, truthful_types};
use mcs_verify::gen::{generate, Shape};

/// Privacy budgets cycled across seeds.
const EPSILONS: [f64; 3] = [0.1, 0.5, 2.0];

/// ≥ 100 seeds, cycling the full (strategy × mechanism × skill-source)
/// matrix: with 7 strategies and 2 mechanisms each combination is hit by
/// 8 different seeds, half with known and half with re-estimated skills.
#[test]
fn benign_campaigns_match_legacy_across_strategies_and_mechanisms() {
    let configs = Strategy::ALL.len() * 2;
    let seeds = 8 * configs as u64; // 112
    for seed in 0..seeds {
        let strategy = Strategy::ALL[seed as usize % Strategy::ALL.len()];
        let use_baseline = (seed as usize / Strategy::ALL.len()) % 2 == 1;
        let reestimate = (seed / configs as u64) % 2 == 1;
        let epsilon = EPSILONS[seed as usize % EPSILONS.len()];
        let instance = generate(Shape::AdversarialCampaign, seed);
        let result = if use_baseline {
            let mechanism = BaselineAuction::new(epsilon)
                .expect("valid ε")
                .with_strategy(strategy);
            check_equivalence(&mechanism, reestimate, &instance, seed)
        } else {
            let mechanism = DpHsrcAuction::new(epsilon)
                .expect("valid ε")
                .with_strategy(strategy);
            check_equivalence(&mechanism, reestimate, &instance, seed)
        };
        result.unwrap_or_else(|m| {
            panic!(
                "seed {seed} ({:?}, {}, {} skills, ε = {epsilon}): {m}",
                strategy,
                if use_baseline { "baseline" } else { "dp-hsrc" },
                if reestimate { "re-estimated" } else { "known" },
            )
        });
    }
}

/// The audited adversarial campaign holds its ε-DP price-channel
/// guarantee under both mechanisms.
#[test]
fn adversarial_audit_passes_under_both_mechanisms() {
    for seed in 0..8u64 {
        let instance = generate(Shape::AdversarialCampaign, seed);
        let epsilon = EPSILONS[seed as usize % EPSILONS.len()];
        let dp = DpHsrcAuction::new(epsilon).expect("valid ε");
        check_adversarial(&dp, &instance, seed)
            .unwrap_or_else(|m| panic!("seed {seed} dp-hsrc: {m}"));
        let baseline = BaselineAuction::new(epsilon).expect("valid ε");
        check_adversarial(&baseline, &instance, seed)
            .unwrap_or_else(|m| panic!("seed {seed} baseline: {m}"));
    }
}

/// A benign spec run through the public `run_campaign` with each
/// strategy produces the *same* outcome as the default strategy: the
/// winner-determination strategy is a cost profile, never a behaviour
/// change, even across a full multi-round campaign.
#[test]
fn strategies_are_outcome_invisible_across_a_campaign() {
    for seed in 0..6u64 {
        let instance = generate(Shape::AdversarialCampaign, seed);
        let types = truthful_types(&instance);
        let spec = CampaignSpec::benign(3);
        let reference = {
            let mechanism = DpHsrcAuction::new(0.5).expect("valid ε");
            let mut r = rng::derived(seed, 0x51);
            run_campaign(&spec, &mechanism, &instance, &types, &mut r).expect("campaign runs")
        };
        for strategy in Strategy::ALL {
            let mechanism = DpHsrcAuction::new(0.5)
                .expect("valid ε")
                .with_strategy(strategy);
            let mut r = rng::derived(seed, 0x51);
            let outcome =
                run_campaign(&spec, &mechanism, &instance, &types, &mut r).expect("campaign runs");
            assert_eq!(outcome, reference, "seed {seed} strategy {strategy:?}");
        }
    }
}

/// Sleeper rings are benign until their turn round: a campaign whose
/// sleeper never wakes (honest_rounds ≥ rounds) is byte-identical to a
/// campaign with no adversaries at all, and both leave the main RNG in
/// the same position — the adversary machinery draws only from its own
/// derived streams while dormant.
#[test]
fn dormant_sleepers_are_byte_invisible() {
    for seed in 0..10u64 {
        let instance = generate(Shape::AdversarialCampaign, seed);
        let types = truthful_types(&instance);
        let mechanism = DpHsrcAuction::new(0.5).expect("valid ε");
        let benign = CampaignSpec::benign(3);
        let dormant = CampaignSpec {
            adversaries: AdversaryPlan {
                groups: vec![AdversaryGroup {
                    members: vec![mcs_types::WorkerId(0), mcs_types::WorkerId(1)],
                    strategy: AdversaryStrategy::Sleeper { honest_rounds: 3 },
                }],
                seed,
            },
            ..CampaignSpec::benign(3)
        };
        let mut r_benign = rng::derived(seed, 0x52);
        let mut r_dormant = rng::derived(seed, 0x52);
        let a = run_campaign(&benign, &mechanism, &instance, &types, &mut r_benign)
            .expect("benign campaign runs");
        let b = run_campaign(&dormant, &mechanism, &instance, &types, &mut r_dormant)
            .expect("dormant campaign runs");
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(
            r_benign.gen::<u64>(),
            r_dormant.gen::<u64>(),
            "seed {seed}: RNG streams diverged"
        );
    }
}

/// Re-estimated skills genuinely change the campaign (the differential
/// would be vacuous if `SkillSource::RefitEachRound` collapsed onto
/// `Known`): across a pool of seeds, at least one campaign must differ
/// between the two sources.
#[test]
fn skill_sources_are_not_vacuously_identical() {
    let mechanism = DpHsrcAuction::new(0.5).expect("valid ε");
    let mut any_differ = false;
    for seed in 0..10u64 {
        let instance = generate(Shape::AdversarialCampaign, seed);
        let types = truthful_types(&instance);
        let known = CampaignSpec::benign(3);
        let refit = CampaignSpec {
            skills: SkillSource::RefitEachRound,
            ..CampaignSpec::benign(3)
        };
        let mut r1 = rng::derived(seed, 0x53);
        let mut r2 = rng::derived(seed, 0x53);
        let a = run_campaign(&known, &mechanism, &instance, &types, &mut r1).expect("runs");
        let b = run_campaign(&refit, &mechanism, &instance, &types, &mut r2).expect("runs");
        if a.rounds != b.rounds || a.final_skill_error != b.final_skill_error {
            any_differ = true;
            break;
        }
    }
    assert!(
        any_differ,
        "re-estimated campaigns never diverged from known-skill campaigns"
    );
}
