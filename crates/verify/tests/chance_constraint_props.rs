//! Property-based tests of the chance-constrained coverage layer.
//!
//! The Chernoff quota `R = Q + L + √(L² + 2LQ)` (with `L = ln(1/γ)`)
//! must behave like a robustness knob: strictly above the base quota,
//! monotone in both the base quota and the shortfall budget, and an
//! exact inverse of the analytic shortfall bound. On whole instances,
//! per-entry completion probabilities must act monotonically on the
//! effective coverage weights, and the `p = 1` degenerate model must be
//! observationally identical to the deterministic path for **every**
//! strategy — the invariant that lets all prior digests, payments, and
//! cache keys survive the uncertain layer unchanged.

use proptest::prelude::*;

use mcs_types::{
    chance_quota, chernoff_shortfall_bound, BernoulliCompletion, CompletionModel, CoverageView,
    TaskId,
};
use mcs_verify::chance::check_unit_reduction;
use mcs_verify::gen::{generate, Shape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tightening the budget (smaller γ) never shrinks the quota, and
    /// the quota always sits strictly above the base requirement.
    #[test]
    fn quota_is_monotone_in_gamma(
        base in 1e-3f64..20.0,
        g_lo in 1e-6f64..0.9,
        bump in 1e-6f64..0.09,
    ) {
        let g_hi = g_lo + bump;
        let tight = chance_quota(base, g_lo);
        let loose = chance_quota(base, g_hi);
        prop_assert!(tight >= loose, "tight {tight} < loose {loose}");
        prop_assert!(loose > base, "quota {loose} must exceed base {base}");
    }

    /// A larger base quota never shrinks the inflated quota, and the
    /// inflation term `R − Q` itself never shrinks either (the absolute
    /// headroom the winners must buy grows with the quota).
    #[test]
    fn quota_is_monotone_in_base(
        base in 1e-3f64..20.0,
        bump in 1e-6f64..10.0,
        gamma in 1e-6f64..0.999,
    ) {
        let small = chance_quota(base, gamma);
        let large = chance_quota(base + bump, gamma);
        prop_assert!(large >= small);
        prop_assert!(large - (base + bump) >= small - base - 1e-9);
    }

    /// The quota is the exact inverse of the analytic Chernoff bound:
    /// covering exactly `R` discounted units yields shortfall
    /// probability bound exactly γ.
    #[test]
    fn quota_inverts_the_shortfall_bound(
        base in 1e-3f64..20.0,
        gamma in 1e-4f64..0.999,
    ) {
        let r = chance_quota(base, gamma);
        let back = chernoff_shortfall_bound(r, base);
        prop_assert!((back - gamma).abs() < 1e-9, "γ {gamma} round-tripped to {back}");
    }

    /// Raising every completion probability toward 1 raises every
    /// effective coverage weight and never raises any requirement: more
    /// reliable workers make the chance-constrained problem easier,
    /// entrywise.
    #[test]
    fn effective_problem_is_monotone_in_p(seed in 0u64..50, t in 0.1f64..1.0) {
        let inst = generate(Shape::UncertainTasks, seed);
        let CompletionModel::Bernoulli(b) = inst.completion() else {
            panic!("uncertain-tasks instances carry a Bernoulli model");
        };
        // p' = p + t·(1 − p) ∈ [p, 1): pointwise at least as reliable.
        let raised: Vec<Vec<(TaskId, f64)>> = b
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(task, p)| (task, (p + t * (1.0 - p)).min(1.0 - 1e-9)))
                    .collect()
            })
            .collect();
        let raised_model = CompletionModel::Bernoulli(BernoulliCompletion::new(
            raised,
            b.gammas().to_vec(),
        ));
        let easier = inst.with_completion(raised_model).expect("raised model is valid");

        let before = inst.sparse_coverage();
        let after = easier.sparse_coverage();
        for w in 0..before.num_workers() {
            for ((t_a, q_a), (t_b, q_b)) in before.row(w).zip(after.row(w)) {
                prop_assert_eq!(t_a, t_b);
                prop_assert!(q_b >= q_a - 1e-12, "worker {w} task {t_a}: {q_b} < {q_a}");
            }
        }
        for j in 0..inst.num_tasks() {
            let task = TaskId(j as u32);
            prop_assert!(after.requirement(task) <= before.requirement(task) + 1e-12);
        }
    }

    /// The degenerate reduction, property-swept: for any feasible shape
    /// and seed, rewriting all probabilities to 1 and dropping the model
    /// entirely are observationally identical across every strategy and
    /// selection rule (schedules, payments, digests).
    #[test]
    fn unit_probabilities_reduce_to_deterministic(
        shape_idx in 0usize..Shape::SMALL.len(),
        seed in 0u64..200,
    ) {
        let shape = Shape::SMALL[shape_idx];
        let inst = generate(shape, seed);
        if let Err(report) = check_unit_reduction(shape, seed, &inst) {
            prop_assert!(false, "{report}");
        }
    }
}

/// Pinned regression: tightening every task's shortfall budget never
/// makes the cheapest schedule entry cheaper.
///
/// The ladder interpolates in log-space toward the generated budget,
/// `γ_j(t) = γ_j^t` for `t ∈ {0.2, 0.4, 0.6, 0.8, 1.0}` — i.e.
/// `L_j(t) = t·L_j`, so every rung stays within the generator's
/// feasibility headroom and `t = 1` recovers the instance verbatim.
/// Greedy winner sets are not monotone in the requirements as a theorem,
/// so this pins 40 seeds that were observed monotone; a regression here
/// means the engine started buying robustness for free (or charging for
/// nothing), either of which deserves a close look.
#[test]
fn tightening_gamma_never_decreases_min_total_payment() {
    use mcs_auction::{ScheduleEngine, SelectionRule};

    const LADDER: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
    for seed in 0..40u64 {
        let inst = generate(Shape::UncertainTasks, seed);
        let CompletionModel::Bernoulli(b) = inst.completion() else {
            panic!("uncertain-tasks instances carry a Bernoulli model");
        };
        let mut prev = None;
        for t in LADDER {
            let gammas: Vec<f64> = b
                .gammas()
                .iter()
                .map(|g| g.powf(t).clamp(1e-9, 1.0 - 1e-9))
                .collect();
            let model =
                CompletionModel::Bernoulli(BernoulliCompletion::new(b.rows().to_vec(), gammas));
            let rung = inst
                .with_completion(model)
                .expect("rescaled model is valid");
            let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
                .build(&rung)
                .unwrap_or_else(|e| panic!("seed {seed} t {t}: ladder rung infeasible: {e}"));
            let payment = schedule
                .min_total_payment()
                .expect("feasible schedules are non-empty");
            if let Some(prev) = prev {
                assert!(
                    payment >= prev,
                    "seed {seed} t {t}: tightening gamma lowered the premium {prev:?} -> {payment:?}"
                );
            }
            prev = Some(payment);
        }
    }
}
