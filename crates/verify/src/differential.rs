//! Differential testing of every schedule strategy against the others
//! and against the exact ILP optimum.
//!
//! The strategies share an *intended* contract — identical winner
//! sequences at every grid price, tie-breaking included — but share as
//! little code as their implementations allow (the naive reference
//! recomputes every price independently; the incremental engine sweeps
//! ascending price intervals reusing residual state; the indexed engine
//! walks one global rank order with challenger replay). Because the
//! engines are now enumerable data ([`Strategy::ALL`]) rather than a
//! hand-maintained list of function names, a strategy added to the core
//! crate is compared here automatically. This module asserts, per
//! instance:
//!
//! 1. **Engine agreement** — every [`Strategy`] produces equal
//!    [`PriceSchedule`]s under both selection rules, or all fail with the
//!    same error kind. Above [`SCALABLE_ONLY_ABOVE`] workers only
//!    [`Strategy::SCALABLE`] runs: the eager/naive/dense references are
//!    quadratic (or dense) in the pool and would dominate the sweep.
//! 2. **Covering invariants** — every winner set satisfies
//!    `Σ q_ij ≥ Q'_j` on all tasks, every winner's bid is at or below
//!    the posted price, and prices ascend along the schedule.
//! 3. **Approximation ratio** — at the top grid price (where the
//!    candidate pool is the full worker set) the greedy cardinality is
//!    within the paper's `2βH_m` factor of the exact ILP optimum, and
//!    never below it. Skipped above [`RATIO_TASK_LIMIT`] tasks (or
//!    [`RATIO_WORKER_LIMIT`] workers) so the scaling shapes never drive
//!    the dense simplex/branch-and-bound.
//!
//! Failures shrink through [`minimize`] before being reported.

use mcs_auction::{PriceSchedule, ScheduleEngine, SelectionRule, Strategy};
use mcs_ilp::{solve_exhaustive, BnbOptions, CoveringIlp, IlpStatus};
use mcs_sim::experiments::harmonic;
use mcs_types::{Bid, Bundle, CoverageView, Instance, McsError, SkillMatrix, TaskId, WorkerId};

use crate::gen::Shape;
use crate::report::CounterexampleReport;

/// Workers at or below this count go to exhaustive subset enumeration;
/// larger pools use branch-and-bound.
const EXHAUSTIVE_LIMIT: usize = 12;
/// Task counts above this skip the ILP ratio check: the LP relaxation
/// carries one row per unmet task, so a large-sparse instance would turn
/// the sanity check into the bottleneck the sparse core exists to avoid.
const RATIO_TASK_LIMIT: usize = 64;
/// Worker counts above this skip the ILP ratio check: branch-and-bound
/// over thousands of binary variables would never close the gap.
const RATIO_WORKER_LIMIT: usize = 256;
/// Worker counts above this restrict the agreement check to
/// [`Strategy::SCALABLE`]: the eager/naive rescans are quadratic in the
/// pool and the dense path materializes `N × K` cells, so on the
/// many-workers shape they would be the bottleneck, not the subject.
const SCALABLE_ONLY_ABOVE: usize = 256;
/// Worker counts above this skip the one-at-a-time shrinking pass, which
/// is quadratic in the pool size; the unshrunk instance is reported.
const MINIMIZE_WORKER_LIMIT: usize = 512;
/// Slack for floating-point comparisons on coverage and ratios.
const TOL: f64 = 1e-9;

/// Aggregate statistics over a sweep of differential checks.
#[derive(Debug, Clone, Default)]
pub struct DiffStats {
    /// Instances where all engines agreed on a feasible schedule.
    pub agreed_ok: u64,
    /// Instances where all engines agreed on the same error kind.
    pub agreed_err: u64,
    /// Instances where the ILP ratio check ran (feasible only).
    pub ilp_checked: u64,
    /// Largest observed greedy/optimal cardinality ratio.
    pub max_ratio: f64,
    /// Largest observed `2βH_m` bound (context for `max_ratio`).
    pub max_bound: f64,
}

impl DiffStats {
    /// Folds another batch of statistics into this one.
    pub fn merge(&mut self, other: &DiffStats) {
        self.agreed_ok += other.agreed_ok;
        self.agreed_err += other.agreed_err;
        self.ilp_checked += other.ilp_checked;
        self.max_ratio = self.max_ratio.max(other.max_ratio);
        self.max_bound = self.max_bound.max(other.max_bound);
    }
}

/// Runs every differential check on one instance. On failure the
/// instance is minimized and wrapped in a report.
///
/// # Errors
///
/// Returns the minimized [`CounterexampleReport`] for the first failing
/// invariant.
pub fn check_instance(
    shape: Shape,
    seed: u64,
    instance: &Instance,
) -> Result<DiffStats, Box<CounterexampleReport>> {
    match failure(instance) {
        None => Ok(stats_for(instance)),
        Some((check, detail)) => {
            let minimized = minimize(instance.clone(), &check);
            Err(Box::new(CounterexampleReport {
                shape: shape.name(),
                seed,
                check,
                detail,
                instance: minimized,
            }))
        }
    }
}

/// Returns `(check, detail)` for the first violated invariant, if any.
fn failure(instance: &Instance) -> Option<(String, String)> {
    let strategies: &[Strategy] = if instance.num_workers() > SCALABLE_ONLY_ABOVE {
        &Strategy::SCALABLE
    } else {
        &Strategy::ALL
    };
    for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
        let results: Vec<(&str, Result<PriceSchedule, McsError>)> = strategies
            .iter()
            .map(|&s| {
                (
                    s.name(),
                    ScheduleEngine::new(rule).strategy(s).build(instance),
                )
            })
            .collect();
        if let Some(f) = engine_disagreement(rule, &results) {
            return Some(f);
        }
        if let (_, Ok(schedule)) = &results[0] {
            if let Some(f) = schedule_invariants(rule, instance, schedule) {
                return Some(f);
            }
            if rule == SelectionRule::MarginalCoverage {
                if let Some(f) = ilp_ratio_violation(instance, schedule) {
                    return Some(f);
                }
            }
        }
    }
    None
}

/// Checks that all engines produced equal schedules or equal error kinds.
fn engine_disagreement(
    rule: SelectionRule,
    results: &[(&str, Result<PriceSchedule, McsError>)],
) -> Option<(String, String)> {
    let (ref_name, reference) = &results[0];
    for (name, result) in &results[1..] {
        let agree = match (reference, result) {
            // Observational equality: the engines may compress
            // identical-winner intervals differently, but every
            // `(price, winners)` pair a caller can see must match.
            (Ok(a), Ok(b)) => {
                a.prices() == b.prices() && (0..a.len()).all(|i| a.winners(i) == b.winners(i))
            }
            (Err(a), Err(b)) => error_kind(a) == error_kind(b),
            _ => false,
        };
        if !agree {
            return Some((
                format!("engine-agreement/{rule:?}"),
                format!(
                    "{ref_name} gave {} but {name} gave {}",
                    summarize(reference),
                    summarize(result)
                ),
            ));
        }
    }
    None
}

/// Per-price invariants on a built schedule.
fn schedule_invariants(
    rule: SelectionRule,
    instance: &Instance,
    schedule: &PriceSchedule,
) -> Option<(String, String)> {
    let cover = instance.sparse_coverage();
    let grid: Vec<_> = instance.price_grid().iter().collect();
    for i in 0..schedule.len() {
        let price = schedule.price(i);
        let winners = schedule.winners(i);
        if !cover.is_satisfied_by(winners.iter().copied()) {
            return Some((
                format!("covering/{rule:?}"),
                format!("winners at price {price} leave a task under-covered"),
            ));
        }
        for &w in winners {
            let bid = instance.bids().bid(w).price();
            if bid > price {
                return Some((
                    format!("price-feasibility/{rule:?}"),
                    format!("winner w{} bid {bid} above posted price {price}", w.0),
                ));
            }
        }
        if !grid.contains(&price) {
            return Some((
                format!("grid-membership/{rule:?}"),
                format!("schedule price {price} is not a grid price"),
            ));
        }
        if i > 0 && schedule.price(i - 1) >= price {
            return Some((
                format!("price-order/{rule:?}"),
                format!("prices not strictly ascending at index {i}"),
            ));
        }
    }
    None
}

/// Compares the greedy winner-set size at the top grid price with the
/// exact minimum cardinality, against the paper's `2βH_m` bound.
fn ilp_ratio_violation(instance: &Instance, schedule: &PriceSchedule) -> Option<(String, String)> {
    let (greedy, opt, bound) = ratio_data(instance, schedule)?;
    let ratio = greedy as f64 / opt as f64;
    if (greedy as f64) < opt as f64 - TOL {
        return Some((
            "ilp-sanity".to_string(),
            format!("greedy picked {greedy} winners, below the proven optimum {opt}"),
        ));
    }
    if ratio > bound + TOL {
        return Some((
            "approx-ratio".to_string(),
            format!("greedy {greedy} / optimal {opt} = {ratio:.3} exceeds 2βH_m = {bound:.3}"),
        ));
    }
    None
}

/// `(greedy cardinality, optimal cardinality, 2βH_m)` at the top grid
/// price, or `None` when the ratio check does not apply (no schedule
/// entries, or the ILP could not prove optimality).
fn ratio_data(instance: &Instance, schedule: &PriceSchedule) -> Option<(usize, usize, f64)> {
    if schedule.is_empty()
        || instance.num_tasks() > RATIO_TASK_LIMIT
        || instance.num_workers() > RATIO_WORKER_LIMIT
    {
        return None;
    }
    // The generator's grid tops out above cmax, so at the last schedule
    // entry the candidate pool is the full worker set and the greedy
    // solves the same covering problem the ILP sees.
    let greedy = schedule.winners(schedule.len() - 1).len();
    let cover = instance.sparse_coverage();
    let rows: Vec<Vec<(usize, f64)>> = (0..cover.num_workers())
        .map(|w| cover.row(w).collect())
        .collect();
    let ilp =
        CoveringIlp::uniform_cost_sparse(cover.num_tasks(), rows, cover.requirements().to_vec())
            .ok()?;
    let opt = if instance.num_workers() <= EXHAUSTIVE_LIMIT {
        solve_exhaustive(&ilp)?
    } else {
        let result = ilp.solve(&BnbOptions::default()).ok()?;
        if result.status != IlpStatus::Optimal {
            return None;
        }
        result.best?
    };
    let opt_len = opt.selected.len().max(1);
    // Lemma 2: m = (Σ_j Q'_j) / Δq with Δq the smallest positive
    // coverage weight (the CSR rows store exactly the positive weights).
    let delta_q = (0..cover.num_workers())
        .flat_map(|w| cover.row(w).map(|(_, q)| q))
        .filter(|&q| q > 1e-12)
        .fold(f64::INFINITY, f64::min);
    let total_q: f64 = cover.requirements().iter().sum();
    let m = if delta_q.is_finite() {
        total_q / delta_q
    } else {
        total_q
    };
    // On tiny instances 2βH_m can dip below 1, where a multiplicative
    // bound on an integer-cardinality ratio (≥ 1 by optimality) is
    // vacuous — the meaningful guarantee starts at 1.
    let bound = (2.0 * cover.beta() * harmonic(m.max(1.0))).max(1.0);
    Some((greedy, opt_len, bound))
}

/// Statistics for an instance that passed all checks.
fn stats_for(instance: &Instance) -> DiffStats {
    let mut stats = DiffStats::default();
    match ScheduleEngine::new(SelectionRule::MarginalCoverage).build(instance) {
        Err(_) => stats.agreed_err = 1,
        Ok(schedule) => {
            stats.agreed_ok = 1;
            if let Some((greedy, opt, bound)) = ratio_data(instance, &schedule) {
                stats.ilp_checked = 1;
                stats.max_ratio = greedy as f64 / opt as f64;
                stats.max_bound = bound;
            }
        }
    }
    stats
}

/// One error-kind label per [`McsError`] variant, ignoring payloads, so
/// engines only have to agree on *why* they failed.
fn error_kind(err: &McsError) -> &'static str {
    match err {
        McsError::InvalidSkill { .. } => "invalid-skill",
        McsError::InvalidErrorBound { .. } => "invalid-error-bound",
        McsError::InvalidPriceGrid { .. } => "invalid-price-grid",
        McsError::DimensionMismatch { .. } => "dimension-mismatch",
        McsError::WorkerOutOfRange { .. } => "worker-out-of-range",
        McsError::BundleOutOfRange { .. } => "bundle-out-of-range",
        McsError::EmptyBundle { .. } => "empty-bundle",
        McsError::InvalidCostRange { .. } => "invalid-cost-range",
        McsError::Infeasible { .. } => "infeasible",
        _ => "other",
    }
}

fn summarize(result: &Result<PriceSchedule, McsError>) -> String {
    match result {
        Ok(s) => format!(
            "a schedule of {} prices ({} distinct winner sets)",
            s.len(),
            s.num_distinct_sets()
        ),
        Err(e) => format!("error `{}`", error_kind(e)),
    }
}

/// Greedy minimizer: repeatedly drops one worker, then one task, while
/// the named check keeps failing, until no single removal preserves the
/// failure.
pub fn minimize(mut instance: Instance, check: &str) -> Instance {
    if instance.num_workers() > MINIMIZE_WORKER_LIMIT {
        return instance;
    }
    let still_fails = |inst: &Instance| failure(inst).map(|(c, _)| c == check).unwrap_or(false);
    loop {
        let mut shrunk = false;
        let mut w = 0;
        while w < instance.num_workers() {
            if instance.num_workers() <= 1 {
                break;
            }
            if let Some(smaller) = without_worker(&instance, w) {
                if still_fails(&smaller) {
                    instance = smaller;
                    shrunk = true;
                    continue; // indices shifted; retry same position
                }
            }
            w += 1;
        }
        let mut t = 0;
        while t < instance.num_tasks() {
            if instance.num_tasks() <= 1 {
                break;
            }
            if let Some(smaller) = without_task(&instance, t) {
                if still_fails(&smaller) {
                    instance = smaller;
                    shrunk = true;
                    continue;
                }
            }
            t += 1;
        }
        if !shrunk {
            return instance;
        }
    }
}

/// Rebuilds the instance without worker `drop`, or `None` if the
/// remainder is not a valid instance.
fn without_worker(instance: &Instance, drop: usize) -> Option<Instance> {
    let bids: Vec<Bid> = instance
        .bids()
        .iter()
        .filter(|(w, _)| w.0 as usize != drop)
        .map(|(_, b)| b.clone())
        .collect();
    if bids.is_empty() {
        return None;
    }
    let kept: Vec<WorkerId> = (0..instance.num_workers())
        .filter(|&w| w != drop)
        .map(|w| WorkerId(w as u32))
        .collect();
    let rows: Vec<Vec<f64>> = kept
        .iter()
        .map(|&w| {
            (0..instance.num_tasks())
                .map(|j| instance.skills().theta(w, TaskId(j as u32)))
                .collect()
        })
        .collect();
    Instance::builder(instance.num_tasks())
        .bids(bids)
        .skills(SkillMatrix::from_rows(rows).ok()?)
        .error_bounds(instance.deltas().to_vec())
        .price_grid(instance.price_grid().clone())
        .cost_range(instance.cmin(), instance.cmax())
        .completion(instance.completion().restrict_to_workers(&kept))
        .build()
        .ok()
}

/// Rebuilds the instance without task `drop` (remapping later task ids
/// down by one and removing workers whose bundle becomes empty), or
/// `None` if the remainder is not a valid instance.
fn without_task(instance: &Instance, drop: usize) -> Option<Instance> {
    let keep_task = |t: TaskId| t.0 as usize != drop;
    let remap = |t: TaskId| {
        if (t.0 as usize) > drop {
            TaskId(t.0 - 1)
        } else {
            t
        }
    };
    let mut bids = Vec::new();
    let mut rows = Vec::new();
    let mut kept = Vec::new();
    for (w, bid) in instance.bids().iter() {
        let tasks: Vec<TaskId> = bid
            .bundle()
            .iter()
            .filter(|&t| keep_task(t))
            .map(remap)
            .collect();
        if tasks.is_empty() {
            continue; // worker only sensed the dropped task
        }
        kept.push(w);
        bids.push(Bid::new(Bundle::new(tasks), bid.price()));
        rows.push(
            (0..instance.num_tasks())
                .filter(|&j| j != drop)
                .map(|j| instance.skills().theta(w, TaskId(j as u32)))
                .collect::<Vec<f64>>(),
        );
    }
    if bids.is_empty() {
        return None;
    }
    let deltas: Vec<f64> = instance
        .deltas()
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != drop)
        .map(|(_, d)| *d)
        .collect();
    // The completion model shrinks along both axes: worker rows are
    // restricted *before* task ids shift so the original indices line up.
    let completion = instance
        .completion()
        .restrict_to_workers(&kept)
        .without_task(TaskId(drop as u32));
    Instance::builder(instance.num_tasks() - 1)
        .bids(bids)
        .skills(SkillMatrix::from_rows(rows).ok()?)
        .error_bounds(deltas)
        .price_grid(instance.price_grid().clone())
        .cost_range(instance.cmin(), instance.cmax())
        .completion(completion)
        .build()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};

    #[test]
    fn all_shapes_pass_on_a_small_sweep() {
        for seed in 0..20u64 {
            for shape in Shape::SMALL {
                let inst = generate(shape, seed);
                let stats =
                    check_instance(shape, seed, &inst).unwrap_or_else(|report| panic!("{report}"));
                if shape == Shape::InfeasibleCoverage {
                    assert_eq!(stats.agreed_err, 1);
                } else {
                    assert_eq!(stats.agreed_ok, 1);
                }
            }
        }
    }

    #[test]
    fn large_sparse_smoke_passes_without_ilp() {
        // Debug-mode smoke: sized instances keep the per-engine cost down
        // while still exercising every strategy's agreement (including
        // the incremental sweep and the indexed engine) on CSR-heavy
        // inputs. The task count sits above RATIO_TASK_LIMIT so the ILP
        // ratio check must skip.
        for seed in 0..2u64 {
            let inst = crate::gen::large_sparse_sized(800, seed);
            let stats = check_instance(Shape::LargeSparse, seed, &inst)
                .unwrap_or_else(|report| panic!("{report}"));
            assert_eq!(stats.agreed_ok, 1);
            assert_eq!(stats.ilp_checked, 0, "ratio check should be gated off");
        }
    }

    #[test]
    fn many_workers_smoke_compares_scalable_strategies() {
        // The pool sits above SCALABLE_ONLY_ABOVE, so only the scalable
        // strategies (lazy, incremental, indexed, auto) are compared,
        // and above RATIO_WORKER_LIMIT so the ILP is gated off.
        for seed in 0..2u64 {
            let inst = crate::gen::many_workers_sized(2_000, seed);
            let stats = check_instance(Shape::ManyWorkers, seed, &inst)
                .unwrap_or_else(|report| panic!("{report}"));
            assert_eq!(stats.agreed_ok, 1);
            assert_eq!(stats.ilp_checked, 0, "ratio check should be gated off");
        }
    }

    #[test]
    fn minimizer_preserves_validity() {
        // Minimizing against a check that never fails returns the
        // instance unchanged (no shrink is accepted).
        let inst = generate(Shape::Uniform, 1);
        let same = minimize(inst.clone(), "covering/MarginalCoverage");
        assert_eq!(inst.digest(), same.digest());
    }

    #[test]
    fn worker_and_task_removal_produce_valid_instances() {
        let inst = generate(Shape::Uniform, 2);
        if let Some(smaller) = without_worker(&inst, 0) {
            assert_eq!(smaller.num_workers(), inst.num_workers() - 1);
        }
        if inst.num_tasks() > 1 {
            if let Some(smaller) = without_task(&inst, 0) {
                assert_eq!(smaller.num_tasks(), inst.num_tasks() - 1);
            }
        }
    }
}
