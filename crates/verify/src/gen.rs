//! Structure-aware seeded instance generator shared by all checkers.
//!
//! Random *uniform* instances rarely hit the inputs that break auction
//! code: near-duplicate bids that expose tie-breaking, bundles that make
//! marginal coverage collapse to zero, skill matrices where one expert
//! dominates, and coverage requirements that no winner set can satisfy.
//! Each [`Shape`] targets one of those regimes while staying inside the
//! builder's validity envelope, so every generated instance is a legal
//! auction input — only its *structure* is adversarial.

use mcs_num::rng;
use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Cost range shared by every shape, in price tenths: [10.0, 20.0].
const COST_MIN_TENTHS: i64 = 100;
/// Upper end of the bid range, in tenths.
const COST_MAX_TENTHS: i64 = 200;

/// A structural regime for generated instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Baseline: independent uniform costs, skills, and bundles.
    Uniform,
    /// A few expert workers (θ ≈ 0.95) among many near-random sensors
    /// (θ ≈ 0.52, so per-task coverage weight ≈ 0.0016): greedy choices
    /// concentrate on the experts, stressing the ratio bound.
    SkewedSkills,
    /// Many workers share one identical bundle and several singleton
    /// bundles repeat, so marginal coverage hits zero mid-selection and
    /// tie-breaking between interchangeable workers matters.
    DegenerateBundles,
    /// Costs drawn from three grid points only, producing heavy price
    /// ties across workers and across grid prices.
    TiedPrices,
    /// Requirements set to 1.5× the attainable coverage on every task:
    /// every engine must report the same infeasibility error.
    InfeasibleCoverage,
    /// Scaling regime: thousands of tasks but bundles of only a few
    /// percent of them, so the CSR coverage core is exercised where the
    /// dense path would thrash (`nnz ≪ N·K`). Every task is assigned to
    /// 2–3 workers, keeping the instance feasible by construction.
    LargeSparse,
    /// Scaling regime on the *worker* axis: tens of thousands of workers
    /// over `N / 100` tasks, bundles of 2–4 tasks each. The candidate
    /// pool at every price dwarfs the winner set, which is exactly the
    /// regime the indexed engine's rank order and challenger replay are
    /// built for.
    ManyWorkers,
    /// Streaming regime: a mid-sized redundant pool (12–20 workers over
    /// 1–4 tasks, requirements at 30–60% of attainable) so an online
    /// mechanism's 25% observation sample can usually cover on its own —
    /// the shape the online differential and posted-price DP checks run
    /// against.
    OnlineArrivals,
    /// Chance-constrained regime: every bundle cell carries a Bernoulli
    /// completion probability `p ∈ [0.6, 0.95]`, and each task's shortfall
    /// budget `γ_j` is engineered by inverting the Chernoff quota so the
    /// inflated requirement stays below 85% of the *discounted* pool
    /// `Σ p·q` — feasible under uncertainty by construction, with real
    /// headroom for the Monte Carlo shortfall checker to exercise.
    UncertainTasks,
    /// Campaign regime: a redundant mid-sized pool (12–20 workers over
    /// 1–4 tasks, requirements at 30–60% of attainable, same body as
    /// [`Shape::OnlineArrivals`] on its own stream) so a multi-round
    /// campaign's reputation gate can ban colluding workers and the
    /// survivors usually still cover — the shape the campaign
    /// differential and ε-DP price-channel audit run against.
    AdversarialCampaign,
}

impl Shape {
    /// Every shape, in a fixed order (sweeps cycle through this).
    pub const ALL: [Shape; 10] = [
        Shape::Uniform,
        Shape::SkewedSkills,
        Shape::DegenerateBundles,
        Shape::TiedPrices,
        Shape::InfeasibleCoverage,
        Shape::LargeSparse,
        Shape::ManyWorkers,
        Shape::OnlineArrivals,
        Shape::UncertainTasks,
        Shape::AdversarialCampaign,
    ];

    /// The small structural shapes (everything but the scaling shapes
    /// [`Shape::LargeSparse`] / [`Shape::ManyWorkers`] and the mid-sized
    /// regime-specific [`Shape::OnlineArrivals`] /
    /// [`Shape::AdversarialCampaign`]): debug-mode unit
    /// tests iterate these densely and cover the scaling shapes with
    /// dedicated few-seed smoke tests, because a full scaling instance is
    /// ~1000× the work of a small one. [`Shape::UncertainTasks`] rides
    /// along so every engine differential also runs against inflated
    /// chance-constrained quotas.
    pub const SMALL: [Shape; 6] = [
        Shape::Uniform,
        Shape::SkewedSkills,
        Shape::DegenerateBundles,
        Shape::TiedPrices,
        Shape::InfeasibleCoverage,
        Shape::UncertainTasks,
    ];

    /// Stable stream tag so each shape draws an independent RNG stream
    /// from the same master seed.
    fn stream(self) -> u64 {
        match self {
            Shape::Uniform => 0x5348_0000,
            Shape::SkewedSkills => 0x5348_0001,
            Shape::DegenerateBundles => 0x5348_0002,
            Shape::TiedPrices => 0x5348_0003,
            Shape::InfeasibleCoverage => 0x5348_0004,
            Shape::LargeSparse => 0x5348_0005,
            Shape::ManyWorkers => 0x5348_0006,
            Shape::OnlineArrivals => 0x5348_0007,
            Shape::UncertainTasks => 0x5348_0008,
            Shape::AdversarialCampaign => 0x5348_0009,
        }
    }

    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Uniform => "uniform",
            Shape::SkewedSkills => "skewed-skills",
            Shape::DegenerateBundles => "degenerate-bundles",
            Shape::TiedPrices => "tied-prices",
            Shape::InfeasibleCoverage => "infeasible-coverage",
            Shape::LargeSparse => "large-sparse",
            Shape::ManyWorkers => "many-workers",
            Shape::OnlineArrivals => "online-arrivals",
            Shape::UncertainTasks => "uncertain-tasks",
            Shape::AdversarialCampaign => "adversarial-campaign",
        }
    }

    /// Parses a [`Shape::name`] back into the shape (CLI flag support).
    pub fn by_name(name: &str) -> Option<Shape> {
        Shape::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Generates one instance of the given shape, deterministically in
/// `(shape, seed)`.
///
/// Instances of the small shapes are deliberately tiny (4–10 workers,
/// 1–4 tasks) so the exact ILP stays cheap and counterexamples are
/// readable; [`Shape::LargeSparse`] instead draws 1 000–10 000 tasks and
/// [`Shape::ManyWorkers`] 10 000–50 000 workers to exercise the CSR
/// coverage path at scale on each axis (the ILP ratio check skips both —
/// see the differential module).
pub fn generate(shape: Shape, seed: u64) -> Instance {
    let mut rng = rng::derived(seed, shape.stream());
    if shape == Shape::LargeSparse {
        let num_tasks = rng.gen_range(1_000usize..=10_000);
        return large_sparse_with(num_tasks, &mut rng);
    }
    if shape == Shape::ManyWorkers {
        let num_workers = rng.gen_range(10_000usize..=50_000);
        return many_workers_with(num_workers, &mut rng);
    }
    if shape == Shape::UncertainTasks {
        return uncertain_tasks_with(&mut rng);
    }
    let num_workers = if matches!(shape, Shape::OnlineArrivals | Shape::AdversarialCampaign) {
        // Enough redundancy that a 25% observation prefix (online) or a
        // reputation-gated sub-pool (campaign) can usually cover the
        // requirements by itself.
        rng.gen_range(12usize..=20)
    } else {
        rng.gen_range(4usize..=10)
    };
    let num_tasks = rng.gen_range(1usize..=4);

    let bundles = gen_bundles(shape, num_workers, num_tasks, &mut rng);
    let costs = gen_costs(shape, num_workers, &mut rng);
    let thetas = gen_skills(shape, num_workers, num_tasks, &mut rng);

    // Requirements are engineered relative to the attainable coverage
    // A_j = Σ_w q_wj over workers whose bundle contains j, with
    // q = (2θ−1)². Feasible shapes ask for a fraction of A_j; the
    // infeasible shape asks for 1.5×. δ_j = exp(−Q_j / 2) inverts
    // Q_j = 2·ln(1/δ_j).
    let deltas: Vec<f64> = (0..num_tasks)
        .map(|j| {
            let attainable: f64 = (0..num_workers)
                .filter(|&w| bundles[w].contains(TaskId(j as u32)))
                .map(|w| {
                    let q = 2.0 * thetas[w][j] - 1.0;
                    q * q
                })
                .sum();
            let factor = match shape {
                Shape::InfeasibleCoverage => 1.5,
                Shape::OnlineArrivals | Shape::AdversarialCampaign => rng.gen_range(0.3..0.6),
                _ => rng.gen_range(0.3..0.9),
            };
            // Attainable coverage is strictly positive by construction
            // (every task sits in at least one bundle and θ ≠ 0.5), so
            // the requirement is positive and δ lands strictly inside
            // (0, 1) as the builder demands.
            let requirement = (factor * attainable).max(1e-4);
            (-requirement / 2.0).exp().clamp(1e-12, 1.0 - 1e-12)
        })
        .collect();

    let bids: Vec<Bid> = bundles
        .into_iter()
        .zip(costs)
        .map(|(bundle, cost)| Bid::new(bundle, cost))
        .collect();

    Instance::builder(num_tasks)
        .bids(bids)
        .skills(SkillMatrix::from_rows(thetas).expect("thetas generated in (0, 1)"))
        .error_bounds(deltas)
        // The grid tops out above cmax so the highest-price candidate
        // pool is always the full worker set.
        .price_grid_f64(10.0, 22.0, 0.5)
        .cost_range(
            Price::from_tenths(COST_MIN_TENTHS),
            Price::from_tenths(COST_MAX_TENTHS),
        )
        .build()
        .expect("generated instance is valid by construction")
}

/// A [`Shape::LargeSparse`] instance with an explicit task count,
/// deterministic in `(num_tasks, seed)`.
///
/// Shared with the `schedule_scaling` bench (which sweeps `num_tasks`
/// along a fixed axis) and with debug-mode smoke tests (which pick a
/// small `num_tasks` to stay fast). The stream is salted so sized
/// instances never collide with the sweep's own `generate` stream.
pub fn large_sparse_sized(num_tasks: usize, seed: u64) -> Instance {
    let mut rng = rng::derived(seed, Shape::LargeSparse.stream() ^ 0x00B7);
    large_sparse_with(num_tasks, &mut rng)
}

/// Builds the large-sparse instance body: task-major bundle assignment
/// (each task lands in 2–3 distinct bundles, so feasibility and positive
/// attainable coverage hold by construction) with sparse skills only on
/// bundle cells.
fn large_sparse_with(num_tasks: usize, rng: &mut ChaCha8Rng) -> Instance {
    use mcs_types::WorkerId;

    let num_workers = rng.gen_range(16usize..=32);
    let mut bundles: Vec<Vec<TaskId>> = vec![Vec::new(); num_workers];
    for j in 0..num_tasks {
        let copies = rng.gen_range(2usize..=3);
        let start = rng.gen_range(0..num_workers);
        // Strides of 7 are distinct mod any N in 16..=32, so the copies
        // always land on different workers.
        for c in 0..copies {
            bundles[(start + c * 7) % num_workers].push(TaskId(j as u32));
        }
    }
    // A worker left without tasks still needs a legal bundle.
    for (w, tasks) in bundles.iter_mut().enumerate() {
        if tasks.is_empty() {
            tasks.push(TaskId((w % num_tasks) as u32));
        }
    }

    // Sparse skills: θ only on bundle cells, kept away from 0.5 so
    // coverage weights never vanish. Attainable coverage accumulates in
    // the same pass for the requirement engineering below.
    let mut attainable = vec![0.0f64; num_tasks];
    let mut entries: Vec<(WorkerId, TaskId, f64)> = Vec::new();
    for (w, tasks) in bundles.iter().enumerate() {
        for &t in tasks {
            let theta = rng.gen_range(0.55..0.95);
            let q = 2.0 * theta - 1.0;
            attainable[t.0 as usize] += q * q;
            entries.push((WorkerId(w as u32), t, theta));
        }
    }
    let skills = SkillMatrix::from_sparse(num_workers, num_tasks, entries)
        .expect("sparse entries generated in range");

    let deltas: Vec<f64> = attainable
        .iter()
        .map(|&a| {
            let requirement = (rng.gen_range(0.3f64..0.9) * a).max(1e-4);
            (-requirement / 2.0).exp().clamp(1e-12, 1.0 - 1e-12)
        })
        .collect();

    let bids: Vec<Bid> = bundles
        .into_iter()
        .map(|tasks| {
            let cost = Price::from_tenths(rng.gen_range(COST_MIN_TENTHS..=COST_MAX_TENTHS));
            Bid::new(Bundle::new(tasks), cost)
        })
        .collect();

    Instance::builder(num_tasks)
        .bids(bids)
        .skills(skills)
        .error_bounds(deltas)
        .price_grid_f64(10.0, 22.0, 0.5)
        .cost_range(
            Price::from_tenths(COST_MIN_TENTHS),
            Price::from_tenths(COST_MAX_TENTHS),
        )
        .build()
        .expect("generated instance is valid by construction")
}

/// A [`Shape::ManyWorkers`] instance with an explicit worker count,
/// deterministic in `(num_workers, seed)`.
///
/// Shared with the `schedule_scaling` bench (which sweeps `num_workers`
/// up to 10⁶) and with debug-mode smoke tests (which pick a small pool
/// to stay fast). The stream is salted so sized instances never collide
/// with the sweep's own `generate` stream.
pub fn many_workers_sized(num_workers: usize, seed: u64) -> Instance {
    let mut rng = rng::derived(seed, Shape::ManyWorkers.stream() ^ 0x00B7);
    many_workers_with(num_workers, &mut rng)
}

/// Builds the many-workers instance body: `N / 100` tasks (at least 50),
/// each worker anchored to task `w mod K` plus 1–3 random extras. Every
/// task therefore sits in ~`N / K ≈ 100` bundles, so requirements of
/// only a couple of coverage units leave the winner set a sliver of the
/// candidate pool — the worker-axis scaling regime.
fn many_workers_with(num_workers: usize, rng: &mut ChaCha8Rng) -> Instance {
    use mcs_types::WorkerId;

    let num_tasks = (num_workers / 100).max(50);
    let mut attainable = vec![0.0f64; num_tasks];
    let mut entries: Vec<(WorkerId, TaskId, f64)> = Vec::with_capacity(num_workers * 3);
    let mut bids: Vec<Bid> = Vec::with_capacity(num_workers);
    for w in 0..num_workers {
        let mut tasks = vec![TaskId((w % num_tasks) as u32)];
        for _ in 0..rng.gen_range(1usize..=3) {
            let t = TaskId(rng.gen_range(0..num_tasks as u32));
            if !tasks.contains(&t) {
                tasks.push(t);
            }
        }
        for &t in &tasks {
            let theta = rng.gen_range(0.55..0.95);
            let q = 2.0 * theta - 1.0;
            attainable[t.0 as usize] += q * q;
            entries.push((WorkerId(w as u32), t, theta));
        }
        let cost = Price::from_tenths(rng.gen_range(COST_MIN_TENTHS..=COST_MAX_TENTHS));
        bids.push(Bid::new(Bundle::new(tasks), cost));
    }
    let skills = SkillMatrix::from_sparse(num_workers, num_tasks, entries)
        .expect("sparse entries generated in range");

    // Requirements are a couple of coverage units, far below the huge
    // attainable totals, so winner sets stay small while the candidate
    // pool grows with N. The 0.8×attainable cap keeps tiny sized
    // instances feasible by construction.
    let deltas: Vec<f64> = attainable
        .iter()
        .map(|&a| {
            let requirement = rng.gen_range(0.8f64..1.6).min(0.8 * a).max(1e-4);
            (-requirement / 2.0).exp().clamp(1e-12, 1.0 - 1e-12)
        })
        .collect();

    Instance::builder(num_tasks)
        .bids(bids)
        .skills(skills)
        .error_bounds(deltas)
        .price_grid_f64(10.0, 22.0, 0.5)
        .cost_range(
            Price::from_tenths(COST_MIN_TENTHS),
            Price::from_tenths(COST_MAX_TENTHS),
        )
        .build()
        .expect("generated instance is valid by construction")
}

/// Builds the uncertain-tasks instance body: a redundant mid-sized pool
/// (10–16 workers over 2–4 tasks, θ ∈ [0.8, 0.95] so q ∈ [0.36, 0.81])
/// with a Bernoulli completion probability `p ∈ [0.6, 0.95]` on every
/// bundle cell.
///
/// Requirements are engineered against the *discounted* pool
/// `A'_j = Σ p·q` the chance-constrained transformation will actually
/// see: the base quota is `Q_j ∈ [0.1, 0.4]·A'_j`, and the shortfall
/// budget `γ_j = exp(−L_j)` takes the smaller of a drawn target in
/// `[0.02, 0.2]` and 95% of the largest `L` that keeps the inflated
/// quota `R_j = Q_j + L + √(L² + 2·L·Q_j)` below `0.85·A'_j`
/// (`L_max = M² / (2·(M + Q))` with `M = 0.85·A'_j − Q_j`, the exact
/// inverse of the quota formula). Feasibility under uncertainty
/// therefore holds by construction with ≥ 15% pool headroom, so winner
/// sets stay a strict subset and the Monte Carlo checker has real
/// shortfall probability mass to measure.
fn uncertain_tasks_with(rng: &mut ChaCha8Rng) -> Instance {
    use mcs_types::{BernoulliCompletion, CompletionModel};

    let num_workers = rng.gen_range(10usize..=16);
    let num_tasks = rng.gen_range(2usize..=4);
    let bundles = gen_bundles(Shape::UncertainTasks, num_workers, num_tasks, rng);
    let costs = gen_costs(Shape::UncertainTasks, num_workers, rng);
    // High-signal sensors keep the discounted pool comfortably above the
    // quotas engineered below even after the worst-case 0.6 discount.
    let thetas: Vec<Vec<f64>> = (0..num_workers)
        .map(|_| (0..num_tasks).map(|_| rng.gen_range(0.8..0.95)).collect())
        .collect();

    // Completion probabilities on bundle cells only, accumulating the
    // discounted pool A'_j = Σ p·q in the same pass.
    let mut discounted = vec![0.0f64; num_tasks];
    let rows: Vec<Vec<(TaskId, f64)>> = bundles
        .iter()
        .enumerate()
        .map(|(w, bundle)| {
            bundle
                .iter()
                .map(|t| {
                    let p = rng.gen_range(0.6..0.95);
                    let q = 2.0 * thetas[w][t.0 as usize] - 1.0;
                    discounted[t.0 as usize] += p * q * q;
                    (t, p)
                })
                .collect()
        })
        .collect();

    let mut gammas = Vec::with_capacity(num_tasks);
    let mut deltas = Vec::with_capacity(num_tasks);
    for &a in &discounted {
        let q = rng.gen_range(0.1f64..0.4) * a;
        // Q ≤ 0.4·A' keeps M ≥ 0.45·A' strictly positive.
        let m = 0.85 * a - q;
        let l_max = m * m / (2.0 * (m + q));
        let l = (-(rng.gen_range(0.02f64..0.2)).ln()).min(0.95 * l_max);
        // No tighter-than-derived clamp here: forcing γ *down* would push
        // L past L_max and break feasibility by construction.
        gammas.push((-l).exp().clamp(1e-6, 1.0 - 1e-6));
        deltas.push((-q / 2.0).exp().clamp(1e-12, 1.0 - 1e-12));
    }

    let bids: Vec<Bid> = bundles
        .into_iter()
        .zip(costs)
        .map(|(bundle, cost)| Bid::new(bundle, cost))
        .collect();

    Instance::builder(num_tasks)
        .bids(bids)
        .skills(SkillMatrix::from_rows(thetas).expect("thetas generated in (0, 1)"))
        .error_bounds(deltas)
        .price_grid_f64(10.0, 22.0, 0.5)
        .cost_range(
            Price::from_tenths(COST_MIN_TENTHS),
            Price::from_tenths(COST_MAX_TENTHS),
        )
        .completion(CompletionModel::Bernoulli(BernoulliCompletion::new(
            rows, gammas,
        )))
        .build()
        .expect("uncertain instance is valid by construction")
}

/// Bundles: every task appears in at least one bundle (task j is pinned
/// to worker j mod N) so attainable coverage is positive everywhere.
fn gen_bundles(
    shape: Shape,
    num_workers: usize,
    num_tasks: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<Bundle> {
    let mut bundles: Vec<Vec<TaskId>> = match shape {
        Shape::DegenerateBundles => {
            // One shared bundle for roughly half the pool, singletons
            // (repeated) for the rest.
            let shared: Vec<TaskId> = (0..num_tasks as u32).map(TaskId).collect();
            (0..num_workers)
                .map(|w| {
                    if w % 2 == 0 {
                        shared.clone()
                    } else {
                        vec![TaskId(rng.gen_range(0..num_tasks as u32))]
                    }
                })
                .collect()
        }
        _ => (0..num_workers)
            .map(|_| {
                (0..num_tasks as u32)
                    .filter(|_| rng.gen_bool(0.6))
                    .map(TaskId)
                    .collect()
            })
            .collect(),
    };
    for j in 0..num_tasks {
        let anchor = j % num_workers;
        let t = TaskId(j as u32);
        if !bundles[anchor].contains(&t) {
            bundles[anchor].push(t);
        }
    }
    // A worker whose random subset came out empty still needs a legal
    // (non-empty) bundle.
    for (w, tasks) in bundles.iter_mut().enumerate() {
        if tasks.is_empty() {
            tasks.push(TaskId((w % num_tasks) as u32));
        }
    }
    bundles.into_iter().map(Bundle::new).collect()
}

/// Costs on the tenth grid in [10.0, 20.0].
fn gen_costs(shape: Shape, num_workers: usize, rng: &mut ChaCha8Rng) -> Vec<Price> {
    (0..num_workers)
        .map(|_| match shape {
            Shape::TiedPrices => {
                // Three grid points only → heavy ties.
                let choices = [120, 150, 180];
                Price::from_tenths(choices[rng.gen_range(0..choices.len())])
            }
            _ => Price::from_tenths(rng.gen_range(COST_MIN_TENTHS..=COST_MAX_TENTHS)),
        })
        .collect()
}

/// Skill matrices; θ is kept away from 0.5 so coverage weights never
/// vanish exactly (the infeasible shape relies on A_j > 0 too).
fn gen_skills(
    shape: Shape,
    num_workers: usize,
    num_tasks: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<Vec<f64>> {
    (0..num_workers)
        .map(|w| {
            (0..num_tasks)
                .map(|_| match shape {
                    Shape::SkewedSkills => {
                        if w < 2 {
                            rng.gen_range(0.93..0.97)
                        } else {
                            rng.gen_range(0.51..0.53)
                        }
                    }
                    _ => rng.gen_range(0.55..0.95),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed_and_shape() {
        for shape in Shape::ALL {
            let a = generate(shape, 11);
            let b = generate(shape, 11);
            assert_eq!(a.digest(), b.digest(), "{}", shape.name());
            let c = generate(shape, 12);
            assert_ne!(a.digest(), c.digest(), "{}", shape.name());
        }
    }

    #[test]
    fn shapes_draw_independent_streams() {
        let u = generate(Shape::Uniform, 5);
        let t = generate(Shape::TiedPrices, 5);
        assert_ne!(u.digest(), t.digest());
    }

    #[test]
    fn feasible_shapes_are_feasible_and_infeasible_is_not() {
        for seed in 0..30u64 {
            for shape in Shape::SMALL {
                let inst = generate(shape, seed);
                let cover = inst.coverage_problem();
                let feasible = cover.check_feasible().is_ok();
                match shape {
                    Shape::InfeasibleCoverage => {
                        assert!(!feasible, "seed {seed} should be infeasible")
                    }
                    _ => assert!(feasible, "seed {seed} {} should be feasible", shape.name()),
                }
            }
        }
    }

    #[test]
    fn large_sparse_is_feasible_and_actually_sparse() {
        use mcs_types::CoverageView;
        for seed in 0..3u64 {
            let inst = generate(Shape::LargeSparse, seed);
            assert!(inst.num_tasks() >= 1_000, "seed {seed}");
            let cover = inst.sparse_coverage();
            cover.check_feasible().unwrap_or_else(|e| {
                panic!("seed {seed} should be feasible: {e}");
            });
            // Bundles stay a small fraction of the task set: the whole
            // point of the shape is nnz ≪ N·K.
            let dense_cells = cover.num_workers() * cover.num_tasks();
            assert!(
                cover.nnz() * 4 < dense_cells,
                "seed {seed}: nnz {} vs dense {}",
                cover.nnz(),
                dense_cells
            );
        }
    }

    #[test]
    fn sized_large_sparse_is_deterministic_and_obeys_its_size() {
        let a = large_sparse_sized(1_500, 7);
        let b = large_sparse_sized(1_500, 7);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.num_tasks(), 1_500);
        assert_ne!(a.digest(), large_sparse_sized(1_500, 8).digest());
        assert_ne!(a.digest(), large_sparse_sized(2_000, 7).digest());
    }

    #[test]
    fn many_workers_is_feasible_and_worker_heavy() {
        use mcs_types::CoverageView;
        let inst = generate(Shape::ManyWorkers, 0);
        assert!(inst.num_workers() >= 10_000);
        assert_eq!(inst.num_tasks(), (inst.num_workers() / 100).max(50));
        let cover = inst.sparse_coverage();
        cover
            .check_feasible()
            .unwrap_or_else(|e| panic!("should be feasible: {e}"));
        // Bundles are a handful of tasks, nowhere near the task count.
        let dense_cells = cover.num_workers() * cover.num_tasks();
        assert!(cover.nnz() * 4 < dense_cells);
    }

    #[test]
    fn sized_many_workers_is_deterministic_and_obeys_its_size() {
        let a = many_workers_sized(2_000, 7);
        let b = many_workers_sized(2_000, 7);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.num_workers(), 2_000);
        assert_eq!(a.num_tasks(), 50);
        assert_ne!(a.digest(), many_workers_sized(2_000, 8).digest());
        assert_ne!(a.digest(), many_workers_sized(3_000, 7).digest());
    }

    #[test]
    fn uncertain_tasks_are_uncertain_and_feasible() {
        use mcs_types::CoverageView;
        for seed in 0..30u64 {
            let inst = generate(Shape::UncertainTasks, seed);
            assert!(inst.completion().is_uncertain(), "seed {seed}");
            let cover = inst.sparse_coverage();
            cover
                .check_feasible()
                .unwrap_or_else(|e| panic!("seed {seed} should be feasible when inflated: {e}"));
            for j in 0..inst.num_tasks() {
                let t = TaskId(j as u32);
                assert!(
                    cover.requirement(t) > cover.base_requirement(t),
                    "seed {seed} task {j}: quota not inflated"
                );
                let gamma = cover
                    .shortfall_bound(t)
                    .expect("uncertain task carries a shortfall bound");
                assert!((0.0..1.0).contains(&gamma), "seed {seed} task {j}");
            }
        }
    }

    #[test]
    fn adversarial_campaign_pool_is_mid_sized_and_feasible() {
        for seed in 0..20u64 {
            let inst = generate(Shape::AdversarialCampaign, seed);
            assert!(
                (12..=20).contains(&inst.num_workers()),
                "seed {seed}: pool of {}",
                inst.num_workers()
            );
            inst.coverage_problem()
                .check_feasible()
                .unwrap_or_else(|e| panic!("seed {seed} should be feasible: {e}"));
        }
    }

    #[test]
    fn shape_names_round_trip() {
        for shape in Shape::ALL {
            assert_eq!(Shape::by_name(shape.name()), Some(shape));
        }
        assert_eq!(Shape::by_name("no-such-shape"), None);
    }

    #[test]
    fn tied_prices_actually_tie() {
        let inst = generate(Shape::TiedPrices, 3);
        let mut prices: Vec<Price> = inst.bids().iter().map(|(_, b)| b.price()).collect();
        let n = prices.len();
        prices.sort();
        prices.dedup();
        assert!(prices.len() < n, "expected at least one duplicate price");
    }
}
