//! Fuzz the service wire decoder: corpus + seeded byte mutations.
//!
//! ```text
//! wire_fuzz [--iters N] [--seed S]
//! ```
//!
//! Exit status 0 means no decoder panic and no decode → encode → decode
//! instability across the corpus and all `N` mutated inputs.

use std::process::ExitCode;

use mcs_verify::fuzz::run_fuzz;

fn main() -> ExitCode {
    let mut iters: u64 = 2000;
    let mut seed: u64 = 1;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let Some(value) = argv.next() else {
            eprintln!("flag {flag} needs a value");
            eprintln!("usage: wire_fuzz [--iters N] [--seed S]");
            return ExitCode::FAILURE;
        };
        let Ok(parsed) = value.parse::<u64>() else {
            eprintln!("{flag} expects an unsigned integer, got `{value}`");
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--iters" => iters = parsed,
            "--seed" => seed = parsed,
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let outcome = run_fuzz(iters, seed);
    println!(
        "wire_fuzz: {} inputs ({} accepted, {} rejected), {} panics, {} round-trip failures",
        outcome.executed,
        outcome.accepted,
        outcome.rejected,
        outcome.panics,
        outcome.roundtrip_failures
    );
    if outcome.clean() {
        println!("wire_fuzz: decoder held on every input");
        ExitCode::SUCCESS
    } else {
        eprintln!("wire_fuzz: decoder invariants violated (seed {seed})");
        ExitCode::FAILURE
    }
}
