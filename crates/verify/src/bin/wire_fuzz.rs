//! Fuzz the service's byte-facing decoders: corpus + seeded mutations.
//!
//! ```text
//! wire_fuzz [--target wire|wal] [--iters N] [--seed S]
//! ```
//!
//! `--target wire` (the default) drives the JSON wire decoder;
//! `--target wal` drives the WAL crash-recovery reader. Exit status 0
//! means no panic and no stability invariant violated across the corpus
//! and all `N` mutated inputs.

use std::process::ExitCode;

use mcs_verify::fuzz::{run_fuzz, run_wal_fuzz};

fn main() -> ExitCode {
    let mut iters: u64 = 2000;
    let mut seed: u64 = 1;
    let mut target = String::from("wire");
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let Some(value) = argv.next() else {
            eprintln!("flag {flag} needs a value");
            eprintln!("usage: wire_fuzz [--target wire|wal] [--iters N] [--seed S]");
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--target" => match value.as_str() {
                "wire" | "wal" => target = value,
                other => {
                    eprintln!("--target expects `wire` or `wal`, got `{other}`");
                    return ExitCode::FAILURE;
                }
            },
            "--iters" | "--seed" => {
                let Ok(parsed) = value.parse::<u64>() else {
                    eprintln!("{flag} expects an unsigned integer, got `{value}`");
                    return ExitCode::FAILURE;
                };
                if flag == "--iters" {
                    iters = parsed;
                } else {
                    seed = parsed;
                }
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let clean = if target == "wal" {
        let outcome = run_wal_fuzz(iters, seed);
        println!(
            "wire_fuzz[wal]: {} images ({} recovered, {} rejected), {} panics, {} unstable",
            outcome.executed,
            outcome.recovered,
            outcome.rejected,
            outcome.panics,
            outcome.instability
        );
        outcome.clean()
    } else {
        let outcome = run_fuzz(iters, seed);
        println!(
            "wire_fuzz[wire]: {} inputs ({} accepted, {} rejected), {} panics, {} round-trip failures",
            outcome.executed,
            outcome.accepted,
            outcome.rejected,
            outcome.panics,
            outcome.roundtrip_failures
        );
        outcome.clean()
    };
    if clean {
        println!("wire_fuzz: {target} decoder held on every input");
        ExitCode::SUCCESS
    } else {
        eprintln!("wire_fuzz: {target} decoder invariants violated (seed {seed})");
        ExitCode::FAILURE
    }
}
