//! Sweep the differential, DP, and truthfulness checkers over seeded
//! structured instances.
//!
//! ```text
//! verify_sweep [--iters N] [--seed S] [--dp-samples M] [--mc-samples M]
//!              [--shape NAME]
//! ```
//!
//! Exit status 0 means every invariant held: engine agreement, covering
//! constraints, the `2βH_m` approximation bound, exact and statistical
//! ε-DP, the price-channel truthfulness bound, and — on uncertain-tasks
//! instances — the Monte Carlo chance-constraint check (empirical
//! shortfall within every `γ_j` at the Wilson fence) plus the `p = 1`
//! degenerate reduction across every strategy, and — on
//! adversarial-campaign instances — the multi-round lifecycle
//! differential against the legacy campaign loop plus an audited
//! adversarial campaign with zero price-channel ε violations. Any
//! violation prints a minimized counterexample and exits 1.
//!
//! `--shape` pins every iteration to one generator shape (by its
//! [`Shape::name`], e.g. `large-sparse`) instead of cycling through all
//! of them; the fixed-configuration statistical DP section is skipped in
//! that mode since its shapes are hard-coded.

use std::process::ExitCode;

use mcs_verify::campaign::{self, CampaignStats};
use mcs_verify::chance::{self, ChanceStats};
use mcs_verify::differential::{check_instance, DiffStats};
use mcs_verify::dp::{
    exact_dp_check, statistical_dp_check, truthfulness_probe, ExactDpStats, StatisticalDpReport,
    TruthfulnessStats,
};
use mcs_verify::gen::{generate, Shape};
use mcs_verify::online::{online_check, OnlineStats};

/// Privacy budgets cycled through the exact-DP and truthfulness checks.
const EPSILONS: [f64; 3] = [0.1, 0.5, 2.0];
/// Fixed (ε, shape, generator seed) configurations for the statistical
/// check — three distinct budgets over three distinct structures.
const STATISTICAL_CONFIGS: [(f64, Shape, u64); 3] = [
    (0.2, Shape::Uniform, 101),
    (0.5, Shape::TiedPrices, 202),
    (1.0, Shape::SkewedSkills, 303),
];
/// Normal quantile for the Wilson intervals (two-sided ≈ 1e-4), chosen
/// so a correct sampler essentially never trips the test by chance.
const WILSON_Z: f64 = 3.89;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: verify_sweep [--iters N] [--seed S] [--dp-samples M] [--mc-samples M] [--shape NAME]"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut diff = DiffStats::default();
    let mut exact = ExactDpStats::default();
    let mut truth = TruthfulnessStats::default();
    let mut online = OnlineStats::default();
    let mut chance_stats = ChanceStats::default();
    let mut campaign_stats = CampaignStats::default();
    for i in 0..args.iters {
        let shape = args
            .shape
            .unwrap_or(Shape::ALL[(i % Shape::ALL.len() as u64) as usize]);
        let seed = args.seed.wrapping_add(i);
        let instance = generate(shape, seed);
        match check_instance(shape, seed, &instance) {
            Ok(stats) => diff.merge(&stats),
            Err(report) => {
                eprintln!("differential check failed:\n{report}");
                return ExitCode::FAILURE;
            }
        }
        // Feasible instances feed the privacy checks on a stride so the
        // sweep stays fast; every budget still gets exercised. The
        // many-workers shape is differential-only: the DP checks
        // enumerate per-worker neighbour instances, which is quadratic
        // in a 10⁴⁺ pool.
        let dp_eligible = shape != Shape::InfeasibleCoverage && shape != Shape::ManyWorkers;
        if dp_eligible && i % 10 == 0 {
            let epsilon = EPSILONS[(i / 10 % EPSILONS.len() as u64) as usize];
            match exact_dp_check(&instance, epsilon, seed) {
                Ok(stats) => exact.merge(&stats),
                Err(message) => {
                    eprintln!(
                        "exact DP check failed (shape {}, seed {seed}, ε = {epsilon}): {message}",
                        shape.name()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        // The online checks run on every online-arrivals instance and on
        // a stride of the small feasible shapes (the scaling shapes are
        // excluded: a from-scratch residual build per arrival over 10⁴⁺
        // workers would dominate the sweep).
        let online_eligible = shape == Shape::OnlineArrivals
            || (dp_eligible && shape != Shape::LargeSparse && i % 5 == 0);
        if online_eligible {
            let epsilon = EPSILONS[(i % EPSILONS.len() as u64) as usize];
            match online_check(&instance, epsilon, seed) {
                Ok(stats) => online.merge(&stats),
                Err(message) => {
                    eprintln!(
                        "online check failed (shape {}, seed {seed}, ε = {epsilon}): {message}",
                        shape.name()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        // Every uncertain-tasks instance gets the Monte Carlo shortfall
        // check and the p = 1 degenerate reduction on top of the
        // differential suite.
        if shape == Shape::UncertainTasks {
            match chance::check_instance(shape, seed, &instance, args.mc_samples, WILSON_Z) {
                Ok(stats) => chance_stats.merge(&stats),
                Err(report) => {
                    eprintln!("Monte Carlo chance-constraint check failed:\n{report}");
                    return ExitCode::FAILURE;
                }
            }
            if let Err(report) = chance::check_unit_reduction(shape, seed, &instance) {
                eprintln!("unit-probability reduction check failed:\n{report}");
                return ExitCode::FAILURE;
            }
        }
        // Every adversarial-campaign instance gets the multi-round
        // differential (lifecycle engine vs the legacy oracle, known and
        // re-estimated skills) plus one audited adversarial campaign.
        if shape == Shape::AdversarialCampaign {
            let epsilon = EPSILONS[(i % EPSILONS.len() as u64) as usize];
            match campaign::check_campaign(&instance, epsilon, seed) {
                Ok(stats) => campaign_stats.merge(&stats),
                Err(message) => {
                    eprintln!("campaign check failed (seed {seed}, ε = {epsilon}): {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if dp_eligible && i % 25 == 0 {
            let epsilon = EPSILONS[(i / 25 % EPSILONS.len() as u64) as usize];
            match truthfulness_probe(&instance, epsilon, seed) {
                Ok(stats) => truth.merge(&stats),
                Err(message) => {
                    eprintln!("truthfulness probe failed (shape {}, seed {seed}, ε = {epsilon}): {message}", shape.name());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut statistical: Vec<StatisticalDpReport> = Vec::new();
    let statistical_configs: &[(f64, Shape, u64)] = if args.shape.is_some() {
        &[] // pinned-shape runs target the differential/DP loop only
    } else {
        &STATISTICAL_CONFIGS
    };
    for &(epsilon, shape, seed) in statistical_configs {
        let instance = generate(shape, seed);
        match statistical_dp_check(&instance, epsilon, args.dp_samples, seed, WILSON_Z) {
            Ok(report) => statistical.push(report),
            Err(message) => {
                eprintln!(
                    "statistical DP check failed (shape {}, ε = {epsilon}): {message}",
                    shape.name()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "differential: {} instances ok, {} agreed-infeasible, {} ILP-checked, max ratio {:.3} (bound ≥ {:.3})",
        diff.agreed_ok, diff.agreed_err, diff.ilp_checked, diff.max_ratio, diff.max_bound
    );
    println!(
        "exact DP: {} neighbour pairs ok, {} support shifts, max log-ratio {:.4}",
        exact.checked, exact.support_shifts, exact.max_log_ratio
    );
    println!(
        "truthfulness: {} probes ok, {} support shifts, max price-channel gain {:.4} (bound {:.4}), strict gain {:.4} ({} above ε·Δc — documented Theorem 3 finding)",
        truth.probes,
        truth.support_shifts,
        truth.max_price_channel_gain,
        truth.price_channel_bound,
        truth.max_strict_gain,
        truth.strict_exceedances
    );
    println!(
        "online: {} degenerate reductions byte-identical ({} agreed-infeasible), {} replay arrivals agreed, {} posted-price pairs ok ({} support shifts, max log-ratio {:.4}), {} covered rounds (max competitive ratio {:.3})",
        online.degenerate_ok,
        online.degenerate_err,
        online.replay_arrivals,
        online.dp_pairs,
        online.dp_support_shifts,
        online.max_log_ratio,
        online.covered_rounds,
        online.max_competitive_ratio
    );
    println!(
        "chance-constraint: {} instances MC-checked ({} samples each, z = {WILSON_Z}), max shortfall/γ {:.3}, max analytic bound {:.4}",
        chance_stats.checked, chance_stats.samples, chance_stats.max_rate_ratio, chance_stats.max_analytic_bound
    );
    println!(
        "campaign: {} benign campaigns byte-identical to the legacy loop ({} rounds, {} fallbacks), {} audited adversarial campaigns ok ({} neighbour pairs, {} support shifts, max log-ratio {:.4}, {} bans)",
        campaign_stats.equivalence_pairs,
        campaign_stats.rounds_compared,
        campaign_stats.fallback_rounds,
        campaign_stats.audited_campaigns,
        campaign_stats.audit_neighbours,
        campaign_stats.audit_support_shifts,
        campaign_stats.max_audit_log_ratio,
        campaign_stats.banned_workers
    );
    println!(
        "statistical DP ({} samples/profile, z = {WILSON_Z}):",
        args.dp_samples
    );
    println!("  configured ε | empirical ε̂ | support | consistent");
    for report in &statistical {
        println!(
            "  {:>12.2} | {:>12.4} | {:>7} | {}",
            report.epsilon,
            report.empirical_epsilon,
            report.support,
            if report.consistent { "yes" } else { "NO" }
        );
    }
    println!("verify_sweep: all checks passed");
    ExitCode::SUCCESS
}

struct Args {
    iters: u64,
    seed: u64,
    dp_samples: u64,
    mc_samples: u64,
    shape: Option<Shape>,
}

impl Args {
    fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut args = Args {
            iters: 1000,
            seed: 1,
            dp_samples: 20_000,
            mc_samples: 10_000,
            shape: None,
        };
        while let Some(flag) = argv.next() {
            let value = argv
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            if flag == "--shape" {
                args.shape = Some(Shape::by_name(&value).ok_or_else(|| {
                    let known: Vec<&str> = Shape::ALL.iter().map(|s| s.name()).collect();
                    format!("unknown shape `{value}`; known: {}", known.join(", "))
                })?);
                continue;
            }
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("{flag} expects an unsigned integer, got `{value}`"))?;
            match flag.as_str() {
                "--iters" => args.iters = parsed,
                "--seed" => args.seed = parsed,
                "--dp-samples" => args.dp_samples = parsed.max(100),
                "--mc-samples" => args.mc_samples = parsed.max(100),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(args)
    }
}
