//! Statistical and exact verification of the privacy and truthfulness
//! guarantees (Theorems 2 and 3 of the paper).
//!
//! * **Exact ε-DP** — for neighbouring bid profiles (one worker's cost
//!   perturbed within `[c_min, c_max]`), the analytic PMFs must satisfy
//!   `max_x |ln Pr[M(b)=x] − ln Pr[M(b′)=x]| ≤ ε`. Neighbours whose
//!   feasible-price *support* shifts are counted separately: the
//!   log-ratio is undefined there, and the repo documents that regime as
//!   outside the mechanism's per-price guarantee.
//! * **Statistical ε-DP** — the same comparison replayed on *sampled*
//!   PMFs: `M` draws per profile, per-price Wilson score intervals, and
//!   a two-sided consistency test `p_lo ≤ e^ε · q_hi`. This validates
//!   the sampler, not just the analytic math, and yields an empirical
//!   ε̂ = max over co-occupied prices of `|ln(p̂/q̂)|`.
//! * **Truthfulness probe** — sweeps misreports `ρ_i ≠ c*_i` and checks
//!   the price-lottery channel gain against `(e^ε − 1)·Δc` (the bound
//!   the paper's Theorem 3 proof actually establishes; see
//!   `mcs_auction::utility::cross_expected_utility`). The *strict* gain,
//!   which also counts the worker's own membership flips, is recorded —
//!   exceeding `ε·Δc` there is a documented finding, not a failure.

use mcs_auction::utility::{cross_expected_utility, deviation_gain, expected_utility};
use mcs_auction::{privacy, DpHsrcAuction, PricePmf, ScheduledMechanism};
use mcs_num::{rng, wilson_interval};
use mcs_types::{Bid, Instance, Price, WorkerId};
use rand::Rng;

/// Slack for floating-point comparisons against analytic bounds.
const TOL: f64 = 1e-9;

/// Outcome of the exact DP sweep over every worker of one instance.
#[derive(Debug, Clone, Default)]
pub struct ExactDpStats {
    /// Neighbour pairs whose log-ratio was checked.
    pub checked: u64,
    /// Neighbour pairs whose feasible-price support shifted.
    pub support_shifts: u64,
    /// Largest observed log-probability ratio.
    pub max_log_ratio: f64,
}

impl ExactDpStats {
    /// Folds another batch of statistics into this one.
    pub fn merge(&mut self, other: &ExactDpStats) {
        self.checked += other.checked;
        self.support_shifts += other.support_shifts;
        self.max_log_ratio = self.max_log_ratio.max(other.max_log_ratio);
    }
}

/// Exact ε-DP check: every worker's cost perturbed to a handful of grid
/// values, analytic PMFs compared via `privacy::dp_log_ratio`.
///
/// # Errors
///
/// Returns a description of the first neighbour pair whose log-ratio
/// exceeds `ε`.
pub fn exact_dp_check(
    instance: &Instance,
    epsilon: f64,
    seed: u64,
) -> Result<ExactDpStats, String> {
    let auction =
        DpHsrcAuction::new(epsilon).map_err(|e| format!("bad epsilon {epsilon}: {e:?}"))?;
    let truthful = auction
        .pmf(instance)
        .map_err(|e| format!("pmf failed on base instance: {e:?}"))?;
    let mut stats = ExactDpStats::default();
    let mut stream = rng::derived(seed, 0xD9_0001);
    for w in 0..instance.num_workers() {
        let worker = WorkerId(w as u32);
        for bid in neighbour_bids(instance, worker, &mut stream) {
            let neighbour = instance
                .with_bid(worker, bid)
                .map_err(|e| format!("neighbour rejected: {e:?}"))?;
            let Ok(other) = auction.pmf(&neighbour) else {
                // One profile feasible, the other not: the mechanism's
                // output support changed entirely.
                stats.support_shifts += 1;
                continue;
            };
            match privacy::dp_log_ratio(&truthful, &other) {
                None => stats.support_shifts += 1,
                Some(ratio) => {
                    stats.checked += 1;
                    stats.max_log_ratio = stats.max_log_ratio.max(ratio);
                    if ratio > epsilon + TOL {
                        return Err(format!(
                            "worker {w}: log-ratio {ratio:.6} exceeds ε = {epsilon}"
                        ));
                    }
                }
            }
        }
    }
    Ok(stats)
}

/// Three perturbed costs for a worker: the range extremes and one random
/// grid point — the extremes maximise the cost change `Δc` allows.
fn neighbour_bids(instance: &Instance, worker: WorkerId, stream: &mut impl Rng) -> Vec<Bid> {
    let current = instance.bids().bid(worker);
    let lo = instance.cmin().tenths();
    let hi = instance.cmax().tenths();
    let mut picks = vec![lo, hi, stream.gen_range(lo..=hi)];
    picks.retain(|&t| t != current.price().tenths());
    picks.dedup();
    picks
        .into_iter()
        .map(|t| Bid::new(current.bundle().clone(), Price::from_tenths(t)))
        .collect()
}

/// Result of one statistical DP comparison.
#[derive(Debug, Clone)]
pub struct StatisticalDpReport {
    /// Configured privacy budget.
    pub epsilon: f64,
    /// Samples drawn from each PMF.
    pub samples: u64,
    /// Grid prices carrying probability in either PMF.
    pub support: usize,
    /// Empirical ε̂: max over co-occupied prices of `|ln(p̂/q̂)|`.
    pub empirical_epsilon: f64,
    /// Whether every price passed the Wilson consistency test.
    pub consistent: bool,
}

/// Statistical ε-DP check on sampled PMFs.
///
/// Draws `samples` outcomes from the truthful and one neighbouring
/// profile (worker 0's cost moved to the far end of the cost range),
/// then tests, per price, that the Wilson intervals are consistent with
/// `p ≤ e^ε·q` and `q ≤ e^ε·p` at normal quantile `z`.
///
/// # Errors
///
/// Returns a description if the PMFs cannot be built, no
/// support-preserving neighbour exists, or the consistency test fails.
pub fn statistical_dp_check(
    instance: &Instance,
    epsilon: f64,
    samples: u64,
    seed: u64,
    z: f64,
) -> Result<StatisticalDpReport, String> {
    let auction =
        DpHsrcAuction::new(epsilon).map_err(|e| format!("bad epsilon {epsilon}: {e:?}"))?;
    let truthful = auction
        .pmf(instance)
        .map_err(|e| format!("pmf failed: {e:?}"))?;
    // Find a worker whose extreme-cost perturbation keeps the feasible
    // price support identical, so per-price ratios are defined.
    let mut chosen: Option<PricePmf> = None;
    'workers: for w in 0..instance.num_workers() {
        let worker = WorkerId(w as u32);
        let current = instance.bids().bid(worker);
        for t in [instance.cmin().tenths(), instance.cmax().tenths()] {
            if t == current.price().tenths() {
                continue;
            }
            let bid = Bid::new(current.bundle().clone(), Price::from_tenths(t));
            let Ok(neighbour) = instance.with_bid(worker, bid) else {
                continue;
            };
            if let Ok(pmf) = auction.pmf(&neighbour) {
                if pmf.schedule().prices() == truthful.schedule().prices() {
                    chosen = Some(pmf);
                    break 'workers;
                }
            }
        }
    }
    let other = chosen.ok_or_else(|| {
        "no support-preserving neighbour found for statistical comparison".to_string()
    })?;

    let counts_a = sample_counts(&truthful, samples, seed, 0xD9_0002);
    let counts_b = sample_counts(&other, samples, seed, 0xD9_0003);
    debug_assert_eq!(counts_a.len(), counts_b.len());

    let e_eps = epsilon.exp();
    let mut empirical = 0.0f64;
    let mut consistent = true;
    let mut support = 0usize;
    for (&ca, &cb) in counts_a.iter().zip(&counts_b) {
        if ca == 0 && cb == 0 {
            continue;
        }
        support += 1;
        let (a_lo, a_hi) = wilson_interval(ca, samples, z);
        let (b_lo, b_hi) = wilson_interval(cb, samples, z);
        // The data must not *reject* p ≤ e^ε·q (either direction): the
        // most favourable corner of the confidence box has to satisfy
        // the DP inequality.
        if a_lo > e_eps * b_hi + TOL || b_lo > e_eps * a_hi + TOL {
            consistent = false;
        }
        if ca > 0 && cb > 0 {
            let ratio = (ca as f64 / samples as f64) / (cb as f64 / samples as f64);
            empirical = empirical.max(ratio.ln().abs());
        }
    }
    let report = StatisticalDpReport {
        epsilon,
        samples,
        support,
        empirical_epsilon: empirical,
        consistent,
    };
    if !consistent {
        return Err(format!(
            "sampled PMFs reject ε = {epsilon} at z = {z} (empirical ε̂ = {:.4})",
            report.empirical_epsilon
        ));
    }
    Ok(report)
}

/// Draws `samples` price indices from the PMF into per-index counts.
fn sample_counts(pmf: &PricePmf, samples: u64, seed: u64, stream: u64) -> Vec<u64> {
    let mut rng = rng::derived(seed, stream);
    let mut counts = vec![0u64; pmf.len()];
    for _ in 0..samples {
        counts[pmf.sample_index(&mut rng)] += 1;
    }
    counts
}

/// Outcome of a truthfulness probe over one instance.
#[derive(Debug, Clone, Default)]
pub struct TruthfulnessStats {
    /// Misreport probes whose price-channel gain was evaluated.
    pub probes: u64,
    /// Probes skipped because the deviated profile changed the feasible
    /// price support (the cross-utility is undefined there).
    pub support_shifts: u64,
    /// Largest observed price-lottery channel gain.
    pub max_price_channel_gain: f64,
    /// The bound the price channel must respect: `(e^ε − 1)·Δc`.
    pub price_channel_bound: f64,
    /// Probes where the *strict* gain exceeded `ε·Δc` (documented
    /// Theorem 3 finding; recorded, not failed).
    pub strict_exceedances: u64,
    /// Largest observed strict deviation gain.
    pub max_strict_gain: f64,
}

impl TruthfulnessStats {
    /// Folds another batch of statistics into this one.
    pub fn merge(&mut self, other: &TruthfulnessStats) {
        self.probes += other.probes;
        self.support_shifts += other.support_shifts;
        self.max_price_channel_gain = self
            .max_price_channel_gain
            .max(other.max_price_channel_gain);
        self.price_channel_bound = self.price_channel_bound.max(other.price_channel_bound);
        self.strict_exceedances += other.strict_exceedances;
        self.max_strict_gain = self.max_strict_gain.max(other.max_strict_gain);
    }
}

/// Sweeps misreports `ρ_i ≠ c*_i` for every worker, checking the
/// price-lottery channel gain against `(e^ε − 1)·Δc`.
///
/// # Errors
///
/// Returns a description of the first probe whose price-channel gain
/// exceeds the bound.
pub fn truthfulness_probe(
    instance: &Instance,
    epsilon: f64,
    seed: u64,
) -> Result<TruthfulnessStats, String> {
    let auction =
        DpHsrcAuction::new(epsilon).map_err(|e| format!("bad epsilon {epsilon}: {e:?}"))?;
    let truthful = auction
        .pmf(instance)
        .map_err(|e| format!("pmf failed: {e:?}"))?;
    let delta_c = instance.delta_c().as_f64();
    let price_bound = (epsilon.exp() - 1.0) * delta_c;
    let strict_bound = epsilon * delta_c;
    let mut stats = TruthfulnessStats {
        price_channel_bound: price_bound,
        ..TruthfulnessStats::default()
    };
    let mut stream = rng::derived(seed, 0xD9_0004);
    for w in 0..instance.num_workers() {
        let worker = WorkerId(w as u32);
        let true_cost = instance.bids().bid(worker).price();
        for misreport in neighbour_bids(instance, worker, &mut stream) {
            let Ok(deviated_instance) = instance.with_bid(worker, misreport) else {
                continue;
            };
            let Ok(deviated) = auction.pmf(&deviated_instance) else {
                stats.support_shifts += 1;
                continue;
            };
            // Price-lottery channel: the deviated price distribution
            // paired with the deviated membership, minus the truthful
            // price distribution paired with that same membership.
            let Some(cross) = cross_expected_utility(&truthful, &deviated, worker, true_cost)
            else {
                stats.support_shifts += 1;
                continue;
            };
            let price_gain = expected_utility(&deviated, worker, true_cost) - cross;
            stats.probes += 1;
            stats.max_price_channel_gain = stats.max_price_channel_gain.max(price_gain);
            if price_gain > price_bound + TOL {
                return Err(format!(
                    "worker {w}: price-channel gain {price_gain:.6} exceeds (e^ε−1)·Δc = {price_bound:.6}"
                ));
            }
            let strict = deviation_gain(&truthful, &deviated, worker, true_cost);
            stats.max_strict_gain = stats.max_strict_gain.max(strict);
            if strict > strict_bound + TOL {
                stats.strict_exceedances += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};

    #[test]
    fn exact_dp_holds_on_feasible_shapes() {
        for shape in [Shape::Uniform, Shape::TiedPrices] {
            let inst = generate(shape, 4);
            let stats = exact_dp_check(&inst, 0.5, 4).expect("ε-DP must hold");
            assert!(stats.checked > 0, "no neighbour pair was checked");
            assert!(stats.max_log_ratio <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn truthfulness_price_channel_is_bounded() {
        let inst = generate(Shape::Uniform, 9);
        let stats = truthfulness_probe(&inst, 0.5, 9).expect("price channel bounded");
        assert!(stats.probes > 0);
        assert!(stats.max_price_channel_gain <= stats.price_channel_bound + 1e-9);
    }
}
