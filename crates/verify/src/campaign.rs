//! Campaign differential: the shared-lifecycle engine against a verbatim
//! port of the legacy multi-round runner.
//!
//! [`mcs_sim::campaign::run_campaign`] replaced the original
//! `Campaign::run` loop with a [`RoundState`]-driven engine that also
//! carries skill tracking, reputation gating, adversaries and a per-round
//! ε-DP audit. The refactor's core claim is that on *benign* inputs (no
//! adversaries, no gate, no audit) the engine is byte-identical to the
//! legacy loop — same reports, same payments, same RNG stream position
//! afterwards. [`legacy_campaign`] keeps the pre-refactor loop alive
//! here, generic over the mechanism, as the oracle for that claim; the
//! sweep additionally runs an audited adversarial campaign per instance
//! and demands zero Theorem 2 violations on the price channel even when
//! the auction runs on estimated skills.
//!
//! [`RoundState`]: mcs_sim::campaign::RoundState

use rand::Rng;

use mcs_agg::{generate_labels, weighted_aggregate, DawidSkene, Label, LabelSet, Observation};
use mcs_auction::{DpHsrcAuction, ScheduledMechanism};
use mcs_num::rng;
use mcs_sim::campaign::{
    run_campaign, AdversaryGroup, AdversaryPlan, AdversaryStrategy, CampaignSpec, DpAuditConfig,
    ReputationConfig, SkillSource,
};
use mcs_sim::platform::{CampaignReport, RoundReport};
use mcs_types::{Bundle, Instance, McsError, Price, SkillMatrix, TrueType, WorkerId};

/// Derivation stream of campaign-check RNGs ("CMPV").
const CAMPAIGN_STREAM: u64 = 0x434D_5056;

/// Rounds per equivalence campaign — enough for the refit feedback loop
/// (estimate → auction → labels → estimate) to matter, small enough that
/// the sweep runs hundreds of campaigns.
const EQUIVALENCE_ROUNDS: usize = 3;
/// Rounds per audited adversarial campaign — one more than the default
/// reputation grace window, so the gate is live by the final round.
const ADVERSARIAL_ROUNDS: usize = 4;

/// Accumulated tallies from campaign checks.
#[derive(Debug, Default, Clone, Copy)]
pub struct CampaignStats {
    /// Benign campaigns proven byte-identical to the legacy oracle.
    pub equivalence_pairs: usize,
    /// Rounds compared across those campaigns.
    pub rounds_compared: usize,
    /// Estimate-driven rounds that fell back to the prior skill record
    /// (in both runner and oracle, by equivalence).
    pub fallback_rounds: usize,
    /// Audited adversarial campaigns that finished with zero violations.
    pub audited_campaigns: usize,
    /// Neighbour PMF pairs the audits compared.
    pub audit_neighbours: usize,
    /// Neighbours the audits skipped for shifting the feasible support.
    pub audit_support_shifts: usize,
    /// Largest `|ln(P_a(p) / P_b(p))|` any audit observed.
    pub max_audit_log_ratio: f64,
    /// Workers the reputation gate had banned by campaign end.
    pub banned_workers: usize,
}

impl CampaignStats {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &CampaignStats) {
        self.equivalence_pairs += other.equivalence_pairs;
        self.rounds_compared += other.rounds_compared;
        self.fallback_rounds += other.fallback_rounds;
        self.audited_campaigns += other.audited_campaigns;
        self.audit_neighbours += other.audit_neighbours;
        self.audit_support_shifts += other.audit_support_shifts;
        self.max_audit_log_ratio = self.max_audit_log_ratio.max(other.max_audit_log_ratio);
        self.banned_workers += other.banned_workers;
    }
}

/// The truthful type profile of an instance: every worker's true bundle
/// and cost are exactly her bid (Definition 2 in reverse). The generator
/// draws bids directly, so this is the ground truth the campaign's
/// utility accounting runs against.
pub fn truthful_types(instance: &Instance) -> Vec<TrueType> {
    (0..instance.num_workers())
        .map(|i| {
            let bid = instance.bids().bid(WorkerId(i as u32));
            TrueType::new(bid.bundle().clone(), bid.price())
        })
        .collect()
}

/// The pre-refactor campaign loop, verbatim, made generic over the
/// mechanism — the oracle the lifecycle engine is differenced against.
///
/// This is the exact body `Campaign::run` shipped with (auction on the
/// current belief, true-skill label generation, belief-weighted
/// aggregation, optional cold Dawid–Skene refit per round, flip-folded
/// final skill error), with `DpHsrcAuction::new(self.epsilon)?` hoisted
/// into the caller-supplied `mechanism` — that call only validated ε and
/// never drew from the RNG, so hoisting preserves the stream.
///
/// # Errors
///
/// Propagates auction errors exactly like the legacy loop: an
/// estimate-driven infeasible round falls back to the true-skill instance
/// when `reestimate_skills` is set and aborts the campaign otherwise.
pub fn legacy_campaign<M, R>(
    mechanism: &M,
    rounds: usize,
    reestimate_skills: bool,
    instance: &Instance,
    types: &[TrueType],
    rng: &mut R,
) -> Result<CampaignReport, McsError>
where
    M: ScheduledMechanism,
    R: Rng + ?Sized,
{
    let mut reports = Vec::with_capacity(rounds);
    let mut total_spend = Price::ZERO;
    let mut all_labels = LabelSet::new(instance.num_tasks());
    let mut current = instance.clone();
    let mut fallback_rounds = 0usize;

    for _ in 0..rounds {
        let outcome = match mechanism.run(&current, rng) {
            Ok(o) => o,
            Err(_) if reestimate_skills => {
                fallback_rounds += 1;
                current = instance.clone();
                mechanism.run(&current, rng)?
            }
            Err(e) => return Err(e),
        };

        let assignment: Vec<(WorkerId, Bundle)> = outcome
            .winners()
            .iter()
            .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
            .collect();
        let truth: Vec<Label> = (0..instance.num_tasks())
            .map(|_| Label::random(rng))
            .collect();
        let labels = generate_labels(instance.skills(), &truth, &assignment, rng);
        for obs in labels.iter() {
            all_labels.push(Observation { ..obs });
        }
        let estimates = weighted_aggregate(&labels, current.skills(), instance.num_tasks());
        let correct: Vec<bool> = estimates
            .iter()
            .zip(&truth)
            .map(|(e, t)| *e == Some(*t))
            .collect();
        let round_paid = outcome.total_payment();
        total_spend += round_paid;
        let utilities: Vec<Price> = (0..instance.num_workers())
            .map(|i| outcome.utility_of(WorkerId(i as u32), &types[i]))
            .collect();
        reports.push(RoundReport {
            outcome,
            truth,
            labels,
            estimates,
            correct,
            total_paid: round_paid,
            utilities,
        });

        if reestimate_skills {
            let fit = DawidSkene::default().fit(&all_labels, instance.num_workers());
            let estimated: Vec<Vec<f64>> = fit
                .accuracies
                .iter()
                .map(|&a| vec![a; instance.num_tasks()])
                .collect();
            let skills =
                SkillMatrix::from_rows(estimated).expect("EM accuracies are clamped to (0, 1)");
            current = Instance::builder(instance.num_tasks())
                .bid_profile(instance.bids().clone())
                .skills(skills)
                .error_bounds(instance.deltas().to_vec())
                .price_grid(instance.price_grid().clone())
                .cost_range(instance.cmin(), instance.cmax())
                .build()
                .expect("estimate swap preserves validity");
        }
    }

    let mean_accuracy = if reports.is_empty() {
        1.0
    } else {
        reports.iter().map(RoundReport::accuracy).sum::<f64>() / reports.len() as f64
    };
    let final_skill_error = reestimate_skills.then(|| {
        let fit = DawidSkene::default().fit(&all_labels, instance.num_workers());
        let mut err = 0.0;
        for i in 0..instance.num_workers() {
            let w = WorkerId(i as u32);
            let true_mean: f64 =
                instance.skills().worker_row(w).iter().sum::<f64>() / instance.num_tasks() as f64;
            let est = fit.accuracies[i];
            err += (est - true_mean).abs().min((1.0 - est - true_mean).abs());
        }
        err / instance.num_workers() as f64
    });

    Ok(CampaignReport {
        rounds: reports,
        total_spend,
        mean_accuracy,
        final_skill_error,
        fallback_rounds,
    })
}

/// Checks that the lifecycle engine reproduces the legacy loop
/// byte-for-byte on a benign campaign: identical round reports,
/// bit-identical aggregate statistics, and — the strongest form — an
/// identical RNG stream position afterwards.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn check_equivalence<M: ScheduledMechanism>(
    mechanism: &M,
    reestimate: bool,
    instance: &Instance,
    seed: u64,
) -> Result<CampaignStats, String> {
    let types = truthful_types(instance);
    let mut r_legacy = rng::derived(seed, CAMPAIGN_STREAM);
    let mut r_engine = rng::derived(seed, CAMPAIGN_STREAM);
    let legacy = legacy_campaign(
        mechanism,
        EQUIVALENCE_ROUNDS,
        reestimate,
        instance,
        &types,
        &mut r_legacy,
    )
    .map_err(|e| format!("legacy oracle failed: {e}"))?;
    let spec = CampaignSpec {
        skills: if reestimate {
            SkillSource::RefitEachRound
        } else {
            SkillSource::Known
        },
        ..CampaignSpec::benign(EQUIVALENCE_ROUNDS)
    };
    let engine = run_campaign(&spec, mechanism, instance, &types, &mut r_engine)
        .map_err(|e| format!("lifecycle engine failed: {e}"))?;

    if engine.rounds != legacy.rounds {
        return Err(format!(
            "round reports diverged (engine {} rounds, legacy {})",
            engine.rounds.len(),
            legacy.rounds.len()
        ));
    }
    if engine.total_spend != legacy.total_spend {
        return Err(format!(
            "total spend diverged: engine {} vs legacy {}",
            engine.total_spend, legacy.total_spend
        ));
    }
    if engine.mean_accuracy.to_bits() != legacy.mean_accuracy.to_bits() {
        return Err(format!(
            "mean accuracy diverged: engine {} vs legacy {}",
            engine.mean_accuracy, legacy.mean_accuracy
        ));
    }
    if engine.final_skill_error.map(f64::to_bits) != legacy.final_skill_error.map(f64::to_bits) {
        return Err(format!(
            "final skill error diverged: engine {:?} vs legacy {:?}",
            engine.final_skill_error, legacy.final_skill_error
        ));
    }
    if engine.fallback_rounds != legacy.fallback_rounds {
        return Err(format!(
            "fallback rounds diverged: engine {} vs legacy {}",
            engine.fallback_rounds, legacy.fallback_rounds
        ));
    }
    if r_engine.gen::<u64>() != r_legacy.gen::<u64>() {
        return Err("RNG streams diverged: the engine consumed a different draw count".to_string());
    }
    Ok(CampaignStats {
        equivalence_pairs: 1,
        rounds_compared: engine.rounds.len(),
        fallback_rounds: engine.fallback_rounds,
        ..CampaignStats::default()
    })
}

/// Runs an audited adversarial campaign — a label-flip ring and a
/// bid-collusion ring against a reputation-gated platform auctioning on
/// estimated skills — and demands the per-round ε-DP audit of the price
/// channel find zero Theorem 2 violations.
///
/// # Errors
///
/// Returns a description of any audit violation or campaign failure.
pub fn check_adversarial<M: ScheduledMechanism>(
    mechanism: &M,
    instance: &Instance,
    seed: u64,
) -> Result<CampaignStats, String> {
    let n = instance.num_workers();
    if n < 7 {
        return Err(format!(
            "adversarial campaign check needs ≥ 7 workers, got {n}"
        ));
    }
    // The generator guarantees 12–20 workers, so two disjoint 3-rings at
    // the top of the id space always fit and stay a pool minority.
    let flip_ring: Vec<WorkerId> = (n - 3..n).map(|i| WorkerId(i as u32)).collect();
    let bid_ring: Vec<WorkerId> = (n - 6..n - 3).map(|i| WorkerId(i as u32)).collect();
    let spec = CampaignSpec {
        rounds: ADVERSARIAL_ROUNDS,
        skills: SkillSource::RefitEachRound,
        reputation: Some(ReputationConfig::default()),
        adversaries: AdversaryPlan {
            groups: vec![
                AdversaryGroup {
                    members: flip_ring,
                    strategy: AdversaryStrategy::LabelFlipRing { flip_prob: 0.8 },
                },
                AdversaryGroup {
                    members: bid_ring,
                    strategy: AdversaryStrategy::BidCollusionRing { markup: 0.3 },
                },
            ],
            seed,
        },
        audit: Some(DpAuditConfig {
            seed: seed ^ 0xA0D1,
            slack: 1e-6,
        }),
    };
    let types = truthful_types(instance);
    let mut r = rng::derived(seed, CAMPAIGN_STREAM ^ 0xAD);
    let outcome = run_campaign(&spec, mechanism, instance, &types, &mut r)
        .map_err(|e| format!("adversarial campaign failed: {e}"))?;
    let audit = outcome
        .audit
        .ok_or_else(|| "audit was configured but produced no report".to_string())?;
    if audit.violations != 0 {
        return Err(format!(
            "price-channel audit found {} violation(s): worst log-ratio {} vs ε = {} \
             ({} neighbours over {} rounds)",
            audit.violations,
            audit.worst_log_ratio,
            audit.epsilon,
            audit.neighbours_checked,
            audit.rounds_audited
        ));
    }
    Ok(CampaignStats {
        audited_campaigns: 1,
        audit_neighbours: audit.neighbours_checked,
        audit_support_shifts: audit.support_shifts,
        max_audit_log_ratio: audit.worst_log_ratio,
        banned_workers: outcome.banned_workers.len(),
        ..CampaignStats::default()
    })
}

/// The full campaign check the sweep runs per adversarial-campaign
/// instance: benign equivalence with known and re-estimated skills, then
/// the audited adversarial run.
///
/// # Errors
///
/// Returns a description of the first failing check.
pub fn check_campaign(
    instance: &Instance,
    epsilon: f64,
    seed: u64,
) -> Result<CampaignStats, String> {
    let mechanism = DpHsrcAuction::new(epsilon).map_err(|e| format!("invalid ε {epsilon}: {e}"))?;
    let mut stats = CampaignStats::default();
    for reestimate in [false, true] {
        let pair = check_equivalence(&mechanism, reestimate, instance, seed).map_err(|m| {
            format!(
                "benign equivalence failed ({} skills): {m}",
                if reestimate { "re-estimated" } else { "known" }
            )
        })?;
        stats.merge(&pair);
    }
    stats.merge(&check_adversarial(&mechanism, instance, seed)?);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};
    use mcs_sim::platform::Campaign;

    /// The oracle must match the *shipping* adapter (`Campaign::run`),
    /// closing the triangle oracle ≡ legacy API ≡ lifecycle engine.
    #[test]
    fn oracle_matches_shipping_campaign_adapter() {
        for seed in 0..10u64 {
            let instance = generate(Shape::AdversarialCampaign, seed);
            let types = truthful_types(&instance);
            for reestimate in [false, true] {
                let mechanism = DpHsrcAuction::new(0.5).unwrap();
                let mut r_oracle = rng::derived(seed, 77);
                let mut r_ship = rng::derived(seed, 77);
                let oracle =
                    legacy_campaign(&mechanism, 3, reestimate, &instance, &types, &mut r_oracle)
                        .unwrap();
                let shipping = Campaign {
                    epsilon: 0.5,
                    rounds: 3,
                    reestimate_skills: reestimate,
                }
                .run(&instance, &types, &mut r_ship)
                .unwrap();
                assert_eq!(oracle, shipping, "seed {seed} reestimate {reestimate}");
                assert_eq!(
                    r_oracle.gen::<u64>(),
                    r_ship.gen::<u64>(),
                    "seed {seed} reestimate {reestimate}: RNG streams diverged"
                );
            }
        }
    }

    #[test]
    fn campaign_check_passes_on_generated_instances() {
        for seed in 0..6u64 {
            let instance = generate(Shape::AdversarialCampaign, seed);
            let stats =
                check_campaign(&instance, 0.5, seed).unwrap_or_else(|m| panic!("seed {seed}: {m}"));
            assert_eq!(stats.equivalence_pairs, 2, "seed {seed}");
            assert_eq!(stats.rounds_compared, 2 * EQUIVALENCE_ROUNDS, "seed {seed}");
            assert_eq!(stats.audited_campaigns, 1, "seed {seed}");
            assert!(
                stats.audit_neighbours > 0,
                "seed {seed}: audit compared nothing"
            );
        }
    }

    #[test]
    fn equivalence_check_reports_oracle_failure_readably() {
        // An infeasible instance fails both runners identically; the
        // check surfaces the oracle's error rather than panicking.
        let instance = generate(Shape::InfeasibleCoverage, 1);
        let mechanism = DpHsrcAuction::new(0.5).unwrap();
        let err = check_equivalence(&mechanism, false, &instance, 1).unwrap_err();
        assert!(err.contains("legacy oracle failed"), "got: {err}");
    }
}
