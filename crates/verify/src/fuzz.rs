//! Byte-level fuzzing of the service wire decoder.
//!
//! The TCP transport hands every received line to
//! [`mcs_service::decode_request`] — a recursive-descent JSON parse, a
//! soundness walk (finiteness, duplicate keys), and typed
//! deserialization. This module drives that path with a seed corpus plus
//! random byte mutations and asserts two properties:
//!
//! 1. **No panics** — arbitrary bytes must produce `Ok` or a typed
//!    `WireError`, never an unwind (or worse, a stack overflow — the
//!    parser's recursion depth is capped for exactly this reason).
//! 2. **Round-trip stability** — any line the decoder *accepts* must
//!    re-encode and decode to the identical encoding:
//!    `encode(decode(x))` is a fixed point of `encode ∘ decode`.
//!
//! Mutations are deterministic in the seed, so a failing iteration
//! number reproduces exactly.

use std::panic::{self, AssertUnwindSafe};

use mcs_num::rng;
use mcs_service::{decode_request, decode_response, Request};
use mcs_sim::Setting;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Hand-written corpus lines compiled into the binary: valid requests
/// and responses, near-misses (missing fields, unknown tags), and the
/// pathologies the decoder must reject (duplicate keys, non-finite
/// numbers, truncation, deep nesting).
const SEED_CORPUS: &[&str] = &[
    include_str!("../tests/corpus/health.json"),
    include_str!("../tests/corpus/metrics.json"),
    include_str!("../tests/corpus/query_pmf_missing_field.json"),
    include_str!("../tests/corpus/dup_key.json"),
    include_str!("../tests/corpus/nonfinite.json"),
    include_str!("../tests/corpus/unknown_tag.json"),
    include_str!("../tests/corpus/truncated.json"),
    include_str!("../tests/corpus/busy_response.json"),
    include_str!("../tests/corpus/error_response.json"),
    include_str!("../tests/corpus/deep_nesting.json"),
];

/// Counters from one fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Inputs executed (corpus + mutations).
    pub executed: u64,
    /// Inputs the request or response decoder accepted.
    pub accepted: u64,
    /// Inputs both decoders rejected with a typed error.
    pub rejected: u64,
    /// Inputs that made a decoder panic — always a bug.
    pub panics: u64,
    /// Accepted inputs whose decode → encode → decode round trip was
    /// not a fixed point — always a bug.
    pub roundtrip_failures: u64,
}

impl FuzzOutcome {
    /// True when no invariant was violated.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.roundtrip_failures == 0
    }
}

/// The full starting corpus: compiled seed lines plus runtime-encoded
/// complex requests (real instances carry the deep nested structure —
/// bids, skill rows, grids — that hand-written lines cannot cover).
pub fn builtin_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = SEED_CORPUS
        .iter()
        .map(|s| s.trim_end().as_bytes().to_vec())
        .collect();
    for seed in [1u64, 2, 3] {
        let instance = Setting::one(80).scaled_down(16).generate(seed).instance;
        let requests = [
            Request::RunAuction {
                instance: instance.clone(),
                epsilon: 0.1 * seed as f64,
                seed,
            },
            Request::QueryPmf {
                instance,
                epsilon: 0.5,
            },
        ];
        for request in requests {
            let line = serde_json::to_string(&request).expect("requests always serialize");
            corpus.push(line.into_bytes());
        }
    }
    corpus
}

/// Runs the corpus plus `iters` seeded mutations through both decoders.
///
/// A panic inside the decoder is caught (with the panic hook silenced
/// for the duration) and counted; it never aborts the run.
pub fn run_fuzz(iters: u64, seed: u64) -> FuzzOutcome {
    let corpus = builtin_corpus();
    let mut outcome = FuzzOutcome::default();
    let previous_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    for entry in &corpus {
        execute(entry, &mut outcome);
    }
    let mut stream = rng::derived(seed, 0xF022);
    for _ in 0..iters {
        let mut bytes = corpus[stream.gen_range(0..corpus.len())].clone();
        let rounds = stream.gen_range(1usize..=4);
        for _ in 0..rounds {
            mutate(&mut bytes, &corpus, &mut stream);
        }
        execute(&bytes, &mut outcome);
    }
    panic::set_hook(previous_hook);
    outcome
}

/// Feeds one input through both decoders, updating the counters.
fn execute(bytes: &[u8], outcome: &mut FuzzOutcome) {
    // Production only ever sees UTF-8 (`read_line` enforces it), so
    // mutated bytes go through a lossy conversion rather than being
    // skipped — the replacement characters still stress the parser.
    let text = String::from_utf8_lossy(bytes);
    let line = text.trim();
    outcome.executed += 1;
    match panic::catch_unwind(AssertUnwindSafe(|| probe(line))) {
        Err(_) => outcome.panics += 1,
        Ok(Probe::Rejected) => outcome.rejected += 1,
        Ok(Probe::Accepted) => outcome.accepted += 1,
        Ok(Probe::Unstable) => {
            outcome.accepted += 1;
            outcome.roundtrip_failures += 1;
        }
    }
}

enum Probe {
    Rejected,
    Accepted,
    Unstable,
}

/// Decodes a line as a request and as a response; any accepted decode
/// must survive encode → decode with an identical re-encoding.
fn probe(line: &str) -> Probe {
    let mut any_accepted = false;
    if let Ok(request) = decode_request(line) {
        any_accepted = true;
        let encoded = serde_json::to_string(&request).expect("accepted requests re-encode");
        match decode_request(&encoded) {
            Ok(again) => {
                let twice = serde_json::to_string(&again).expect("accepted requests re-encode");
                if twice != encoded {
                    return Probe::Unstable;
                }
            }
            Err(_) => return Probe::Unstable,
        }
    }
    if let Ok(response) = decode_response(line) {
        any_accepted = true;
        let encoded = serde_json::to_string(&response).expect("accepted responses re-encode");
        match decode_response(&encoded) {
            Ok(again) => {
                let twice = serde_json::to_string(&again).expect("accepted responses re-encode");
                if twice != encoded {
                    return Probe::Unstable;
                }
            }
            Err(_) => return Probe::Unstable,
        }
    }
    if any_accepted {
        Probe::Accepted
    } else {
        Probe::Rejected
    }
}

/// One random structural mutation of `bytes`.
fn mutate(bytes: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut ChaCha8Rng) {
    match rng.gen_range(0u8..6) {
        // Flip one byte.
        0 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1u8 << rng.gen_range(0u32..8);
        }
        // Truncate at a random point.
        1 if !bytes.is_empty() => {
            bytes.truncate(rng.gen_range(0..bytes.len()));
        }
        // Insert a structural character where it hurts.
        2 => {
            const STRUCTURAL: [u8; 10] =
                [b'{', b'}', b'[', b']', b'"', b',', b':', b'-', b'e', b'0'];
            let c = STRUCTURAL[rng.gen_range(0..STRUCTURAL.len())];
            let i = rng.gen_range(0..=bytes.len());
            bytes.insert(i, c);
        }
        // Splice a window from another corpus entry.
        3 => {
            let donor = &corpus[rng.gen_range(0..corpus.len())];
            if !donor.is_empty() && !bytes.is_empty() {
                let from = rng.gen_range(0..donor.len());
                let len = rng.gen_range(1..=(donor.len() - from).min(32));
                let at = rng.gen_range(0..bytes.len());
                let end = (at + len).min(bytes.len());
                bytes.splice(at..end, donor[from..from + len].iter().copied());
            }
        }
        // Duplicate a slice in place (breeds duplicate keys).
        4 if bytes.len() >= 2 => {
            let from = rng.gen_range(0..bytes.len() - 1);
            let len = rng.gen_range(1..=(bytes.len() - from).min(24));
            let slice: Vec<u8> = bytes[from..from + len].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            for (offset, b) in slice.into_iter().enumerate() {
                bytes.insert(at + offset, b);
            }
        }
        // Mangle a digit run into an overflow literal (→ infinity).
        _ => {
            if let Some(pos) = bytes.iter().position(u8::is_ascii_digit) {
                let end = bytes[pos..]
                    .iter()
                    .position(|b| !b.is_ascii_digit())
                    .map_or(bytes.len(), |o| pos + o);
                bytes.splice(pos..end, b"1e999".iter().copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_alone_is_clean_and_exercises_both_paths() {
        let outcome = run_fuzz(0, 0);
        assert!(outcome.clean(), "{outcome:?}");
        assert!(outcome.accepted >= 5, "valid corpus lines must decode");
        assert!(outcome.rejected >= 5, "invalid corpus lines must reject");
    }

    #[test]
    fn short_mutation_run_is_deterministic_and_panic_free() {
        let a = run_fuzz(200, 7);
        let b = run_fuzz(200, 7);
        assert!(a.clean(), "{a:?}");
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
    }
}
