//! Byte-level fuzzing of the service wire decoder and the WAL reader.
//!
//! The TCP transport hands every received line to
//! [`mcs_service::decode_request`] — a recursive-descent JSON parse, a
//! soundness walk (finiteness, duplicate keys), and typed
//! deserialization. [`run_fuzz`] drives that path with a seed corpus
//! plus random byte mutations and asserts two properties:
//!
//! 1. **No panics** — arbitrary bytes must produce `Ok` or a typed
//!    `WireError`, never an unwind (or worse, a stack overflow — the
//!    parser's recursion depth is capped for exactly this reason).
//! 2. **Round-trip stability** — any line the decoder *accepts* must
//!    re-encode and decode to the identical encoding:
//!    `encode(decode(x))` is a fixed point of `encode ∘ decode`.
//!
//! [`run_wal_fuzz`] does the same to the crash-recovery path: arbitrary
//! WAL images go through [`mcs_service::recover_from_bytes`], which must
//! never panic, must be deterministic, and must hand back a valid prefix
//! that re-scans as a clean fixed point.
//!
//! Mutations are deterministic in the seed, so a failing iteration
//! number reproduces exactly.

use std::panic::{self, AssertUnwindSafe};

use ed25519::{hex_encode, SigningKey};
use mcs_num::rng;
use mcs_service::{
    decode_request, decode_response, encode_frame, recover_from_bytes, scan_bytes, BidEnvelope,
    Request, RosterEntry, RoundSpec, WalEvent, WAL_HEADER_LEN,
};
use mcs_sim::Setting;
use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Hand-written corpus lines compiled into the binary: valid requests
/// and responses, near-misses (missing fields, unknown tags), and the
/// pathologies the decoder must reject (duplicate keys, non-finite
/// numbers, truncation, deep nesting).
const SEED_CORPUS: &[&str] = &[
    include_str!("../tests/corpus/health.json"),
    include_str!("../tests/corpus/metrics.json"),
    include_str!("../tests/corpus/query_pmf_missing_field.json"),
    include_str!("../tests/corpus/dup_key.json"),
    include_str!("../tests/corpus/nonfinite.json"),
    include_str!("../tests/corpus/unknown_tag.json"),
    include_str!("../tests/corpus/truncated.json"),
    include_str!("../tests/corpus/busy_response.json"),
    include_str!("../tests/corpus/error_response.json"),
    include_str!("../tests/corpus/deep_nesting.json"),
    include_str!("../tests/corpus/uncertain_request.json"),
    include_str!("../tests/corpus/bad_probability.json"),
];

/// Counters from one fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Inputs executed (corpus + mutations).
    pub executed: u64,
    /// Inputs the request or response decoder accepted.
    pub accepted: u64,
    /// Inputs both decoders rejected with a typed error.
    pub rejected: u64,
    /// Inputs that made a decoder panic — always a bug.
    pub panics: u64,
    /// Accepted inputs whose decode → encode → decode round trip was
    /// not a fixed point — always a bug.
    pub roundtrip_failures: u64,
}

impl FuzzOutcome {
    /// True when no invariant was violated.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.roundtrip_failures == 0
    }
}

/// The full starting corpus: compiled seed lines plus runtime-encoded
/// complex requests (real instances carry the deep nested structure —
/// bids, skill rows, grids — that hand-written lines cannot cover).
pub fn builtin_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = SEED_CORPUS
        .iter()
        .map(|s| s.trim_end().as_bytes().to_vec())
        .collect();
    for seed in [1u64, 2, 3] {
        let instance = Setting::one(80).scaled_down(16).generate(seed).instance;
        let requests = [
            Request::RunAuction {
                instance: instance.clone(),
                epsilon: 0.1 * seed as f64,
                seed,
            },
            Request::QueryPmf {
                instance,
                epsilon: 0.5,
            },
        ];
        for request in requests {
            let line = serde_json::to_string(&request).expect("requests always serialize");
            corpus.push(line.into_bytes());
        }
    }
    // Chance-constrained instances carry the `completion` block — the
    // Bernoulli probability rows and per-task shortfall budgets whose
    // range checks the decoder must enforce. Mutations of these lines
    // breed out-of-range probabilities and budgets organically.
    for seed in [1u64, 2] {
        let instance = crate::gen::generate(crate::gen::Shape::UncertainTasks, seed);
        let request = Request::QueryPmf {
            instance,
            epsilon: 0.25,
        };
        let line = serde_json::to_string(&request).expect("requests always serialize");
        corpus.push(line.into_bytes());
    }
    corpus
}

/// Runs the corpus plus `iters` seeded mutations through both decoders.
///
/// A panic inside the decoder is caught (with the panic hook silenced
/// for the duration) and counted; it never aborts the run.
pub fn run_fuzz(iters: u64, seed: u64) -> FuzzOutcome {
    let corpus = builtin_corpus();
    let mut outcome = FuzzOutcome::default();
    let previous_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    for entry in &corpus {
        execute(entry, &mut outcome);
    }
    let mut stream = rng::derived(seed, 0xF022);
    for _ in 0..iters {
        let mut bytes = corpus[stream.gen_range(0..corpus.len())].clone();
        let rounds = stream.gen_range(1usize..=4);
        for _ in 0..rounds {
            mutate(&mut bytes, &corpus, &mut stream);
        }
        execute(&bytes, &mut outcome);
    }
    panic::set_hook(previous_hook);
    outcome
}

/// Feeds one input through both decoders, updating the counters.
fn execute(bytes: &[u8], outcome: &mut FuzzOutcome) {
    // Production only ever sees UTF-8 (`read_line` enforces it), so
    // mutated bytes go through a lossy conversion rather than being
    // skipped — the replacement characters still stress the parser.
    let text = String::from_utf8_lossy(bytes);
    let line = text.trim();
    outcome.executed += 1;
    match panic::catch_unwind(AssertUnwindSafe(|| probe(line))) {
        Err(_) => outcome.panics += 1,
        Ok(Probe::Rejected) => outcome.rejected += 1,
        Ok(Probe::Accepted) => outcome.accepted += 1,
        Ok(Probe::Unstable) => {
            outcome.accepted += 1;
            outcome.roundtrip_failures += 1;
        }
    }
}

enum Probe {
    Rejected,
    Accepted,
    Unstable,
}

/// Decodes a line as a request and as a response; any accepted decode
/// must survive encode → decode with an identical re-encoding.
fn probe(line: &str) -> Probe {
    let mut any_accepted = false;
    if let Ok(request) = decode_request(line) {
        any_accepted = true;
        let encoded = serde_json::to_string(&request).expect("accepted requests re-encode");
        match decode_request(&encoded) {
            Ok(again) => {
                let twice = serde_json::to_string(&again).expect("accepted requests re-encode");
                if twice != encoded {
                    return Probe::Unstable;
                }
            }
            Err(_) => return Probe::Unstable,
        }
    }
    if let Ok(response) = decode_response(line) {
        any_accepted = true;
        let encoded = serde_json::to_string(&response).expect("accepted responses re-encode");
        match decode_response(&encoded) {
            Ok(again) => {
                let twice = serde_json::to_string(&again).expect("accepted responses re-encode");
                if twice != encoded {
                    return Probe::Unstable;
                }
            }
            Err(_) => return Probe::Unstable,
        }
    }
    if any_accepted {
        Probe::Accepted
    } else {
        Probe::Rejected
    }
}

/// One random structural mutation of `bytes`.
fn mutate(bytes: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut ChaCha8Rng) {
    match rng.gen_range(0u8..6) {
        // Flip one byte.
        0 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1u8 << rng.gen_range(0u32..8);
        }
        // Truncate at a random point.
        1 if !bytes.is_empty() => {
            bytes.truncate(rng.gen_range(0..bytes.len()));
        }
        // Insert a structural character where it hurts.
        2 => {
            const STRUCTURAL: [u8; 10] =
                [b'{', b'}', b'[', b']', b'"', b',', b':', b'-', b'e', b'0'];
            let c = STRUCTURAL[rng.gen_range(0..STRUCTURAL.len())];
            let i = rng.gen_range(0..=bytes.len());
            bytes.insert(i, c);
        }
        // Splice a window from another corpus entry.
        3 => {
            let donor = &corpus[rng.gen_range(0..corpus.len())];
            if !donor.is_empty() && !bytes.is_empty() {
                let from = rng.gen_range(0..donor.len());
                let len = rng.gen_range(1..=(donor.len() - from).min(32));
                let at = rng.gen_range(0..bytes.len());
                let end = (at + len).min(bytes.len());
                bytes.splice(at..end, donor[from..from + len].iter().copied());
            }
        }
        // Duplicate a slice in place (breeds duplicate keys).
        4 if bytes.len() >= 2 => {
            let from = rng.gen_range(0..bytes.len() - 1);
            let len = rng.gen_range(1..=(bytes.len() - from).min(24));
            let slice: Vec<u8> = bytes[from..from + len].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            for (offset, b) in slice.into_iter().enumerate() {
                bytes.insert(at + offset, b);
            }
        }
        // Mangle a digit run into an overflow literal (→ infinity).
        _ => {
            if let Some(pos) = bytes.iter().position(u8::is_ascii_digit) {
                let end = bytes[pos..]
                    .iter()
                    .position(|b| !b.is_ascii_digit())
                    .map_or(bytes.len(), |o| pos + o);
                bytes.splice(pos..end, b"1e999".iter().copied());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WAL-image fuzzing

/// Checked-in WAL images compiled into the binary: a frozen valid log,
/// bare header, torn tail, checksum damage, wrong magic, an oversized
/// length field, and a non-monotonic LSN.
const WAL_SEED_CORPUS: &[&[u8]] = &[
    include_bytes!("../tests/corpus/wal_valid.bin"),
    include_bytes!("../tests/corpus/wal_header_only.bin"),
    include_bytes!("../tests/corpus/wal_torn_tail.bin"),
    include_bytes!("../tests/corpus/wal_bad_crc.bin"),
    include_bytes!("../tests/corpus/wal_bad_magic.bin"),
    include_bytes!("../tests/corpus/wal_oversized_len.bin"),
    include_bytes!("../tests/corpus/wal_dup_lsn.bin"),
];

/// Counters from one WAL fuzz run.
#[derive(Debug, Clone, Default)]
pub struct WalFuzzOutcome {
    /// Images executed (corpus + mutations).
    pub executed: u64,
    /// Images the recovery path accepted (possibly with a torn tail).
    pub recovered: u64,
    /// Images rejected with a typed [`mcs_service::WalError`].
    pub rejected: u64,
    /// Images that made recovery panic — always a bug.
    pub panics: u64,
    /// Accepted images whose recovery was non-deterministic or whose
    /// valid prefix failed to re-scan as a clean fixed point — always a
    /// bug.
    pub instability: u64,
}

impl WalFuzzOutcome {
    /// True when no invariant was violated.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.instability == 0
    }
}

/// Builds a deterministic valid WAL image: two rounds of signed bids,
/// one committed-paid-settled, one aborted. This is the live-format twin
/// of the frozen `wal_valid.bin` (which pins the *historical* layout).
pub fn build_wal_image() -> Vec<u8> {
    let key_for = |worker: u32| {
        let mut seed = [0u8; 32];
        seed[..4].copy_from_slice(&worker.to_le_bytes());
        seed[31] = 0xF2;
        SigningKey::from_seed(seed)
    };
    let spec = |round_id: u64| RoundSpec {
        round_id,
        num_tasks: 2,
        error_bounds: vec![0.8, 0.8],
        price_min: Price::from_f64(1.0),
        price_max: Price::from_f64(10.0),
        price_step: Price::from_f64(1.0),
        cost_min: Price::from_f64(1.0),
        cost_max: Price::from_f64(10.0),
        epsilon: 0.5,
        roster: (0..2)
            .map(|w| RosterEntry {
                worker: WorkerId(w),
                public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                skills: vec![0.9, 0.9],
            })
            .collect(),
    };
    let mut events = Vec::new();
    for round_id in [1u64, 2] {
        events.push(WalEvent::RoundOpened {
            spec: spec(round_id),
        });
        for worker in 0..2u32 {
            let bid = Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(2.0 + f64::from(worker)),
            );
            let nonce = round_id * 10 + u64::from(worker);
            let envelope = BidEnvelope::sign(
                round_id,
                WorkerId(worker),
                bid.clone(),
                nonce,
                u64::MAX,
                &key_for(worker),
            );
            events.push(WalEvent::BidAdmitted {
                round_id,
                worker: WorkerId(worker),
                nonce,
                expires_at_ms: u64::MAX,
                bid,
                signature: envelope.signature_bytes().expect("signed envelope"),
            });
        }
    }
    events.push(WalEvent::AuctionCommitted {
        round_id: 1,
        seed: 7,
        price: Price::from_f64(4.0),
        winners: vec![WorkerId(0), WorkerId(1)],
    });
    for worker in 0..2u32 {
        events.push(WalEvent::PaymentIssued {
            round_id: 1,
            worker: WorkerId(worker),
            amount: Price::from_f64(4.0),
        });
    }
    events.push(WalEvent::RoundSettled { round_id: 1 });
    events.push(WalEvent::RoundAborted {
        round_id: 2,
        reason: mcs_service::AbortReason::Requested,
    });

    let mut image = Vec::new();
    image.extend_from_slice(b"MCSWAL01");
    image.extend_from_slice(&1u64.to_le_bytes());
    for (i, event) in events.iter().enumerate() {
        image.extend_from_slice(&encode_frame(1 + i as u64, &event.encode()));
    }
    image
}

/// The full WAL starting corpus: checked-in images plus the live-format
/// golden image.
pub fn wal_builtin_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = WAL_SEED_CORPUS.iter().map(|b| b.to_vec()).collect();
    corpus.push(build_wal_image());
    corpus
}

/// Runs the WAL corpus plus `iters` seeded mutations through the
/// recovery path.
///
/// A panic inside recovery is caught (with the panic hook silenced for
/// the duration) and counted; it never aborts the run.
pub fn run_wal_fuzz(iters: u64, seed: u64) -> WalFuzzOutcome {
    let corpus = wal_builtin_corpus();
    let mut outcome = WalFuzzOutcome::default();
    let previous_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    for entry in &corpus {
        wal_execute(entry, &mut outcome);
    }
    let mut stream = rng::derived(seed, 0x3A1F);
    for _ in 0..iters {
        let mut bytes = corpus[stream.gen_range(0..corpus.len())].clone();
        let rounds = stream.gen_range(1usize..=4);
        for _ in 0..rounds {
            wal_mutate(&mut bytes, &corpus, &mut stream);
        }
        wal_execute(&bytes, &mut outcome);
    }
    panic::set_hook(previous_hook);
    outcome
}

/// Feeds one image through recovery twice, updating the counters.
fn wal_execute(bytes: &[u8], outcome: &mut WalFuzzOutcome) {
    outcome.executed += 1;
    let result = panic::catch_unwind(AssertUnwindSafe(|| wal_probe(bytes)));
    match result {
        Err(_) => outcome.panics += 1,
        Ok(WalProbe::Rejected) => outcome.rejected += 1,
        Ok(WalProbe::Recovered) => outcome.recovered += 1,
        Ok(WalProbe::Unstable) => {
            outcome.recovered += 1;
            outcome.instability += 1;
        }
    }
}

enum WalProbe {
    Rejected,
    Recovered,
    Unstable,
}

/// Recovery must be deterministic, and the valid prefix it reports must
/// re-scan cleanly to the identical frame sequence (fixed point).
fn wal_probe(bytes: &[u8]) -> WalProbe {
    let first = recover_from_bytes(bytes);
    let second = recover_from_bytes(bytes);
    match (first, second) {
        (Err(_), Err(_)) => WalProbe::Rejected,
        (Ok((ledger_a, scan_a)), Ok((ledger_b, scan_b))) => {
            if ledger_a != ledger_b || scan_a != scan_b {
                return WalProbe::Unstable;
            }
            let prefix = &bytes[..scan_a.valid_len as usize];
            match scan_bytes(prefix) {
                Ok(rescan) if rescan.defect.is_none() && rescan.frames == scan_a.frames => {
                    WalProbe::Recovered
                }
                _ => WalProbe::Unstable,
            }
        }
        _ => WalProbe::Unstable,
    }
}

/// One random structural mutation of a WAL image.
fn wal_mutate(bytes: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut ChaCha8Rng) {
    let header = WAL_HEADER_LEN as usize;
    match rng.gen_range(0u8..7) {
        // Flip one bit anywhere (header, length, CRC, LSN, payload).
        0 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1u8 << rng.gen_range(0u32..8);
        }
        // Truncate at a random point (torn tail).
        1 if !bytes.is_empty() => {
            bytes.truncate(rng.gen_range(0..bytes.len()));
        }
        // Mangle 4 bytes into a huge little-endian value — lands on a
        // length field often enough to probe the oversized-frame guard.
        2 if bytes.len() > header + 4 => {
            let i = rng.gen_range(header..bytes.len() - 4);
            let v: u32 = rng.gen_range(mcs_service::MAX_FRAME_LEN..u32::MAX);
            bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        }
        // Duplicate a window in place (breeds repeated / non-monotonic
        // LSNs and shifted frame starts).
        3 if bytes.len() >= 2 => {
            let from = rng.gen_range(0..bytes.len() - 1);
            let len = rng.gen_range(1..=(bytes.len() - from).min(64));
            let slice: Vec<u8> = bytes[from..from + len].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            for (offset, b) in slice.into_iter().enumerate() {
                bytes.insert(at + offset, b);
            }
        }
        // Splice a window from another corpus image.
        4 => {
            let donor = &corpus[rng.gen_range(0..corpus.len())];
            if !donor.is_empty() && !bytes.is_empty() {
                let from = rng.gen_range(0..donor.len());
                let len = rng.gen_range(1..=(donor.len() - from).min(64));
                let at = rng.gen_range(0..bytes.len());
                let end = (at + len).min(bytes.len());
                bytes.splice(at..end, donor[from..from + len].iter().copied());
            }
        }
        // Append random junk (trailing garbage after a clean log).
        5 => {
            let extra = rng.gen_range(1usize..32);
            for _ in 0..extra {
                bytes.push(rng.gen_range(0u16..256) as u8);
            }
        }
        // Zero a range (simulates sparse-file holes after a crash).
        _ if !bytes.is_empty() => {
            let from = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=(bytes.len() - from).min(48));
            for b in &mut bytes[from..from + len] {
                *b = 0;
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_alone_is_clean_and_exercises_both_paths() {
        let outcome = run_fuzz(0, 0);
        assert!(outcome.clean(), "{outcome:?}");
        assert!(outcome.accepted >= 5, "valid corpus lines must decode");
        assert!(outcome.rejected >= 5, "invalid corpus lines must reject");
    }

    #[test]
    fn uncertain_corpus_line_decodes_and_bad_probability_rejects_typed() {
        let valid = include_str!("../tests/corpus/uncertain_request.json");
        let request = decode_request(valid.trim()).expect("uncertain corpus line decodes");
        let Request::QueryPmf { instance, .. } = request else {
            panic!("uncertain corpus line is a QueryPmf request");
        };
        assert!(instance.completion().is_uncertain());

        let bad = include_str!("../tests/corpus/bad_probability.json");
        match decode_request(bad.trim()) {
            Err(mcs_service::WireError::InvalidProbability {
                worker,
                task,
                value,
            }) => {
                assert_eq!((worker, task), (0, 0));
                assert!(value > 1.0, "corrupted probability is {value}");
            }
            other => panic!("expected typed probability rejection, got {other:?}"),
        }
    }

    #[test]
    fn short_mutation_run_is_deterministic_and_panic_free() {
        let a = run_fuzz(200, 7);
        let b = run_fuzz(200, 7);
        assert!(a.clean(), "{a:?}");
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn wal_corpus_alone_is_clean_and_exercises_both_paths() {
        let outcome = run_wal_fuzz(0, 0);
        assert!(outcome.clean(), "{outcome:?}");
        assert!(outcome.recovered >= 2, "valid/torn images must recover");
        assert!(outcome.rejected >= 1, "bad-magic image must reject");
    }

    #[test]
    fn short_wal_mutation_run_is_deterministic_and_panic_free() {
        let a = run_wal_fuzz(200, 7);
        let b = run_wal_fuzz(200, 7);
        assert!(a.clean(), "{a:?}");
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn live_wal_image_is_valid_and_deterministic() {
        let image = build_wal_image();
        assert_eq!(image, build_wal_image());
        let (ledger, scan) = recover_from_bytes(&image).expect("golden image recovers");
        assert!(scan.defect.is_none());
        assert_eq!(ledger.total_rounds(), 2);
    }
}
