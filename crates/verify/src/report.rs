//! Minimized counterexample reports.
//!
//! A failing check on an 8-worker instance is hard to debug; the same
//! failure on the 3-worker core that remains after greedy minimization
//! usually is not. Reports carry the minimized instance in a compact
//! textual form that can be transcribed straight into a regression test.

use std::fmt;

use mcs_types::Instance;

/// A reproducible description of one failed check.
#[derive(Debug, Clone)]
pub struct CounterexampleReport {
    /// Generator shape that produced the original instance.
    pub shape: &'static str,
    /// Generator seed of the original instance.
    pub seed: u64,
    /// Which invariant failed (short identifier).
    pub check: String,
    /// The failure message from the check.
    pub detail: String,
    /// The minimized instance still exhibiting the failure.
    pub instance: Instance,
}

impl fmt::Display for CounterexampleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "check `{}` failed on shape {} seed {}: {}",
            self.check, self.shape, self.seed, self.detail
        )?;
        writeln!(
            f,
            "minimized instance ({} workers, {} tasks):",
            self.instance.num_workers(),
            self.instance.num_tasks()
        )?;
        write!(f, "{}", render_instance(&self.instance))
    }
}

impl std::error::Error for CounterexampleReport {}

/// Renders an instance compactly, one worker per line.
pub fn render_instance(inst: &Instance) -> String {
    use fmt::Write;

    let mut out = String::new();
    for (w, bid) in inst.bids().iter() {
        let tasks: Vec<String> = bid.bundle().iter().map(|t| t.0.to_string()).collect();
        let thetas: Vec<String> = (0..inst.num_tasks())
            .map(|j| format!("{:.3}", inst.skills().theta(w, mcs_types::TaskId(j as u32))))
            .collect();
        let _ = writeln!(
            out,
            "  w{}: bid {:.1} on {{{}}}  θ = [{}]",
            w.0,
            bid.price().as_f64(),
            tasks.join(","),
            thetas.join(", ")
        );
    }
    let reqs: Vec<String> = inst
        .coverage_problem()
        .requirements()
        .iter()
        .map(|q| format!("{q:.4}"))
        .collect();
    let _ = writeln!(out, "  requirements Q' = [{}]", reqs.join(", "));
    let grid = inst.price_grid();
    let prices: Vec<f64> = grid.iter().map(|p| p.as_f64()).collect();
    let _ = writeln!(
        out,
        "  grid [{:.1}, {:.1}] ({} prices), costs in [{:.1}, {:.1}]",
        prices.first().copied().unwrap_or(f64::NAN),
        prices.last().copied().unwrap_or(f64::NAN),
        prices.len(),
        inst.cmin().as_f64(),
        inst.cmax().as_f64(),
    );
    out
}
