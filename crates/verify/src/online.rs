//! Differential and privacy verification of the streaming online auction.
//!
//! Three claims tie `mcs-sim`'s online subsystem to the offline stack,
//! and each is checked here per instance:
//!
//! 1. **Degenerate reduction** — on the degenerate timeline (everyone
//!    present at `t = 0`, no departures, threshold learned from the whole
//!    pool) the stage-sampling mechanism in lookahead mode must admit
//!    *byte-identically* the offline engine's cheapest-feasible winner
//!    set, under every arrival permutation tried. On an infeasible
//!    instance both sides must fail.
//! 2. **Replay agreement** — the incremental hindsight pricer
//!    ([`mcs_auction::OnlinePricer`], PR 5's warm-started replay) must
//!    produce, at every arrival, the same quote and the same admission
//!    decision as a from-scratch `build_residual` of the arrived pool.
//! 3. **Posted-price ε-DP** — with [`StageThreshold::epsilon`] set, the
//!    posted price is drawn from the exponential-mechanism PMF over the
//!    *sample* schedule. For neighbouring bid profiles of sample workers
//!    the analytic PMFs must satisfy the `ε` log-ratio bound, exactly as
//!    the offline price channel does (support shifts are counted, not
//!    failed, mirroring [`crate::dp::exact_dp_check`]).

use mcs_auction::{privacy, ExponentialMechanism, ScheduleEngine, SelectionRule};
use mcs_num::rng;
use mcs_sim::online::{
    ArrivalTimeline, OnlineMechanism, PricingPath, StageThreshold, TimelineConfig,
};
use mcs_types::{Bid, CoverageView, Instance, Price, WorkerId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Slack for floating-point comparisons against analytic bounds.
const TOL: f64 = 1e-9;
/// Arrival permutations tried per degenerate-reduction check.
const PERMUTATIONS: usize = 3;
/// Sample workers probed per posted-price DP check.
const DP_WORKERS: usize = 3;
/// Observation prefix used by every checked mechanism configuration.
const SAMPLE_FRACTION: f64 = 0.25;

/// Aggregate statistics over a sweep of online checks.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    /// Instances whose degenerate reduction matched byte-for-byte.
    pub degenerate_ok: u64,
    /// Infeasible instances where online and offline agreed to fail.
    pub degenerate_err: u64,
    /// Arrivals where the incremental and from-scratch quotes agreed.
    pub replay_arrivals: u64,
    /// Neighbour pairs whose posted-price log-ratio was checked.
    pub dp_pairs: u64,
    /// Neighbour pairs whose sample-schedule support shifted.
    pub dp_support_shifts: u64,
    /// Largest observed posted-price log-probability ratio.
    pub max_log_ratio: f64,
    /// Rounds that fully covered online (competitive ratio defined).
    pub covered_rounds: u64,
    /// Largest observed online/offline competitive ratio.
    pub max_competitive_ratio: f64,
}

impl OnlineStats {
    /// Folds another batch of statistics into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        self.degenerate_ok += other.degenerate_ok;
        self.degenerate_err += other.degenerate_err;
        self.replay_arrivals += other.replay_arrivals;
        self.dp_pairs += other.dp_pairs;
        self.dp_support_shifts += other.dp_support_shifts;
        self.max_log_ratio = self.max_log_ratio.max(other.max_log_ratio);
        self.covered_rounds += other.covered_rounds;
        self.max_competitive_ratio = self.max_competitive_ratio.max(other.max_competitive_ratio);
    }
}

/// Runs every online check on one instance.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn online_check(instance: &Instance, epsilon: f64, seed: u64) -> Result<OnlineStats, String> {
    let mut stats = OnlineStats::default();
    degenerate_reduction(instance, seed, &mut stats)?;
    let offline = ScheduleEngine::new(SelectionRule::MarginalCoverage).build(instance);
    if offline.is_err() {
        // Infeasible pool: the degenerate check above already verified
        // online agrees; the streaming and DP checks need coverage.
        return Ok(stats);
    }
    replay_agreement(instance, seed, &mut stats)?;
    posted_price_dp(instance, epsilon, seed, &mut stats)?;
    Ok(stats)
}

/// Check 1: the degenerate timeline reproduces the offline round
/// byte-identically, for [`PERMUTATIONS`] shuffled arrival orders (plus
/// the canonical worker-id order).
fn degenerate_reduction(
    instance: &Instance,
    seed: u64,
    stats: &mut OnlineStats,
) -> Result<(), String> {
    let offline = ScheduleEngine::new(SelectionRule::MarginalCoverage).build(instance);
    let mech = StageThreshold::new().lookahead(true);
    let mut order: Vec<WorkerId> = (0..instance.num_workers() as u32).map(WorkerId).collect();
    let mut shuffler = rng::derived(seed, 0x4F4E_0001);
    for round in 0..=PERMUTATIONS {
        if round > 0 {
            order.shuffle(&mut shuffler);
        }
        let timeline = if round == 0 {
            ArrivalTimeline::degenerate(instance)
        } else {
            ArrivalTimeline::from_order(&order)
        };
        let report = mech.run(instance, &timeline, seed);
        match (&offline, report) {
            (Ok(schedule), Ok(report)) => {
                let threshold = report
                    .threshold
                    .ok_or_else(|| "lookahead report lost its threshold".to_string())?;
                let online = serde_json::to_string(&mcs_auction::AuctionOutcome::new(
                    threshold.price,
                    report.accepted.clone(),
                ))
                .map_err(|e| format!("encode online outcome: {e}"))?;
                let offline_bytes = serde_json::to_string(&mcs_auction::AuctionOutcome::new(
                    schedule.price(0),
                    schedule.winners(0).to_vec(),
                ))
                .map_err(|e| format!("encode offline outcome: {e}"))?;
                if online != offline_bytes {
                    return Err(format!(
                        "degenerate reduction diverged (permutation {round}): \
                         online {online} vs offline {offline_bytes}"
                    ));
                }
                if report.total_payment != schedule.total_payment(0) {
                    return Err(format!(
                        "degenerate reduction: online paid {} but offline bar is {}",
                        report.total_payment,
                        schedule.total_payment(0)
                    ));
                }
                stats.degenerate_ok += 1;
            }
            (Err(_), Err(_)) => stats.degenerate_err += 1,
            (Ok(_), Err(e)) => {
                return Err(format!(
                    "offline covers but the lookahead online round failed: {e:?}"
                ))
            }
            (Err(e), Ok(_)) => {
                return Err(format!(
                    "offline is infeasible ({e:?}) but the lookahead online round succeeded"
                ))
            }
        }
    }
    Ok(())
}

/// Check 2: incremental and from-scratch hindsight pricing agree on
/// every arrival's quote and on every admission decision.
fn replay_agreement(instance: &Instance, seed: u64, stats: &mut OnlineStats) -> Result<(), String> {
    let timeline = ArrivalTimeline::generate(instance, &TimelineConfig::default(), seed);
    let base = StageThreshold::new().sample_fraction(SAMPLE_FRACTION);
    let incremental = base
        .pricing(PricingPath::Incremental)
        .run(instance, &timeline, seed)
        .map_err(|e| format!("incremental online round failed: {e:?}"))?;
    let scratch = base
        .pricing(PricingPath::FromScratch)
        .run(instance, &timeline, seed)
        .map_err(|e| format!("from-scratch online round failed: {e:?}"))?;
    for (a, b) in incremental.decisions.iter().zip(&scratch.decisions) {
        if a.hindsight != b.hindsight {
            return Err(format!(
                "hindsight quote diverged at worker w{}: incremental {:?} vs scratch {:?}",
                a.worker.0, a.hindsight, b.hindsight
            ));
        }
        if a.decision != b.decision {
            return Err(format!(
                "admission decision diverged at worker w{}: {:?} vs {:?}",
                a.worker.0, a.decision, b.decision
            ));
        }
        stats.replay_arrivals += 1;
    }
    if incremental.accepted != scratch.accepted
        || incremental.total_payment != scratch.total_payment
    {
        return Err("round totals diverged between pricing paths".to_string());
    }
    if incremental.covered {
        stats.covered_rounds += 1;
        if let Some(ratio) = incremental.competitive_ratio {
            stats.max_competitive_ratio = stats.max_competitive_ratio.max(ratio);
        }
    }
    Ok(())
}

/// Check 3: the posted-price channel is ε-DP in the sample bids — the
/// exponential-mechanism PMF over the sample schedule respects the
/// log-ratio bound across neighbouring profiles of sample workers.
fn posted_price_dp(
    instance: &Instance,
    epsilon: f64,
    seed: u64,
    stats: &mut OnlineStats,
) -> Result<(), String> {
    let timeline = ArrivalTimeline::generate(instance, &TimelineConfig::default(), seed);
    let n = timeline.len();
    let cover = instance.sparse_coverage();
    let requirements = cover.requirements().to_vec();
    let engine = ScheduleEngine::new(SelectionRule::MarginalCoverage);
    // The ε-DP bound holds for the price lottery over *whatever* observed
    // prefix the threshold is learned from, so when the mechanism's default
    // sample cannot cover (it then has no lottery — a deterministic
    // permissive fallback), escalate the prefix until one builds. The full
    // pool always does: `online_check` verified offline feasibility first.
    let mut built = None;
    for fraction in [SAMPLE_FRACTION, 2.0 * SAMPLE_FRACTION, 1.0] {
        let sample_size = ((fraction * n as f64).ceil() as usize).min(n);
        let pool: Vec<WorkerId> = timeline.arrivals()[..sample_size]
            .iter()
            .map(|a| a.worker)
            .collect();
        if let Ok(schedule) = engine.build_residual(instance, &requirements, &pool) {
            built = Some((pool, schedule));
            break;
        }
    }
    let Some((sample_pool, schedule)) = built else {
        return Err("full arrived pool failed to cover a feasible instance".to_string());
    };
    let mechanism = ExponentialMechanism::for_instance(epsilon, instance)
        .map_err(|e| format!("bad epsilon {epsilon}: {e:?}"))?;
    let truthful = mechanism.pmf(schedule);

    let mut stream = rng::derived(seed, 0x4F4E_0002);
    for &worker in sample_pool.iter().take(DP_WORKERS) {
        let current = instance.bids().bid(worker);
        let lo = instance.cmin().tenths();
        let hi = instance.cmax().tenths();
        let now = current.price().tenths();
        // Cost extremes stress the channel but usually shift the sample
        // schedule's feasible-price support (recorded, compared only when
        // possible); the ±1-tenth nudges almost never do, so they supply
        // genuinely comparable neighbouring lotteries.
        let mut picks = vec![
            lo,
            hi,
            (now - 1).max(lo),
            (now + 1).min(hi),
            stream.gen_range(lo..=hi),
        ];
        picks.sort_unstable();
        picks.dedup();
        picks.retain(|&t| t != now);
        for tenths in picks {
            let bid = Bid::new(current.bundle().clone(), Price::from_tenths(tenths));
            let neighbour = instance
                .with_bid(worker, bid)
                .map_err(|e| format!("neighbour rejected: {e:?}"))?;
            let Ok(other_schedule) = engine.build_residual(&neighbour, &requirements, &sample_pool)
            else {
                stats.dp_support_shifts += 1;
                continue;
            };
            let other_mechanism = ExponentialMechanism::for_instance(epsilon, &neighbour)
                .map_err(|e| format!("bad epsilon {epsilon}: {e:?}"))?;
            let other = other_mechanism.pmf(other_schedule);
            match privacy::dp_log_ratio(&truthful, &other) {
                None => stats.dp_support_shifts += 1,
                Some(ratio) => {
                    stats.dp_pairs += 1;
                    stats.max_log_ratio = stats.max_log_ratio.max(ratio);
                    if ratio > epsilon + TOL {
                        return Err(format!(
                            "posted-price channel: worker w{} log-ratio {ratio:.6} \
                             exceeds ε = {epsilon}",
                            worker.0
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};

    #[test]
    fn online_arrivals_shape_passes_all_checks() {
        for seed in 0..10u64 {
            let inst = generate(Shape::OnlineArrivals, seed);
            let stats =
                online_check(&inst, 0.5, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(stats.degenerate_ok >= 1, "seed {seed}");
            assert!(stats.replay_arrivals > 0, "seed {seed}");
        }
    }

    #[test]
    fn structural_shapes_pass_the_online_checks_too() {
        for shape in [Shape::Uniform, Shape::TiedPrices, Shape::DegenerateBundles] {
            for seed in 0..5u64 {
                let inst = generate(shape, seed);
                online_check(&inst, 0.5, seed)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", shape.name()));
            }
        }
    }

    #[test]
    fn infeasible_instances_agree_to_fail() {
        let inst = generate(Shape::InfeasibleCoverage, 2);
        let stats = online_check(&inst, 0.5, 2).expect("agreement on failure");
        assert_eq!(stats.degenerate_ok, 0);
        assert!(stats.degenerate_err >= 1);
        assert_eq!(stats.replay_arrivals, 0, "no streaming on infeasible pools");
    }

    #[test]
    fn posted_price_dp_sees_real_pairs_on_the_online_shape() {
        // Perturbing a sample worker's bid to a cost extreme often shifts
        // the sample schedule's feasible-price support (recorded, not a
        // failure), so scan enough seeds that genuine comparable pairs show
        // up alongside the shifts.
        let mut pairs = 0;
        let mut shifts = 0;
        for seed in 0..40u64 {
            let inst = generate(Shape::OnlineArrivals, seed);
            let stats = online_check(&inst, 0.5, seed).expect("checks pass");
            pairs += stats.dp_pairs;
            shifts += stats.dp_support_shifts;
            assert!(stats.max_log_ratio <= 0.5 + 1e-9);
        }
        assert!(
            pairs > 0,
            "DP check never compared a real pair across 40 seeds ({shifts} support shifts)"
        );
    }
}
