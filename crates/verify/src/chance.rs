//! Monte Carlo verification of the chance-constrained coverage layer.
//!
//! The chance-constrained transformation promises: if every winner set
//! satisfies the *inflated* quota `R_j = chance_quota(Q_j, γ_j)` on the
//! *discounted* weights `p·q`, then under independent Bernoulli
//! completions the probability that realized raw coverage falls below
//! the base quota `Q_j` is at most `γ_j`. This module checks both sides
//! of that contract on generated instances:
//!
//! 1. **Monte Carlo shortfall** — [`check_instance`] builds the price
//!    schedule, takes the winner set of the cheapest entry (the one
//!    `min_total_payment` selects), and samples each winner's task
//!    completions ≥ 10⁴ times from the *raw* model (skill weights
//!    `q = (2θ−1)²` and per-entry probabilities straight off the
//!    [`Instance`], not the decomposed effective weights). The empirical
//!    per-task shortfall rate must be statistically consistent with the
//!    bound `γ_j`: its Wilson lower confidence bound at `z` must not
//!    exceed `γ_j` (the same PR-4 interval machinery the DP checks use).
//!    Tasks with no uncertain entry must never fall short — their
//!    coverage is deterministic.
//!
//! 2. **Degenerate reduction** — [`check_unit_reduction`] proves the
//!    `p = 1` invariant *observationally*: rewriting every probability
//!    to 1 ([`CompletionModel::with_unit_probabilities`]) and dropping
//!    the model entirely must produce byte-identical schedules (prices,
//!    winners, per-entry payments), identical `min_total_payment`, and
//!    identical instance digests across **every** strategy and selection
//!    rule. The uncertain layer is provably pay-for-what-you-use: no
//!    probability strictly below one, no behavior change anywhere.

use mcs_auction::{ScheduleEngine, SelectionRule, Strategy};
use mcs_num::{rate_consistent_with_bound, rng};
use mcs_types::{
    chernoff_shortfall_bound, CompletionModel, CoverageView, Instance, TaskId, WorkerId,
};
use rand::Rng;

use crate::gen::Shape;
use crate::report::CounterexampleReport;

/// Slack when comparing sampled raw coverage against the base quota.
const COVER_EPS: f64 = 1e-9;
/// Stream tag separating Monte Carlo completion draws from every other
/// derived stream ("MCSHRT").
const MC_STREAM: u64 = 0x4D43_5348_5254;

/// Aggregate statistics over a sweep of Monte Carlo shortfall checks.
#[derive(Debug, Clone, Default)]
pub struct ChanceStats {
    /// Instances whose empirical shortfall stayed within every `γ_j`.
    pub checked: u64,
    /// Samples drawn per instance.
    pub samples: u64,
    /// Largest observed `empirical rate / γ_j` across all uncertain
    /// tasks (1.0 means some task used its whole budget).
    pub max_rate_ratio: f64,
    /// Largest analytic Chernoff bound observed at the sampled winner
    /// set's discounted coverage (context: how conservative `γ` was).
    pub max_analytic_bound: f64,
}

impl ChanceStats {
    /// Folds another batch of statistics into this one.
    pub fn merge(&mut self, other: &ChanceStats) {
        self.checked += other.checked;
        self.samples = self.samples.max(other.samples);
        self.max_rate_ratio = self.max_rate_ratio.max(other.max_rate_ratio);
        self.max_analytic_bound = self.max_analytic_bound.max(other.max_analytic_bound);
    }
}

/// Per-winner completion trials for one task: `(q, p)` pairs.
type TaskTrials = Vec<(f64, f64)>;

/// Collects, for each task, the `(raw weight, completion probability)`
/// of every winner whose bundle covers it.
fn trials_by_task(instance: &Instance, winners: &[WorkerId]) -> Vec<TaskTrials> {
    let mut by_task: Vec<TaskTrials> = vec![Vec::new(); instance.num_tasks()];
    for &w in winners {
        for t in instance.bids().bid(w).bundle().iter() {
            let theta = instance.skills().theta(w, t);
            let q = (2.0 * theta - 1.0).powi(2);
            if q > 0.0 {
                by_task[t.0 as usize].push((q, instance.completion().p(w, t)));
            }
        }
    }
    by_task
}

/// Monte Carlo check of one instance: samples the cheapest schedule
/// entry's winner set and verifies every task's empirical shortfall
/// rate against its budget `γ_j` at Wilson confidence `z`.
///
/// Instances that fail to build a schedule (e.g. infeasible after
/// inflation) are skipped with `checked = 0` — the differential sweep
/// owns feasibility agreement, not this module.
///
/// # Errors
///
/// Returns a [`CounterexampleReport`] naming the task whose observed
/// shortfall rate is statistically inconsistent with its bound, or that
/// fell short despite having no uncertain entries.
pub fn check_instance(
    shape: Shape,
    seed: u64,
    instance: &Instance,
    samples: u64,
    z: f64,
) -> Result<ChanceStats, Box<CounterexampleReport>> {
    let schedule = match ScheduleEngine::new(SelectionRule::MarginalCoverage).build(instance) {
        Ok(s) if !s.is_empty() => s,
        _ => return Ok(ChanceStats::default()),
    };
    // The entry min_total_payment() selects: cheapest total, first index
    // on ties (matching the Option::min semantics over (payment, idx)).
    let cheapest = (0..schedule.len())
        .min_by_key(|&i| (schedule.total_payment(i), i))
        .expect("non-empty schedule");
    let winners = schedule.winners(cheapest);
    let by_task = trials_by_task(instance, winners);
    let cover = instance.sparse_coverage();

    let mut r = rng::derived(seed, MC_STREAM);
    let mut shortfalls = vec![0u64; instance.num_tasks()];
    for _ in 0..samples {
        for (j, trials) in by_task.iter().enumerate() {
            let realized: f64 = trials
                .iter()
                .map(|&(q, p)| if r.gen_bool(p) { q } else { 0.0 })
                .sum();
            let base = cover.base_requirement(TaskId(j as u32));
            if realized < base - COVER_EPS {
                shortfalls[j] += 1;
            }
        }
    }

    let mut stats = ChanceStats {
        checked: 1,
        samples,
        ..ChanceStats::default()
    };
    for j in 0..instance.num_tasks() {
        let t = TaskId(j as u32);
        let uncertain_task = by_task[j].iter().any(|&(_, p)| p < 1.0);
        let rate = shortfalls[j] as f64 / samples as f64;
        match cover.shortfall_bound(t) {
            Some(gamma) if uncertain_task => {
                if !rate_consistent_with_bound(shortfalls[j], samples, gamma, z) {
                    return Err(report(
                        shape,
                        seed,
                        instance,
                        "mc-shortfall",
                        format!(
                            "task {t}: empirical shortfall {rate:.5} over {samples} samples is \
                             inconsistent with gamma = {gamma:.5} at z = {z}"
                        ),
                    ));
                }
                stats.max_rate_ratio = stats.max_rate_ratio.max(rate / gamma);
                // Context: the analytic bound at the winner set's actual
                // discounted coverage (tighter than γ whenever the
                // winners over-cover the inflated quota).
                let mu: f64 = by_task[j].iter().map(|&(q, p)| q * p).sum();
                let analytic = chernoff_shortfall_bound(mu, cover.base_requirement(t));
                stats.max_analytic_bound = stats.max_analytic_bound.max(analytic);
            }
            _ => {
                // Tasks with all-certain coverage must never fall short:
                // their winners' raw weights meet the (uninflated)
                // requirement deterministically.
                if shortfalls[j] > 0 {
                    return Err(report(
                        shape,
                        seed,
                        instance,
                        "mc-certain-shortfall",
                        format!(
                            "certain task {t} fell short in {} of {samples} samples",
                            shortfalls[j]
                        ),
                    ));
                }
            }
        }
    }
    Ok(stats)
}

/// Proves the `p = 1` degenerate invariant on one instance: the all-ones
/// Bernoulli model and the plain deterministic model yield byte-identical
/// digests, schedules, per-entry payments, and `min_total_payment` for
/// **every** strategy under **both** selection rules.
///
/// # Errors
///
/// Returns a [`CounterexampleReport`] naming the first strategy/rule pair
/// that observed a difference.
pub fn check_unit_reduction(
    shape: Shape,
    seed: u64,
    instance: &Instance,
) -> Result<(), Box<CounterexampleReport>> {
    let unit = instance
        .with_completion(instance.completion().with_unit_probabilities())
        .expect("unit probabilities are a valid model");
    let det = instance
        .with_completion(CompletionModel::Deterministic)
        .expect("the deterministic model is always valid");

    if unit.digest() != det.digest() {
        return Err(report(
            shape,
            seed,
            instance,
            "unit-reduction/digest",
            "all-ones Bernoulli digest differs from the deterministic digest".to_string(),
        ));
    }

    for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
        for strategy in Strategy::ALL {
            let a = ScheduleEngine::new(rule).strategy(strategy).build(&unit);
            let b = ScheduleEngine::new(rule).strategy(strategy).build(&det);
            let agree = match (&a, &b) {
                (Ok(a), Ok(b)) => {
                    a.prices() == b.prices()
                        && (0..a.len()).all(|i| {
                            a.winners(i) == b.winners(i) && a.total_payment(i) == b.total_payment(i)
                        })
                        && a.min_total_payment() == b.min_total_payment()
                }
                (Err(ea), Err(eb)) => ea.to_string() == eb.to_string(),
                _ => false,
            };
            if !agree {
                return Err(report(
                    shape,
                    seed,
                    instance,
                    format!("unit-reduction/{rule:?}").as_str(),
                    format!(
                        "strategy {} diverges between all-ones Bernoulli and deterministic",
                        strategy.name()
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn report(
    shape: Shape,
    seed: u64,
    instance: &Instance,
    check: &str,
    detail: String,
) -> Box<CounterexampleReport> {
    Box::new(CounterexampleReport {
        shape: shape.name(),
        seed,
        check: check.to_string(),
        detail,
        instance: instance.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Shape};

    /// Debug-suite sample count: enough for the Wilson interval to have
    /// teeth without slowing `cargo test`; the sweep binary runs the full
    /// 10⁴ per instance.
    const TEST_SAMPLES: u64 = 2_000;
    /// Same z as the sweep binary's statistical checks.
    const Z: f64 = 3.89;

    #[test]
    fn uncertain_sweep_respects_shortfall_budgets() {
        let mut total = ChanceStats::default();
        for seed in 0..10u64 {
            let inst = generate(Shape::UncertainTasks, seed);
            let stats = check_instance(Shape::UncertainTasks, seed, &inst, TEST_SAMPLES, Z)
                .unwrap_or_else(|report| panic!("{report}"));
            assert_eq!(stats.checked, 1, "seed {seed} must build a schedule");
            total.merge(&stats);
        }
        assert_eq!(total.checked, 10);
        // The Chernoff bound is conservative: empirical shortfall should
        // sit well inside the budget, not just under the Wilson fence.
        assert!(total.max_rate_ratio <= 1.0, "{}", total.max_rate_ratio);
    }

    #[test]
    fn deterministic_shapes_never_fall_short() {
        for seed in 0..5u64 {
            let inst = generate(Shape::Uniform, seed);
            let stats = check_instance(Shape::Uniform, seed, &inst, 200, Z)
                .unwrap_or_else(|report| panic!("{report}"));
            assert_eq!(stats.checked, 1);
            assert_eq!(stats.max_rate_ratio, 0.0);
        }
    }

    #[test]
    fn unit_reduction_holds_across_all_strategies() {
        for seed in 0..10u64 {
            let inst = generate(Shape::UncertainTasks, seed);
            check_unit_reduction(Shape::UncertainTasks, seed, &inst)
                .unwrap_or_else(|report| panic!("{report}"));
        }
        // Also from a deterministic starting point (trivial reduction).
        let inst = generate(Shape::Uniform, 3);
        check_unit_reduction(Shape::Uniform, 3, &inst).unwrap_or_else(|report| panic!("{report}"));
    }

    #[test]
    fn infeasible_instances_are_skipped_not_failed() {
        let inst = generate(Shape::InfeasibleCoverage, 0);
        let stats = check_instance(Shape::InfeasibleCoverage, 0, &inst, 100, Z)
            .unwrap_or_else(|report| panic!("{report}"));
        assert_eq!(stats.checked, 0);
    }
}
