//! Verification harness for the whole auction stack.
//!
//! Unit tests in the other crates check components in isolation; this
//! crate checks the *claims that tie them together*:
//!
//! * [`differential`] — the four schedule engines (default, serial lazy,
//!   eager, and naive per-price reference) must produce equivalent
//!   outcomes on the same instance, every winning set must satisfy its
//!   covering constraints, and greedy cardinality must stay within the
//!   paper's `2βH_m` factor of the exact ILP optimum.
//! * [`dp`] — the exponential-mechanism PMF must satisfy ε-differential
//!   privacy across neighbouring bid profiles, both exactly (log-ratio
//!   on the analytic PMFs) and statistically (sampled PMFs compared with
//!   Wilson confidence bounds), and a misreport sweep probes the
//!   truthfulness guarantee of Theorem 3.
//! * [`online`] — the streaming online auction must reduce to the
//!   offline round on degenerate timelines (byte-identically), its
//!   incremental hindsight pricer must agree with from-scratch residual
//!   builds at every arrival, and its posted-price channel must satisfy
//!   the exact ε-DP log-ratio bound.
//! * [`campaign`] — the multi-round lifecycle engine must reproduce the
//!   legacy campaign loop byte-for-byte on benign inputs (reports,
//!   payments, and RNG stream position), and its per-round ε-DP audit
//!   must find zero price-channel violations even on adversarial,
//!   reputation-gated campaigns auctioning on estimated skills.
//! * [`fuzz`] — the service wire decoder must never panic on arbitrary
//!   bytes, and every accepted document must survive a
//!   decode → encode → decode round trip unchanged.
//!
//! All checks consume instances from one structure-aware seeded
//! generator ([`gen`]) so the corner cases — skewed skills, degenerate
//! bundles, tied prices, infeasible coverage — are exercised uniformly.
//! Failures are minimized into small reproducible reports ([`report`]).
//!
//! Two binaries drive the harness from CI and the command line:
//! `verify_sweep` (differential + DP + truthfulness) and `wire_fuzz`
//! (decoder robustness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod campaign;
pub mod chance;
pub mod differential;
pub mod dp;
pub mod fuzz;
pub mod gen;
pub mod online;
pub mod report;
