//! Covering-ILP problem representation, greedy heuristic, and an
//! exhaustive reference solver.
//!
//! The constraint matrix is stored in compressed-sparse-row form: the TPM
//! instances the solver sees come from single-minded workers, so each
//! variable touches only its bundle's constraints and a dense `n×k` matrix
//! would make every residual update, feasibility pre-check, and repair
//! pass `O(n·k)` instead of `O(nnz)`. Dense construction stays available
//! (and is how the hand-written tests build problems); all accumulations
//! over rows skip only exact zeros, which is bit-identical to including
//! them.

use crate::bnb::{solve_branch_and_bound, BnbOptions, IlpResult, Selection};
use crate::IlpError;

/// A 0/1 covering integer program.
///
/// Variable `i`'s contribution to constraint `j` is `weight(i, j)`;
/// selecting a set `S` of variables is feasible when
/// `Σ_{i∈S} weight(i, j) ≥ requirements[j]` for every `j`. The objective
/// is `Σ_{i∈S} costs[i]`, with unit costs the common case (the TPM problem
/// minimizes winner-set cardinality).
///
/// All data must be non-negative and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveringIlp {
    num_constraints: usize,
    /// Row `i`'s entries live at `cols/vals[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
    /// Constraint indices, ascending within each row.
    cols: Vec<u32>,
    /// Weights parallel to `cols`; strictly positive (zeros are dropped).
    vals: Vec<f64>,
    requirements: Vec<f64>,
    costs: Vec<f64>,
}

impl CoveringIlp {
    /// Builds a covering ILP from dense weight rows with explicit
    /// per-variable costs.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::DimensionMismatch`] for ragged weight rows or a
    /// cost vector of the wrong length, and [`IlpError::InvalidCoefficient`]
    /// for negative or non-finite data.
    pub fn new(
        weights: Vec<Vec<f64>>,
        requirements: Vec<f64>,
        costs: Vec<f64>,
    ) -> Result<Self, IlpError> {
        let k = requirements.len();
        if costs.len() != weights.len() {
            return Err(IlpError::DimensionMismatch {
                variable: 0,
                expected: weights.len(),
                actual: costs.len(),
            });
        }
        for (i, row) in weights.iter().enumerate() {
            if row.len() != k {
                return Err(IlpError::DimensionMismatch {
                    variable: i,
                    expected: k,
                    actual: row.len(),
                });
            }
            for &w in row {
                if !w.is_finite() || w < 0.0 {
                    return Err(IlpError::InvalidCoefficient {
                        location: "weights",
                        value: w,
                    });
                }
            }
        }
        Self::validate_rhs(&requirements, &costs)?;
        let n = weights.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        offsets.push(0);
        for row in &weights {
            for (j, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    cols.push(j as u32);
                    vals.push(w);
                }
            }
            offsets.push(cols.len());
        }
        Ok(CoveringIlp {
            num_constraints: k,
            offsets,
            cols,
            vals,
            requirements,
            costs,
        })
    }

    /// Builds a covering ILP where every variable costs 1 (cardinality
    /// minimization, as in the TPM problem).
    ///
    /// # Errors
    ///
    /// Same as [`CoveringIlp::new`].
    pub fn uniform_cost(weights: Vec<Vec<f64>>, requirements: Vec<f64>) -> Result<Self, IlpError> {
        let n = weights.len();
        Self::new(weights, requirements, vec![1.0; n])
    }

    /// Builds a covering ILP directly from sparse `(constraint, weight)`
    /// rows, never materializing the dense matrix — `O(nnz)` construction
    /// for the large-`K` instances the schedule engines hand over.
    ///
    /// Entries within a row may arrive unordered; zero weights are
    /// dropped.
    ///
    /// # Errors
    ///
    /// * [`IlpError::DimensionMismatch`] — the cost vector length differs
    ///   from the row count, or an entry references a constraint index
    ///   `≥ num_constraints` (reported with `expected = num_constraints`,
    ///   `actual = index`).
    /// * [`IlpError::DuplicateEntry`] — a row lists the same constraint
    ///   twice.
    /// * [`IlpError::InvalidCoefficient`] — negative or non-finite data.
    pub fn from_sparse_rows(
        num_constraints: usize,
        rows: Vec<Vec<(usize, f64)>>,
        requirements: Vec<f64>,
        costs: Vec<f64>,
    ) -> Result<Self, IlpError> {
        if requirements.len() != num_constraints {
            return Err(IlpError::DimensionMismatch {
                variable: 0,
                expected: num_constraints,
                actual: requirements.len(),
            });
        }
        if costs.len() != rows.len() {
            return Err(IlpError::DimensionMismatch {
                variable: 0,
                expected: rows.len(),
                actual: costs.len(),
            });
        }
        Self::validate_rhs(&requirements, &costs)?;
        let n = rows.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols: Vec<u32> = Vec::new();
        let mut vals = Vec::new();
        offsets.push(0);
        for (i, mut row) in rows.into_iter().enumerate() {
            row.sort_unstable_by_key(|&(j, _)| j);
            let mut prev: Option<usize> = None;
            for (j, w) in row {
                if j >= num_constraints {
                    return Err(IlpError::DimensionMismatch {
                        variable: i,
                        expected: num_constraints,
                        actual: j,
                    });
                }
                if prev == Some(j) {
                    return Err(IlpError::DuplicateEntry {
                        variable: i,
                        constraint: j,
                    });
                }
                prev = Some(j);
                if !w.is_finite() || w < 0.0 {
                    return Err(IlpError::InvalidCoefficient {
                        location: "weights",
                        value: w,
                    });
                }
                if w > 0.0 {
                    cols.push(j as u32);
                    vals.push(w);
                }
            }
            offsets.push(cols.len());
        }
        Ok(CoveringIlp {
            num_constraints,
            offsets,
            cols,
            vals,
            requirements,
            costs,
        })
    }

    /// [`CoveringIlp::from_sparse_rows`] with unit costs.
    ///
    /// # Errors
    ///
    /// Same as [`CoveringIlp::from_sparse_rows`].
    pub fn uniform_cost_sparse(
        num_constraints: usize,
        rows: Vec<Vec<(usize, f64)>>,
        requirements: Vec<f64>,
    ) -> Result<Self, IlpError> {
        let n = rows.len();
        Self::from_sparse_rows(num_constraints, rows, requirements, vec![1.0; n])
    }

    fn validate_rhs(requirements: &[f64], costs: &[f64]) -> Result<(), IlpError> {
        for &r in requirements {
            if !r.is_finite() || r < 0.0 {
                return Err(IlpError::InvalidCoefficient {
                    location: "requirements",
                    value: r,
                });
            }
        }
        for &c in costs {
            if !c.is_finite() || c < 0.0 {
                return Err(IlpError::InvalidCoefficient {
                    location: "costs",
                    value: c,
                });
            }
        }
        Ok(())
    }

    /// Number of 0/1 variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of covering constraints.
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// Number of stored (non-zero) weights.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Variable `i`'s non-zero `(constraint, weight)` entries, ascending
    /// by constraint, without allocating.
    #[inline]
    pub fn row_entries(&self, var: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.offsets[var];
        let hi = self.offsets[var + 1];
        self.cols[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .map(|(&j, &w)| (j as usize, w))
    }

    /// Variable `i`'s weight on constraint `j` (zero if not stored).
    #[inline]
    pub fn weight(&self, var: usize, constraint: usize) -> f64 {
        let lo = self.offsets[var];
        let hi = self.offsets[var + 1];
        match self.cols[lo..hi].binary_search(&(constraint as u32)) {
            Ok(pos) => self.vals[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Variable `i`'s weight row, materialized densely (diagnostics and
    /// tests; hot paths iterate [`CoveringIlp::row_entries`]).
    pub fn weights_of(&self, var: usize) -> Vec<f64> {
        let mut row = vec![0.0; self.num_constraints];
        for (j, w) in self.row_entries(var) {
            row[j] = w;
        }
        row
    }

    /// The requirement vector.
    #[inline]
    pub fn requirements(&self) -> &[f64] {
        &self.requirements
    }

    /// Variable costs.
    #[inline]
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Total cost of a variable subset.
    pub fn cost_of(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.costs[i]).sum()
    }

    /// Whether a subset of variables satisfies every constraint (with a
    /// small float tolerance).
    pub fn is_feasible(&self, selected: &[usize]) -> bool {
        let mut residual = self.requirements.clone();
        for &i in selected {
            for (j, w) in self.row_entries(i) {
                residual[j] -= w;
            }
        }
        residual.iter().all(|&r| r <= 1e-9)
    }

    /// Whether selecting *all* variables satisfies every constraint — the
    /// necessary and sufficient feasibility condition for covering
    /// programs. One pass over the stored entries; per-constraint addition
    /// order matches a dense column scan, so the totals are bit-identical.
    pub fn is_feasible_at_all(&self) -> bool {
        let mut totals = vec![0.0f64; self.num_constraints];
        for i in 0..self.num_vars() {
            for (j, w) in self.row_entries(i) {
                totals[j] += w;
            }
        }
        totals
            .iter()
            .zip(&self.requirements)
            .all(|(&t, &r)| t >= r - 1e-9)
    }

    /// Solves exactly by branch-and-bound.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Lp`] if the LP relaxation solver fails.
    pub fn solve(&self, options: &BnbOptions) -> Result<IlpResult, IlpError> {
        solve_branch_and_bound(self, options)
    }
}

/// Greedy multi-cover heuristic: repeatedly select the variable with the
/// best marginal-coverage-per-cost ratio until every constraint is
/// satisfied.
///
/// Returns `None` when the instance is infeasible even with all variables.
/// The result seeds branch-and-bound with an incumbent; its quality bound
/// is the classic `H_m`-style set-cover guarantee (cf. Lemma 2 of the
/// paper).
///
/// # Examples
///
/// ```
/// use mcs_ilp::{greedy_cover, CoveringIlp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ilp = CoveringIlp::uniform_cost(
///     vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.6]],
///     vec![0.5, 0.5],
/// )?;
/// let picked = greedy_cover(&ilp).unwrap();
/// assert!(ilp.is_feasible(&picked));
/// # Ok(())
/// # }
/// ```
pub fn greedy_cover(ilp: &CoveringIlp) -> Option<Vec<usize>> {
    if !ilp.is_feasible_at_all() {
        return None;
    }
    let n = ilp.num_vars();
    let mut residual = ilp.requirements().to_vec();
    let mut selected = Vec::new();
    let mut used = vec![false; n];
    while residual.iter().any(|&r| r > 1e-9) {
        let mut best: Option<(usize, f64)> = None;
        for (i, &is_used) in used.iter().enumerate() {
            if is_used {
                continue;
            }
            let gain: f64 = ilp
                .row_entries(i)
                .map(|(j, w)| w.min(residual[j].max(0.0)))
                .sum();
            if gain <= 1e-12 {
                continue;
            }
            let cost = ilp.costs()[i].max(1e-12);
            let score = gain / cost;
            if best.is_none_or(|(_, bs)| score > bs) {
                best = Some((i, score));
            }
        }
        let (i, _) = best?;
        used[i] = true;
        selected.push(i);
        for (j, w) in ilp.row_entries(i) {
            residual[j] -= w;
        }
    }
    Some(selected)
}

/// Exhaustive reference solver: enumerates all `2^n` subsets.
///
/// Only intended for certifying the branch-and-bound on tiny instances.
/// Returns `None` when infeasible.
///
/// # Panics
///
/// Panics if the instance has more than 24 variables (would enumerate
/// over 16 million subsets).
pub fn solve_exhaustive(ilp: &CoveringIlp) -> Option<Selection> {
    let n = ilp.num_vars();
    assert!(n <= 24, "exhaustive solver limited to 24 variables");
    let mut best: Option<Selection> = None;
    for mask in 0u32..(1u32 << n) {
        let selected: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if !ilp.is_feasible(&selected) {
            continue;
        }
        let objective = ilp.cost_of(&selected);
        if best
            .as_ref()
            .is_none_or(|b| objective < b.objective - 1e-12)
        {
            best = Some(Selection {
                objective,
                selected,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CoveringIlp {
        CoveringIlp::uniform_cost(
            vec![vec![0.7, 0.0], vec![0.0, 0.7], vec![0.5, 0.5]],
            vec![0.6, 0.6],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(CoveringIlp::uniform_cost(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0]).is_err());
        assert!(CoveringIlp::uniform_cost(vec![vec![-1.0]], vec![1.0]).is_err());
        assert!(CoveringIlp::uniform_cost(vec![vec![1.0]], vec![f64::NAN]).is_err());
        assert!(CoveringIlp::new(vec![vec![1.0]], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(CoveringIlp::new(vec![vec![1.0]], vec![1.0], vec![-0.5]).is_err());
    }

    #[test]
    fn sparse_construction_matches_dense() {
        let dense = tiny();
        let sparse = CoveringIlp::uniform_cost_sparse(
            2,
            vec![vec![(0, 0.7)], vec![(1, 0.7)], vec![(1, 0.5), (0, 0.5)]],
            vec![0.6, 0.6],
        )
        .unwrap();
        assert_eq!(dense, sparse);
        assert_eq!(sparse.nnz(), 4);
        assert_eq!(sparse.weights_of(2), vec![0.5, 0.5]);
        assert_eq!(sparse.weight(0, 0), 0.7);
        assert_eq!(sparse.weight(0, 1), 0.0);
    }

    #[test]
    fn sparse_construction_validates() {
        assert!(matches!(
            CoveringIlp::uniform_cost_sparse(1, vec![vec![(3, 0.5)]], vec![1.0]),
            Err(IlpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            CoveringIlp::uniform_cost_sparse(2, vec![vec![(0, 0.5), (0, 0.7)]], vec![1.0, 1.0]),
            Err(IlpError::DuplicateEntry { .. })
        ));
        assert!(matches!(
            CoveringIlp::uniform_cost_sparse(1, vec![vec![(0, -0.5)]], vec![1.0]),
            Err(IlpError::InvalidCoefficient { .. })
        ));
        assert!(matches!(
            CoveringIlp::uniform_cost_sparse(2, vec![], vec![1.0]),
            Err(IlpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn feasibility_checks() {
        let ilp = tiny();
        assert!(ilp.is_feasible_at_all());
        assert!(ilp.is_feasible(&[0, 1]));
        assert!(!ilp.is_feasible(&[0]));
        assert!(!ilp.is_feasible(&[2]));
        assert!(ilp.is_feasible(&[0, 1, 2]));
    }

    #[test]
    fn infeasible_instance_detected() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![0.3]], vec![1.0]).unwrap();
        assert!(!ilp.is_feasible_at_all());
        assert!(greedy_cover(&ilp).is_none());
        assert!(solve_exhaustive(&ilp).is_none());
    }

    #[test]
    fn greedy_produces_feasible_cover() {
        let ilp = tiny();
        let picked = greedy_cover(&ilp).unwrap();
        assert!(ilp.is_feasible(&picked));
    }

    #[test]
    fn greedy_respects_costs() {
        // Variable 0 covers everything but is expensive; 1 and 2 together
        // are cheaper per unit of coverage.
        let ilp = CoveringIlp::new(
            vec![vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 1.0],
            vec![10.0, 1.0, 1.0],
        )
        .unwrap();
        let picked = greedy_cover(&ilp).unwrap();
        assert!(ilp.is_feasible(&picked));
        assert!(ilp.cost_of(&picked) <= 2.0 + 1e-9);
    }

    #[test]
    fn exhaustive_finds_minimum() {
        let sel = solve_exhaustive(&tiny()).unwrap();
        assert_eq!(sel.objective, 2.0);
        assert_eq!(sel.selected, vec![0, 1]);
    }

    #[test]
    fn exhaustive_weighted_costs() {
        let ilp = CoveringIlp::new(
            vec![vec![1.0], vec![0.6], vec![0.6]],
            vec![1.0],
            vec![3.0, 1.0, 1.0],
        )
        .unwrap();
        let sel = solve_exhaustive(&ilp).unwrap();
        // {1, 2} covers 1.2 ≥ 1.0 at cost 2 < cost 3 of {0}.
        assert_eq!(sel.selected, vec![1, 2]);
        assert_eq!(sel.objective, 2.0);
    }

    #[test]
    fn zero_requirements_need_nothing() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![1.0]], vec![0.0]).unwrap();
        assert!(ilp.is_feasible(&[]));
        assert_eq!(greedy_cover(&ilp).unwrap(), Vec::<usize>::new());
        let sel = solve_exhaustive(&ilp).unwrap();
        assert!(sel.selected.is_empty());
    }

    #[test]
    #[should_panic(expected = "24 variables")]
    fn exhaustive_guards_against_blowup() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![1.0]; 25], vec![1.0]).unwrap();
        let _ = solve_exhaustive(&ilp);
    }
}
