//! Covering-ILP problem representation, greedy heuristic, and an
//! exhaustive reference solver.

use crate::bnb::{solve_branch_and_bound, BnbOptions, IlpResult, Selection};
use crate::IlpError;

/// A 0/1 covering integer program.
///
/// `weights[i][j]` is variable `i`'s contribution to constraint `j`;
/// selecting a set `S` of variables is feasible when
/// `Σ_{i∈S} weights[i][j] ≥ requirements[j]` for every `j`. The objective
/// is `Σ_{i∈S} costs[i]`, with unit costs the common case (the TPM problem
/// minimizes winner-set cardinality).
///
/// All data must be non-negative and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveringIlp {
    weights: Vec<Vec<f64>>,
    requirements: Vec<f64>,
    costs: Vec<f64>,
}

impl CoveringIlp {
    /// Builds a covering ILP with explicit per-variable costs.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::DimensionMismatch`] for ragged weight rows or a
    /// cost vector of the wrong length, and [`IlpError::InvalidCoefficient`]
    /// for negative or non-finite data.
    pub fn new(
        weights: Vec<Vec<f64>>,
        requirements: Vec<f64>,
        costs: Vec<f64>,
    ) -> Result<Self, IlpError> {
        let k = requirements.len();
        if costs.len() != weights.len() {
            return Err(IlpError::DimensionMismatch {
                variable: 0,
                expected: weights.len(),
                actual: costs.len(),
            });
        }
        for (i, row) in weights.iter().enumerate() {
            if row.len() != k {
                return Err(IlpError::DimensionMismatch {
                    variable: i,
                    expected: k,
                    actual: row.len(),
                });
            }
            for &w in row {
                if !w.is_finite() || w < 0.0 {
                    return Err(IlpError::InvalidCoefficient {
                        location: "weights",
                        value: w,
                    });
                }
            }
        }
        for &r in &requirements {
            if !r.is_finite() || r < 0.0 {
                return Err(IlpError::InvalidCoefficient {
                    location: "requirements",
                    value: r,
                });
            }
        }
        for &c in &costs {
            if !c.is_finite() || c < 0.0 {
                return Err(IlpError::InvalidCoefficient {
                    location: "costs",
                    value: c,
                });
            }
        }
        Ok(CoveringIlp {
            weights,
            requirements,
            costs,
        })
    }

    /// Builds a covering ILP where every variable costs 1 (cardinality
    /// minimization, as in the TPM problem).
    ///
    /// # Errors
    ///
    /// Same as [`CoveringIlp::new`].
    pub fn uniform_cost(weights: Vec<Vec<f64>>, requirements: Vec<f64>) -> Result<Self, IlpError> {
        let n = weights.len();
        Self::new(weights, requirements, vec![1.0; n])
    }

    /// Number of 0/1 variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.weights.len()
    }

    /// Number of covering constraints.
    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.requirements.len()
    }

    /// Variable `i`'s weight row.
    #[inline]
    pub fn weights_of(&self, var: usize) -> &[f64] {
        &self.weights[var]
    }

    /// The requirement vector.
    #[inline]
    pub fn requirements(&self) -> &[f64] {
        &self.requirements
    }

    /// Variable costs.
    #[inline]
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Total cost of a variable subset.
    pub fn cost_of(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.costs[i]).sum()
    }

    /// Whether a subset of variables satisfies every constraint (with a
    /// small float tolerance).
    pub fn is_feasible(&self, selected: &[usize]) -> bool {
        let mut residual = self.requirements.clone();
        for &i in selected {
            for (r, w) in residual.iter_mut().zip(&self.weights[i]) {
                *r -= w;
            }
        }
        residual.iter().all(|&r| r <= 1e-9)
    }

    /// Whether selecting *all* variables satisfies every constraint — the
    /// necessary and sufficient feasibility condition for covering
    /// programs.
    pub fn is_feasible_at_all(&self) -> bool {
        (0..self.num_constraints()).all(|j| {
            let total: f64 = self.weights.iter().map(|row| row[j]).sum();
            total >= self.requirements[j] - 1e-9
        })
    }

    /// Solves exactly by branch-and-bound.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Lp`] if the LP relaxation solver fails.
    pub fn solve(&self, options: &BnbOptions) -> Result<IlpResult, IlpError> {
        solve_branch_and_bound(self, options)
    }
}

/// Greedy multi-cover heuristic: repeatedly select the variable with the
/// best marginal-coverage-per-cost ratio until every constraint is
/// satisfied.
///
/// Returns `None` when the instance is infeasible even with all variables.
/// The result seeds branch-and-bound with an incumbent; its quality bound
/// is the classic `H_m`-style set-cover guarantee (cf. Lemma 2 of the
/// paper).
///
/// # Examples
///
/// ```
/// use mcs_ilp::{greedy_cover, CoveringIlp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ilp = CoveringIlp::uniform_cost(
///     vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.6]],
///     vec![0.5, 0.5],
/// )?;
/// let picked = greedy_cover(&ilp).unwrap();
/// assert!(ilp.is_feasible(&picked));
/// # Ok(())
/// # }
/// ```
pub fn greedy_cover(ilp: &CoveringIlp) -> Option<Vec<usize>> {
    if !ilp.is_feasible_at_all() {
        return None;
    }
    let n = ilp.num_vars();
    let mut residual = ilp.requirements().to_vec();
    let mut selected = Vec::new();
    let mut used = vec![false; n];
    while residual.iter().any(|&r| r > 1e-9) {
        let mut best: Option<(usize, f64)> = None;
        for (i, &is_used) in used.iter().enumerate() {
            if is_used {
                continue;
            }
            let gain: f64 = ilp
                .weights_of(i)
                .iter()
                .zip(&residual)
                .map(|(&w, &r)| w.min(r.max(0.0)))
                .sum();
            if gain <= 1e-12 {
                continue;
            }
            let cost = ilp.costs()[i].max(1e-12);
            let score = gain / cost;
            if best.is_none_or(|(_, bs)| score > bs) {
                best = Some((i, score));
            }
        }
        let (i, _) = best?;
        used[i] = true;
        selected.push(i);
        for (r, w) in residual.iter_mut().zip(ilp.weights_of(i)) {
            *r -= w;
        }
    }
    Some(selected)
}

/// Exhaustive reference solver: enumerates all `2^n` subsets.
///
/// Only intended for certifying the branch-and-bound on tiny instances.
/// Returns `None` when infeasible.
///
/// # Panics
///
/// Panics if the instance has more than 24 variables (would enumerate
/// over 16 million subsets).
pub fn solve_exhaustive(ilp: &CoveringIlp) -> Option<Selection> {
    let n = ilp.num_vars();
    assert!(n <= 24, "exhaustive solver limited to 24 variables");
    let mut best: Option<Selection> = None;
    for mask in 0u32..(1u32 << n) {
        let selected: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if !ilp.is_feasible(&selected) {
            continue;
        }
        let objective = ilp.cost_of(&selected);
        if best
            .as_ref()
            .is_none_or(|b| objective < b.objective - 1e-12)
        {
            best = Some(Selection {
                objective,
                selected,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CoveringIlp {
        CoveringIlp::uniform_cost(
            vec![vec![0.7, 0.0], vec![0.0, 0.7], vec![0.5, 0.5]],
            vec![0.6, 0.6],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(CoveringIlp::uniform_cost(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0]).is_err());
        assert!(CoveringIlp::uniform_cost(vec![vec![-1.0]], vec![1.0]).is_err());
        assert!(CoveringIlp::uniform_cost(vec![vec![1.0]], vec![f64::NAN]).is_err());
        assert!(CoveringIlp::new(vec![vec![1.0]], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(CoveringIlp::new(vec![vec![1.0]], vec![1.0], vec![-0.5]).is_err());
    }

    #[test]
    fn feasibility_checks() {
        let ilp = tiny();
        assert!(ilp.is_feasible_at_all());
        assert!(ilp.is_feasible(&[0, 1]));
        assert!(!ilp.is_feasible(&[0]));
        assert!(!ilp.is_feasible(&[2]));
        assert!(ilp.is_feasible(&[0, 1, 2]));
    }

    #[test]
    fn infeasible_instance_detected() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![0.3]], vec![1.0]).unwrap();
        assert!(!ilp.is_feasible_at_all());
        assert!(greedy_cover(&ilp).is_none());
        assert!(solve_exhaustive(&ilp).is_none());
    }

    #[test]
    fn greedy_produces_feasible_cover() {
        let ilp = tiny();
        let picked = greedy_cover(&ilp).unwrap();
        assert!(ilp.is_feasible(&picked));
    }

    #[test]
    fn greedy_respects_costs() {
        // Variable 0 covers everything but is expensive; 1 and 2 together
        // are cheaper per unit of coverage.
        let ilp = CoveringIlp::new(
            vec![vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![1.0, 1.0],
            vec![10.0, 1.0, 1.0],
        )
        .unwrap();
        let picked = greedy_cover(&ilp).unwrap();
        assert!(ilp.is_feasible(&picked));
        assert!(ilp.cost_of(&picked) <= 2.0 + 1e-9);
    }

    #[test]
    fn exhaustive_finds_minimum() {
        let sel = solve_exhaustive(&tiny()).unwrap();
        assert_eq!(sel.objective, 2.0);
        assert_eq!(sel.selected, vec![0, 1]);
    }

    #[test]
    fn exhaustive_weighted_costs() {
        let ilp = CoveringIlp::new(
            vec![vec![1.0], vec![0.6], vec![0.6]],
            vec![1.0],
            vec![3.0, 1.0, 1.0],
        )
        .unwrap();
        let sel = solve_exhaustive(&ilp).unwrap();
        // {1, 2} covers 1.2 ≥ 1.0 at cost 2 < cost 3 of {0}.
        assert_eq!(sel.selected, vec![1, 2]);
        assert_eq!(sel.objective, 2.0);
    }

    #[test]
    fn zero_requirements_need_nothing() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![1.0]], vec![0.0]).unwrap();
        assert!(ilp.is_feasible(&[]));
        assert_eq!(greedy_cover(&ilp).unwrap(), Vec::<usize>::new());
        let sel = solve_exhaustive(&ilp).unwrap();
        assert!(sel.selected.is_empty());
    }

    #[test]
    #[should_panic(expected = "24 variables")]
    fn exhaustive_guards_against_blowup() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![1.0]; 25], vec![1.0]).unwrap();
        let _ = solve_exhaustive(&ilp);
    }
}
