//! Error types for the ILP solver.

use std::error::Error;
use std::fmt;

use mcs_lp::LpError;

/// Errors raised while constructing or solving a covering ILP.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IlpError {
    /// A variable's weight row length differed from the constraint count.
    DimensionMismatch {
        /// Index of the offending variable.
        variable: usize,
        /// Expected row length (number of constraints).
        expected: usize,
        /// Actual row length.
        actual: usize,
    },
    /// A weight, cost, or requirement was negative, NaN, or infinite.
    ///
    /// Covering programs need non-negative data: a negative weight would
    /// break the monotonicity that the greedy warm start and the
    /// feasibility pre-check rely on.
    InvalidCoefficient {
        /// Where the bad value was found.
        location: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A sparse weight row listed the same constraint column twice.
    DuplicateEntry {
        /// Index of the offending variable.
        variable: usize,
        /// The constraint column that appeared more than once.
        constraint: usize,
    },
    /// The LP relaxation solver failed (iteration limit or malformed data).
    Lp(LpError),
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::DimensionMismatch {
                variable,
                expected,
                actual,
            } => write!(
                f,
                "variable {variable} has {actual} weights, expected {expected}"
            ),
            IlpError::InvalidCoefficient { location, value } => {
                write!(f, "invalid coefficient {value} in {location}")
            }
            IlpError::DuplicateEntry {
                variable,
                constraint,
            } => write!(
                f,
                "variable {variable} lists constraint {constraint} more than once"
            ),
            IlpError::Lp(e) => write!(f, "lp relaxation failed: {e}"),
        }
    }
}

impl Error for IlpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IlpError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for IlpError {
    fn from(e: LpError) -> Self {
        IlpError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_lp_error_with_source() {
        let e = IlpError::from(LpError::IterationLimit { limit: 5 });
        assert!(e.to_string().contains("lp relaxation"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IlpError>();
    }
}
