//! Best-first branch-and-bound over the simplex LP relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use mcs_lp::{LinearProgram, LpOutcome, SimplexOptions};

use crate::covering::{greedy_cover, CoveringIlp};
use crate::IlpError;

/// Budgets and tolerances for branch-and-bound.
#[derive(Debug, Clone, PartialEq)]
pub struct BnbOptions {
    /// Wall-clock budget; on expiry the incumbent is returned with status
    /// [`IlpStatus::TimedOut`]. `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of explored nodes; same timeout semantics.
    pub max_nodes: Option<u64>,
    /// Options forwarded to the LP relaxation solver.
    pub lp_options: SimplexOptions,
    /// Integrality tolerance for declaring an LP solution integral.
    pub integrality_tol: f64,
}

impl Default for BnbOptions {
    fn default() -> Self {
        BnbOptions {
            time_limit: None,
            max_nodes: None,
            lp_options: SimplexOptions::default(),
            integrality_tol: 1e-6,
        }
    }
}

impl BnbOptions {
    /// Convenience constructor with only a wall-clock budget.
    pub fn with_time_limit(limit: Duration) -> Self {
        BnbOptions {
            time_limit: Some(limit),
            ..Default::default()
        }
    }
}

/// How the search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IlpStatus {
    /// The search tree was exhausted; the incumbent is provably optimal.
    Optimal,
    /// No 0/1 assignment satisfies the constraints.
    Infeasible,
    /// A node or time budget expired; the incumbent (if any) is the best
    /// found so far but unproven.
    TimedOut,
}

/// A selected variable subset and its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Total cost of the selection.
    pub objective: f64,
    /// Indices of selected variables, ascending.
    pub selected: Vec<usize>,
}

/// The outcome of a branch-and-bound run, with search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpResult {
    /// Final status.
    pub status: IlpStatus,
    /// Best feasible selection found (`None` only when infeasible, or when
    /// a timeout hit before the greedy warm start — which cannot happen
    /// since the warm start precedes the search).
    pub best: Option<Selection>,
    /// A proven lower bound on the optimum. Equals the incumbent objective
    /// when `status` is [`IlpStatus::Optimal`]; on timeout it is the
    /// smallest bound among unexplored nodes, so the true optimum lies in
    /// `[lower_bound, best.objective]`.
    pub lower_bound: f64,
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// A search node: partial assignment plus a lower bound inherited from its
/// parent (used as the heap priority until its own LP is solved).
struct Node {
    /// Per-variable state: `-1` free, `0` fixed out, `1` fixed in.
    assignment: Vec<i8>,
    /// Cost of variables fixed to 1.
    fixed_cost: f64,
    /// Lower bound inherited from the parent's LP.
    bound: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the smallest bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Runs best-first branch-and-bound on a covering ILP.
pub(crate) fn solve_branch_and_bound(
    ilp: &CoveringIlp,
    options: &BnbOptions,
) -> Result<IlpResult, IlpError> {
    let start = Instant::now();
    let n = ilp.num_vars();

    if !ilp.is_feasible_at_all() {
        return Ok(IlpResult {
            status: IlpStatus::Infeasible,
            best: None,
            lower_bound: f64::INFINITY,
            nodes_explored: 0,
            elapsed: start.elapsed(),
        });
    }

    // Greedy warm start gives the initial incumbent.
    let greedy = greedy_cover(ilp).expect("feasibility was just checked");
    let mut incumbent = Selection {
        objective: ilp.cost_of(&greedy),
        selected: {
            let mut g = greedy;
            g.sort_unstable();
            g
        },
    };

    // When all costs are integral the optimum is integral, so LP bounds can
    // be rounded up — a massive pruning win for cardinality objectives.
    let integral_costs = ilp.costs().iter().all(|c| (c - c.round()).abs() < 1e-9);
    let sharpen = |bound: f64| {
        if integral_costs {
            (bound - 1e-6).ceil()
        } else {
            bound
        }
    };

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        assignment: vec![-1; n],
        fixed_cost: 0.0,
        bound: 0.0,
    });
    let mut nodes_explored: u64 = 0;
    let mut status = IlpStatus::Optimal;
    // The smallest bound of any node left unexplored at exit; proves the
    // optimality gap on timeout.
    let mut open_bound: Option<f64> = None;

    while let Some(node) = heap.pop() {
        // Budget checks.
        let timed_out = options.time_limit.is_some_and(|l| start.elapsed() >= l)
            || options.max_nodes.is_some_and(|m| nodes_explored >= m);
        if timed_out {
            status = IlpStatus::TimedOut;
            // The heap is bound-ordered, so this node carries the smallest
            // outstanding bound.
            open_bound = Some(sharpen(node.bound));
            break;
        }
        // Bound from the parent may already be dominated.
        if sharpen(node.bound) >= incumbent.objective - 1e-9 {
            continue;
        }

        nodes_explored += 1;

        // Build the node's residual LP over free variables.
        let free: Vec<usize> = (0..n).filter(|&i| node.assignment[i] == -1).collect();
        let mut residual = ilp.requirements().to_vec();
        for i in 0..n {
            if node.assignment[i] == 1 {
                for (j, w) in ilp.row_entries(i) {
                    residual[j] = (residual[j] - w).max(0.0);
                }
            }
        }

        // Quick feasibility: can the free variables still cover the
        // residual requirements? One pass over the free rows keeps the
        // per-column addition order of the old dense column scan.
        let mut free_totals = vec![0.0f64; ilp.num_constraints()];
        for &i in &free {
            for (j, w) in ilp.row_entries(i) {
                free_totals[j] += w;
            }
        }
        let coverable = free_totals
            .iter()
            .zip(&residual)
            .all(|(&total, &r)| total >= r - 1e-9);
        if !coverable {
            continue;
        }

        // LP relaxation: min Σ c_i x_i over free vars, coverage ≥ residual,
        // x ≤ 1. Skip constraints already satisfied.
        let obj: Vec<f64> = free.iter().map(|&i| ilp.costs()[i]).collect();
        let mut lp = LinearProgram::minimize(obj);
        for (j, &req) in residual.iter().enumerate() {
            if req > 1e-12 {
                let row: Vec<f64> = free.iter().map(|&i| ilp.weight(i, j)).collect();
                lp = lp.geq(row, req);
            }
        }
        lp = lp.upper_bounds(1.0);

        let solution = match lp.solve_with(&options.lp_options)? {
            LpOutcome::Optimal(s) => s,
            // The sum pre-check above guarantees feasibility of the box
            // relaxation; treat a numerically infeasible LP as a prune.
            LpOutcome::Infeasible => continue,
            // A covering LP with non-negative costs over a box is never
            // unbounded.
            LpOutcome::Unbounded => continue,
        };

        let bound = sharpen(node.fixed_cost + solution.objective());
        if bound >= incumbent.objective - 1e-9 {
            continue;
        }

        // LP-rounding incumbent repair: take the node's fixed-1 set plus
        // every free variable at ≥ 0.5, then greedily patch any residual
        // shortfall. This cheap pass typically finds optimal-quality
        // covers long before the tree proves them, which is what makes
        // the ceil-bound pruning bite.
        {
            let mut selected: Vec<usize> = (0..n).filter(|&i| node.assignment[i] == 1).collect();
            let mut res = residual.clone();
            for (fi, &i) in free.iter().enumerate() {
                if solution.value(fi) >= 0.5 {
                    selected.push(i);
                    for (j, w) in ilp.row_entries(i) {
                        res[j] = (res[j] - w).max(0.0);
                    }
                }
            }
            if res.iter().any(|&r| r > 1e-9) {
                // Greedy repair over the remaining free variables.
                let mut remaining: Vec<usize> = free
                    .iter()
                    .enumerate()
                    .filter(|&(fi, _)| solution.value(fi) < 0.5)
                    .map(|(_, &i)| i)
                    .collect();
                while res.iter().any(|&r| r > 1e-9) {
                    let best = remaining
                        .iter()
                        .enumerate()
                        .map(|(pos, &i)| {
                            let gain: f64 = ilp.row_entries(i).map(|(j, w)| w.min(res[j])).sum();
                            (pos, i, gain / ilp.costs()[i].max(1e-12))
                        })
                        .filter(|&(_, _, score)| score > 1e-12)
                        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(Ordering::Equal));
                    let Some((pos, i, _)) = best else { break };
                    remaining.swap_remove(pos);
                    selected.push(i);
                    for (j, w) in ilp.row_entries(i) {
                        res[j] = (res[j] - w).max(0.0);
                    }
                }
            }
            if res.iter().all(|&r| r <= 1e-9) {
                selected.sort_unstable();
                selected.dedup();
                let objective = ilp.cost_of(&selected);
                if objective < incumbent.objective - 1e-9 && ilp.is_feasible(&selected) {
                    incumbent = Selection {
                        objective,
                        selected,
                    };
                }
            }
        }
        if bound >= incumbent.objective - 1e-9 {
            continue;
        }

        // Most fractional free variable.
        let fractional = free
            .iter()
            .enumerate()
            .map(|(fi, &i)| (i, solution.value(fi)))
            .filter(|&(_, v)| v > options.integrality_tol && v < 1.0 - options.integrality_tol)
            .max_by(|a, b| {
                let da = (a.1 - 0.5).abs();
                let db = (b.1 - 0.5).abs();
                db.partial_cmp(&da).unwrap_or(Ordering::Equal)
            });

        match fractional {
            None => {
                // Integral LP solution: a candidate incumbent.
                let mut selected: Vec<usize> =
                    (0..n).filter(|&i| node.assignment[i] == 1).collect();
                for (fi, &i) in free.iter().enumerate() {
                    if solution.value(fi) > 0.5 {
                        selected.push(i);
                    }
                }
                selected.sort_unstable();
                let objective = ilp.cost_of(&selected);
                if ilp.is_feasible(&selected) && objective < incumbent.objective - 1e-9 {
                    incumbent = Selection {
                        objective,
                        selected,
                    };
                }
            }
            Some((var, _)) => {
                // Branch: fix to 1 (usually the covering-helpful branch)
                // and to 0.
                let mut up = node.assignment.clone();
                up[var] = 1;
                heap.push(Node {
                    assignment: up,
                    fixed_cost: node.fixed_cost + ilp.costs()[var],
                    bound,
                });
                let mut down = node.assignment;
                down[var] = 0;
                heap.push(Node {
                    assignment: down,
                    fixed_cost: node.fixed_cost,
                    bound,
                });
            }
        }
    }

    let lower_bound = match status {
        IlpStatus::Optimal => incumbent.objective,
        _ => open_bound
            .unwrap_or(incumbent.objective)
            .min(incumbent.objective),
    };
    Ok(IlpResult {
        status,
        best: Some(incumbent),
        lower_bound,
        nodes_explored,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covering::solve_exhaustive;
    use proptest::prelude::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;

    fn solve(ilp: &CoveringIlp) -> IlpResult {
        ilp.solve(&BnbOptions::default()).unwrap()
    }

    #[test]
    fn simple_cardinality_cover() {
        let ilp = CoveringIlp::uniform_cost(
            vec![vec![0.7, 0.0], vec![0.0, 0.7], vec![0.5, 0.5]],
            vec![0.6, 0.6],
        )
        .unwrap();
        let r = solve(&ilp);
        assert_eq!(r.status, IlpStatus::Optimal);
        let best = r.best.unwrap();
        assert_eq!(best.objective, 2.0);
        assert!(ilp.is_feasible(&best.selected));
    }

    #[test]
    fn infeasible_is_reported() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![0.4]], vec![1.0]).unwrap();
        let r = solve(&ilp);
        assert_eq!(r.status, IlpStatus::Infeasible);
        assert!(r.best.is_none());
    }

    #[test]
    fn exact_beats_greedy_when_greedy_is_myopic() {
        // Greedy picks the big middle variable first, then needs two more;
        // the optimum is the two side variables.
        let ilp = CoveringIlp::uniform_cost(
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.55, 0.55]],
            vec![1.0, 1.0],
        )
        .unwrap();
        let greedy = greedy_cover(&ilp).unwrap();
        assert_eq!(greedy.len(), 3); // greedy takes 2 then both 0 and 1
        let r = solve(&ilp);
        assert_eq!(r.best.unwrap().objective, 2.0);
    }

    #[test]
    fn weighted_costs_change_the_optimum() {
        let ilp = CoveringIlp::new(
            vec![vec![1.0], vec![0.5], vec![0.5]],
            vec![1.0],
            vec![5.0, 1.0, 1.0],
        )
        .unwrap();
        let r = solve(&ilp);
        let best = r.best.unwrap();
        assert_eq!(best.selected, vec![1, 2]);
        assert!((best.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_requirements_select_nothing() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![1.0]; 3], vec![0.0]).unwrap();
        let r = solve(&ilp);
        let best = r.best.unwrap();
        assert!(best.selected.is_empty());
        assert_eq!(best.objective, 0.0);
    }

    #[test]
    fn node_budget_times_out_with_incumbent() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let weights: Vec<Vec<f64>> = (0..18)
            .map(|_| (0..6).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let reqs = vec![2.0; 6];
        let ilp = CoveringIlp::uniform_cost(weights, reqs).unwrap();
        let r = ilp
            .solve(&BnbOptions {
                max_nodes: Some(1),
                ..Default::default()
            })
            .unwrap();
        // One node is never enough to prove optimality here, but the greedy
        // incumbent must be present and feasible.
        let best = r.best.unwrap();
        assert!(ilp.is_feasible(&best.selected));
        assert!(r.nodes_explored <= 1);
        assert_eq!(r.status, IlpStatus::TimedOut);
    }

    #[test]
    fn lower_bound_brackets_the_optimum() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let weights: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..8).map(|_| rng.gen_range(0.0..0.6)).collect())
            .collect();
        let reqs = vec![1.5; 8];
        let ilp = CoveringIlp::uniform_cost(weights, reqs).unwrap();
        // Full solve gives the truth.
        let exact = ilp.solve(&BnbOptions::default()).unwrap();
        assert_eq!(exact.status, IlpStatus::Optimal);
        let truth = exact.best.as_ref().unwrap().objective;
        assert_eq!(exact.lower_bound, truth);
        // A tiny node budget must bracket it.
        let budgeted = ilp
            .solve(&BnbOptions {
                max_nodes: Some(3),
                ..Default::default()
            })
            .unwrap();
        let ub = budgeted.best.as_ref().unwrap().objective;
        assert!(budgeted.lower_bound <= truth + 1e-9);
        assert!(truth <= ub + 1e-9);
        assert!(budgeted.lower_bound <= ub + 1e-9);
    }

    #[test]
    fn infeasible_lower_bound_is_infinite() {
        let ilp = CoveringIlp::uniform_cost(vec![vec![0.4]], vec![1.0]).unwrap();
        let r = ilp.solve(&BnbOptions::default()).unwrap();
        assert_eq!(r.status, IlpStatus::Infeasible);
        assert_eq!(r.lower_bound, f64::INFINITY);
    }

    #[test]
    fn time_budget_zero_times_out() {
        let ilp = CoveringIlp::uniform_cost(
            vec![vec![0.7, 0.0], vec![0.0, 0.7], vec![0.5, 0.5]],
            vec![0.6, 0.6],
        )
        .unwrap();
        let r = ilp
            .solve(&BnbOptions::with_time_limit(Duration::ZERO))
            .unwrap();
        assert_eq!(r.status, IlpStatus::TimedOut);
        assert!(r.best.is_some());
    }

    #[test]
    fn matches_exhaustive_on_fixed_instances() {
        let cases = [
            (
                vec![
                    vec![0.9, 0.1, 0.0],
                    vec![0.2, 0.8, 0.3],
                    vec![0.0, 0.4, 0.9],
                    vec![0.5, 0.5, 0.5],
                ],
                vec![1.0, 1.0, 1.0],
            ),
            (
                vec![
                    vec![0.3, 0.3],
                    vec![0.3, 0.3],
                    vec![0.3, 0.3],
                    vec![0.3, 0.3],
                    vec![1.0, 0.0],
                ],
                vec![0.9, 0.9],
            ),
        ];
        for (weights, reqs) in cases {
            let ilp = CoveringIlp::uniform_cost(weights, reqs).unwrap();
            let exact = solve_exhaustive(&ilp).unwrap();
            let bnb = solve(&ilp).best.unwrap();
            assert!(
                (bnb.objective - exact.objective).abs() < 1e-9,
                "bnb {} vs exhaustive {}",
                bnb.objective,
                exact.objective
            );
            assert!(ilp.is_feasible(&bnb.selected));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_bnb_matches_exhaustive(
            seed in 0u64..2000,
            n in 2usize..10,
            k in 1usize..5,
        ) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let weights: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..k).map(|_| {
                    if rng.gen_bool(0.3) { 0.0 } else { rng.gen_range(0.05..1.0) }
                }).collect())
                .collect();
            let reqs: Vec<f64> = (0..k).map(|j| {
                let total: f64 = weights.iter().map(|row| row[j]).sum();
                if total <= 0.0 {
                    0.0 // column of all-zero weights: only requirement 0 is meaningful
                } else {
                    rng.gen_range(0.0..total * 1.1) // sometimes infeasible
                }
            }).collect();
            let ilp = CoveringIlp::uniform_cost(weights, reqs).unwrap();
            let exact = solve_exhaustive(&ilp);
            let bnb = solve(&ilp);
            match exact {
                None => prop_assert_eq!(bnb.status, IlpStatus::Infeasible),
                Some(sel) => {
                    prop_assert_eq!(bnb.status, IlpStatus::Optimal);
                    let best = bnb.best.unwrap();
                    prop_assert!((best.objective - sel.objective).abs() < 1e-6,
                        "bnb {} vs exhaustive {}", best.objective, sel.objective);
                    prop_assert!(ilp.is_feasible(&best.selected));
                }
            }
        }

        #[test]
        fn prop_bnb_weighted_matches_exhaustive(
            seed in 0u64..1000,
            n in 2usize..8,
        ) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5A5A);
            let k = 2usize;
            let weights: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..k).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let reqs: Vec<f64> = (0..k).map(|j| {
                let total: f64 = weights.iter().map(|row| row[j]).sum();
                rng.gen_range(0.0..total * 0.8)
            }).collect();
            let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..3.0)).collect();
            let ilp = CoveringIlp::new(weights, reqs, costs).unwrap();
            let exact = solve_exhaustive(&ilp).unwrap();
            let best = solve(&ilp).best.unwrap();
            prop_assert!((best.objective - exact.objective).abs() < 1e-6);
        }
    }
}
