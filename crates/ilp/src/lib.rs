//! Exact 0/1 covering integer programming by branch-and-bound.
//!
//! The paper computes its *Optimal* baseline — the minimum-cardinality
//! winner set `S_OPT(p)` of the TPM problem — with the commercial GUROBI
//! solver. This crate is the from-scratch substitute: a best-first
//! branch-and-bound over the LP relaxation solved by [`mcs_lp`]'s two-phase
//! simplex, specialized to covering programs of the form
//!
//! ```text
//! minimize    Σ c_i x_i
//! subject to  Σ_i a_ij x_i ≥ Q_j    for every constraint j
//!             x_i ∈ {0, 1}
//! ```
//!
//! Features relevant to reproducing the paper:
//!
//! * **Provably optimal answers** at the sizes where the paper runs its
//!   optimal baseline (Settings I–II: N ≤ 140 workers, K ≤ 50 tasks), so
//!   Figures 1–2 measure the true optimality gap.
//! * **Greedy warm starts** and **integral-objective ceiling pruning**
//!   (when all `c_i` are integers the LP bound can be rounded up).
//! * **Node and wall-clock budgets** so Table II's exploding-runtime sweep
//!   terminates gracefully, reporting the incumbent on timeout.
//! * An [`exhaustive`](solve_exhaustive) reference solver for tiny
//!   instances, used by the property-based tests to certify the
//!   branch-and-bound.
//!
//! # Examples
//!
//! ```
//! use mcs_ilp::{BnbOptions, CoveringIlp, IlpStatus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three unit-cost variables; constraint needs total weight ≥ 1.0.
//! let ilp = CoveringIlp::uniform_cost(
//!     vec![vec![0.7], vec![0.6], vec![0.5]],
//!     vec![1.0],
//! )?;
//! let result = ilp.solve(&BnbOptions::default())?;
//! assert_eq!(result.status, IlpStatus::Optimal);
//! let best = result.best.unwrap();
//! assert_eq!(best.selected.len(), 2); // any single variable is short of 1.0
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bnb;
mod covering;
mod error;

pub use bnb::{BnbOptions, IlpResult, IlpStatus, Selection};
pub use covering::{greedy_cover, solve_exhaustive, CoveringIlp};
pub use error::IlpError;
