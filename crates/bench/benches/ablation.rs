//! Ablation benches for the design decisions called out in DESIGN.md §5:
//!
//! * interval-compressed schedule vs the naive per-price loop (the
//!   Theorem 5 optimization);
//! * exact PMF evaluation vs 10 000-sample Monte-Carlo estimation (the
//!   paper's method);
//! * log-domain exponential mechanism at the extreme ε = 1000 end of
//!   Figure 5 (the naive normalization underflows there).

use criterion::{criterion_group, criterion_main, Criterion};

use mcs_auction::{
    DpHsrcAuction, ExponentialMechanism, ScheduleEngine, ScheduledMechanism, SelectionRule,
    Strategy,
};
use mcs_num::rng;
use mcs_sim::experiments::sampled_payment_stats;
use mcs_sim::Setting;

fn bench_compression(c: &mut Criterion) {
    let g = Setting::one(100).generate(11);
    let mut group = c.benchmark_group("schedule_compression");
    group.sample_size(10);
    group.bench_function("compressed_intervals", |b| {
        b.iter(|| {
            ScheduleEngine::new(SelectionRule::MarginalCoverage)
                .build(&g.instance)
                .expect("feasible")
        });
    });
    group.bench_function("naive_per_price", |b| {
        b.iter(|| {
            ScheduleEngine::new(SelectionRule::MarginalCoverage)
                .strategy(Strategy::Naive)
                .build(&g.instance)
                .expect("feasible")
        });
    });
    group.finish();
}

fn bench_pmf_vs_sampling(c: &mut Criterion) {
    let g = Setting::one(100).generate(12);
    let pmf = DpHsrcAuction::new(0.1)
        .expect("valid epsilon")
        .pmf(&g.instance)
        .expect("feasible");
    let mut group = c.benchmark_group("payment_estimation");
    group.bench_function("exact_pmf_expectation", |b| {
        b.iter(|| pmf.expected_total_payment());
    });
    group.sample_size(10);
    group.bench_function("monte_carlo_10000", |b| {
        let mut r = rng::seeded(3);
        b.iter(|| sampled_payment_stats(&pmf, 10_000, &mut r));
    });
    group.finish();
}

fn bench_extreme_epsilon(c: &mut Criterion) {
    let g = Setting::one(100).generate(13);
    let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
        .build(&g.instance)
        .expect("feasible");
    let mut group = c.benchmark_group("exponential_mechanism");
    for eps in [0.1f64, 1000.0] {
        let mech = ExponentialMechanism::for_instance(eps, &g.instance).expect("valid epsilon");
        group.bench_function(format!("log_domain_eps_{eps}"), |b| {
            b.iter(|| mech.pmf(schedule.clone()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_pmf_vs_sampling,
    bench_extreme_epsilon
);
criterion_main!(benches);
