//! Theorem 5 scaling benches: DP-hSRC runtime vs `N`, `K`, and — crucially
//! — its *independence* from `|P|` thanks to interval compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mcs_auction::{DpHsrcAuction, Mechanism};
use mcs_num::rng;
use mcs_sim::Setting;
use mcs_types::{Instance, PriceGrid};

/// Rebuilds the instance with a different candidate grid. Grid steps are
/// limited to the 0.1 fixed-point atom, so |P| is scaled by widening the
/// range and coarsening/refining the step.
fn with_grid(instance: &Instance, min: f64, max: f64, step: f64) -> Instance {
    Instance::builder(instance.num_tasks())
        .bid_profile(instance.bids().clone())
        .skills(instance.skills().clone())
        .error_bounds(instance.deltas().to_vec())
        .price_grid(PriceGrid::from_f64(min, max, step).expect("valid grid"))
        .cost_range(instance.cmin(), instance.cmax())
        .build()
        .expect("same instance with a denser grid")
}

fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_hsrc_vs_workers");
    group.sample_size(10);
    for n in [80usize, 100, 120, 140] {
        let g = Setting::one(n).generate(1);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        group.bench_with_input(BenchmarkId::from_parameter(n), &g.instance, |b, inst| {
            let mut r = rng::seeded(7);
            b.iter(|| auction.run(inst, &mut r).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_hsrc_vs_tasks");
    group.sample_size(10);
    for k in [20usize, 30, 40, 50] {
        let g = Setting::two(k).generate(2);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        group.bench_with_input(BenchmarkId::from_parameter(k), &g.instance, |b, inst| {
            let mut r = rng::seeded(7);
            b.iter(|| auction.run(inst, &mut r).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_grid_density(c: &mut Criterion) {
    // Theorem 5: runtime must not grow with |P|. The three grids give
    // |P| = 13 / 251 / 3001.
    let base = Setting::one(100).generate(3).instance;
    let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
    let mut group = c.benchmark_group("dp_hsrc_vs_grid_density");
    group.sample_size(10);
    for (min, max, step) in [(35.0, 60.0, 2.0), (35.0, 60.0, 0.1), (35.0, 335.0, 0.1)] {
        let inst = with_grid(&base, min, max, step);
        let label = format!("grid_{min}_{max}_{step}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &inst, |b, inst| {
            let mut r = rng::seeded(7);
            b.iter(|| auction.run(inst, &mut r).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workers, bench_tasks, bench_grid_density);
criterion_main!(benches);
