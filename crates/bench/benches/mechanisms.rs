//! Head-to-head mechanism benches: DP-hSRC vs Baseline scheduling cost,
//! and the exact optimal solver on a small instance (the Table II story in
//! microbenchmark form).

use criterion::{criterion_group, criterion_main, Criterion};

use mcs_auction::{OptimalMechanism, ScheduleEngine, SelectionRule};
use mcs_sim::Setting;

fn bench_schedules(c: &mut Criterion) {
    let g = Setting::one(120).generate(5);
    let mut group = c.benchmark_group("schedule_construction");
    group.sample_size(20);
    group.bench_function("dp_hsrc_marginal", |b| {
        b.iter(|| {
            ScheduleEngine::new(SelectionRule::MarginalCoverage)
                .build(&g.instance)
                .expect("feasible")
        });
    });
    group.bench_function("baseline_static", |b| {
        b.iter(|| {
            ScheduleEngine::new(SelectionRule::StaticTotal)
                .build(&g.instance)
                .expect("feasible")
        });
    });
    group.finish();
}

fn bench_optimal_small(c: &mut Criterion) {
    // Small enough that exact branch-and-bound completes per iteration;
    // contrast its time with the greedy schedules above.
    let g = Setting::one(80).scaled_down(4).generate(5);
    let mech = OptimalMechanism::new();
    let mut group = c.benchmark_group("optimal_exact_small");
    group.sample_size(10);
    group.bench_function("bnb_20_workers", |b| {
        b.iter(|| mech.solve(&g.instance).expect("feasible"));
    });
    group.finish();
}

criterion_group!(benches, bench_schedules, bench_optimal_small);
criterion_main!(benches);
