//! Schedule-engine benchmark: eager full-rescan vs lazy greedy (CELF) vs
//! the default engine (lazy + rayon per-interval fan-out under the
//! `parallel` feature).
//!
//! The acceptance target for the lazy engine is a ≥2× schedule-build
//! speedup over the eager reference at Setting-II scale (N ≥ 300). All
//! three engines produce byte-identical schedules (see
//! `tests/schedule_equivalence.rs`); only the build cost differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mcs_auction::{ScheduleEngine, SelectionRule, Strategy};
use mcs_sim::Setting;
use mcs_types::Instance;

/// Large pools at and above Setting-II scale. `n300_k30` keeps the
/// Table I Setting I/II distributions verbatim; `n300_tight` tightens the
/// error bounds (δ ∈ [0.01, 0.02], so Q = 2 ln(1/δ) ≈ 8–9) so every task
/// needs tens of winners — the regime where the eager engine's full
/// rescans dominate and the lazy cache pays off hardest.
fn instances() -> Vec<(String, Instance)> {
    let mut tight = Setting::one(300);
    tight.delta_range = (0.01, 0.02);
    vec![
        (
            "n300_k30".to_string(),
            Setting::one(300).generate(7).instance,
        ),
        ("n300_tight".to_string(), tight.generate(7).instance),
    ]
}

fn bench_engines(c: &mut Criterion) {
    let instances = instances();
    let mut group = c.benchmark_group("schedule_engine");
    group.sample_size(10);
    for (n, inst) in &instances {
        group.bench_with_input(BenchmarkId::new("eager_rescan", n), inst, |b, inst| {
            b.iter(|| {
                ScheduleEngine::new(SelectionRule::MarginalCoverage)
                    .strategy(Strategy::Eager)
                    .build(inst)
                    .expect("feasible")
            });
        });
        group.bench_with_input(BenchmarkId::new("lazy_serial", n), inst, |b, inst| {
            b.iter(|| {
                ScheduleEngine::new(SelectionRule::MarginalCoverage)
                    .strategy(Strategy::Lazy)
                    .build(inst)
                    .expect("feasible")
            });
        });
        // Default engine: lazy, and additionally fans intervals out over
        // rayon when built with `--features parallel`.
        group.bench_with_input(BenchmarkId::new("default", n), inst, |b, inst| {
            b.iter(|| {
                ScheduleEngine::new(SelectionRule::MarginalCoverage)
                    .build(inst)
                    .expect("feasible")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
