//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). They share a tiny dependency-free
//! command-line parser ([`Cli`]) and the table/CSV output helpers from
//! [`mcs_sim::output`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use mcs_sim::output::{render_table, write_csv, TableRow};

/// Common command-line options for the experiment binaries.
///
/// ```text
/// --seed N          RNG seed (default 42)
/// --csv PATH        also write the rows as CSV
/// --samples N       Monte-Carlo validation samples (default 10000)
/// --neighbours N    neighbouring profiles for privacy runs (default 5)
/// --budget-secs S   per-price time budget for exact ILP solves (default 5)
/// --no-optimal      skip the exact optimal baseline
/// --full            run the full (slow) variant where applicable
/// --quick           shrink the workload (scaled-down settings)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// RNG seed for instance generation and sampling.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Monte-Carlo sample count where sampling is used.
    pub samples: usize,
    /// Number of neighbouring profiles in privacy experiments.
    pub neighbours: usize,
    /// Per-price ILP budget in seconds.
    pub budget_secs: u64,
    /// Skip the exact optimal computation.
    pub no_optimal: bool,
    /// Run the full (slow) variant.
    pub full: bool,
    /// Run a scaled-down variant for smoke testing.
    pub quick: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 42,
            csv: None,
            samples: 10_000,
            neighbours: 5,
            budget_secs: 5,
            no_optimal: false,
            full: false,
            quick: false,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`, exiting with usage text on error or
    /// `--help`.
    pub fn parse() -> Cli {
        match Cli::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--seed N] [--csv PATH] [--samples N] [--neighbours N] \
                     [--budget-secs S] [--no-optimal] [--full] [--quick]"
                );
                exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`Cli::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// or unparsable numbers.
    pub fn parse_from<I, S>(args: I) -> Result<Cli, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cli = Cli::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => cli.seed = next_value(&mut it, "--seed")?,
                "--samples" => cli.samples = next_value(&mut it, "--samples")?,
                "--neighbours" => {
                    cli.neighbours = next_value(&mut it, "--neighbours")?;
                }
                "--budget-secs" => {
                    cli.budget_secs = next_value(&mut it, "--budget-secs")?;
                }
                "--csv" => {
                    cli.csv = Some(PathBuf::from(it.next().ok_or("--csv needs a path")?));
                }
                "--no-optimal" => cli.no_optimal = true,
                "--full" => cli.full = true,
                "--quick" => cli.quick = true,
                "--help" | "-h" => return Err("help requested".into()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(cli)
    }

    /// The per-price ILP budget as a [`Duration`].
    pub fn budget(&self) -> Duration {
        Duration::from_secs(self.budget_secs)
    }
}

fn next_value<I, T>(it: &mut I, flag: &str) -> Result<T, String>
where
    I: Iterator<Item = String>,
    T: std::str::FromStr,
{
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

/// Prints rows as a table and, when requested, writes them to CSV.
pub fn emit<T: TableRow>(title: &str, rows: &[T], cli: &Cli) {
    println!("# {title}");
    println!("{}", render_table(rows));
    if let Some(path) = &cli.csv {
        match write_csv(path, rows) {
            Ok(()) => println!("(csv written to {})", path.display()),
            Err(e) => eprintln!("failed to write csv: {e}"),
        }
    }
}

/// Builds an inclusive integer range with a step, e.g. the paper's
/// x-axes (`80..=140` step 4).
pub fn axis(from: usize, to: usize, step: usize) -> Vec<usize> {
    assert!(step > 0, "step must be positive");
    (from..=to).step_by(step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let cli = Cli::parse_from(Vec::<String>::new()).unwrap();
        assert_eq!(cli, Cli::default());
    }

    #[test]
    fn parses_flags() {
        let cli = Cli::parse_from([
            "--seed",
            "7",
            "--csv",
            "/tmp/x.csv",
            "--samples",
            "100",
            "--no-optimal",
            "--full",
        ])
        .unwrap();
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.samples, 100);
        assert_eq!(cli.csv.as_deref(), Some(std::path::Path::new("/tmp/x.csv")));
        assert!(cli.no_optimal);
        assert!(cli.full);
        assert!(!cli.quick);
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(Cli::parse_from(["--bogus"]).is_err());
        assert!(Cli::parse_from(["--seed"]).is_err());
        assert!(Cli::parse_from(["--seed", "abc"]).is_err());
    }

    #[test]
    fn axis_ranges() {
        assert_eq!(axis(80, 140, 20), vec![80, 100, 120, 140]);
        assert_eq!(axis(5, 5, 1), vec![5]);
    }
}
