//! The price of robustness under chance-constrained coverage.
//!
//! For a fleet of seeded `uncertain-tasks` instances, the shortfall
//! budgets are tightened along a log-space ladder `γ_j(t) = γ_j^t`,
//! `t ∈ [0, 1]`: `t = 0` degenerates to the base quotas (γ → 1, no
//! inflation — the same uncertain weights with robustness switched
//! off), and `t = 1` recovers the generated budgets verbatim. Every
//! rung stays inside the generator's feasibility headroom because
//! `L_j(t) = t·L_j ≤ L_j`.
//!
//! Each rung reports two sides of the trade:
//!
//! * **payment premium** — the mean cheapest-entry total payment,
//!   normalized by the `t = 0` baseline: what the platform pays for
//!   the guarantee;
//! * **empirical shortfall** — the Monte Carlo shortfall check from
//!   `mcs-verify` (`chance::check_instance`) over the same instances:
//!   the largest observed `rate / γ_j` ratio and the largest analytic
//!   Chernoff bound at the sampled winner sets, showing how much of
//!   the budget the bound actually spends.
//!
//! ```text
//! usage: uncertain_premium [--seed N] [--out PATH] [--quick]
//! ```
//!
//! `--quick` shrinks the fleet and the sample count to a smoke-test
//! size (used by CI; the checked-in JSON comes from a full run).

use std::path::PathBuf;

use serde::Serialize;

use mcs_auction::{ScheduleEngine, SelectionRule};
use mcs_types::{BernoulliCompletion, CompletionModel, Instance};
use mcs_verify::chance::{self, ChanceStats};
use mcs_verify::gen::{generate, Shape};

/// Ladder positions in log-space toward the generated budgets.
const LADDER: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// Wilson z matching the verify harness (≈ 1e-4 two-sided).
const WILSON_Z: f64 = 3.89;

#[derive(Debug, Serialize)]
struct RungRow {
    /// Ladder position: exponent `t` applied to every budget.
    t: f64,
    /// Largest (loosest-to-tightest: smallest) budget on the rung.
    gamma_min: f64,
    gamma_max: f64,
    /// Mean cheapest-entry payment across the fleet, in price units.
    mean_payment: f64,
    /// `mean_payment` / the `t = 0` rung's mean payment.
    premium: f64,
    /// Largest empirical `shortfall rate / γ_j` across fleet and tasks.
    max_rate_ratio: f64,
    /// Largest analytic Chernoff bound at the sampled winner sets.
    max_analytic_bound: f64,
    /// Monte Carlo samples per instance.
    samples: u64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    bench: String,
    seed: u64,
    fleet: u64,
    quick: bool,
    rows: Vec<RungRow>,
}

/// Rebuilds `instance` with every budget raised to the power `t`.
fn rung_instance(instance: &Instance, t: f64) -> Instance {
    let CompletionModel::Bernoulli(b) = instance.completion() else {
        panic!("uncertain-tasks instances carry a Bernoulli model");
    };
    let gammas: Vec<f64> = b
        .gammas()
        .iter()
        .map(|g| g.powf(t).clamp(1e-9, 1.0 - 1e-9))
        .collect();
    let model = CompletionModel::Bernoulli(BernoulliCompletion::new(b.rows().to_vec(), gammas));
    instance
        .clone()
        .with_completion(model)
        .expect("rescaled model is valid")
}

fn measure_rung(fleet: u64, base_seed: u64, t: f64, samples: u64) -> RungRow {
    let mut stats = ChanceStats::default();
    let mut payments = 0.0f64;
    let mut gamma_min = f64::INFINITY;
    let mut gamma_max = 0.0f64;
    for seed in 0..fleet {
        let instance = rung_instance(&generate(Shape::UncertainTasks, base_seed + seed), t);
        if let CompletionModel::Bernoulli(b) = instance.completion() {
            for &g in b.gammas() {
                gamma_min = gamma_min.min(g);
                gamma_max = gamma_max.max(g);
            }
        }
        let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build(&instance)
            .expect("every ladder rung is feasible by construction");
        let payment = schedule
            .min_total_payment()
            .expect("feasible schedules are non-empty");
        payments += payment.as_f64();
        let checked = chance::check_instance(
            Shape::UncertainTasks,
            base_seed + seed,
            &instance,
            samples,
            WILSON_Z,
        )
        .unwrap_or_else(|report| panic!("MC shortfall check failed at t = {t}: {report}"));
        stats.merge(&checked);
    }
    RungRow {
        t,
        gamma_min,
        gamma_max,
        mean_payment: payments / fleet as f64,
        premium: f64::NAN, // filled in once the t = 0 baseline is known
        max_rate_ratio: stats.max_rate_ratio,
        max_analytic_bound: stats.max_analytic_bound,
        samples: stats.samples,
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_uncertain.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: uncertain_premium [--seed N] [--out PATH] [--quick]");
                std::process::exit(2);
            }
        }
    }
    let (fleet, samples) = if quick { (8, 1_000) } else { (40, 10_000) };

    println!("    t   γ range              mean payment  premium  rate/γ  analytic");
    let mut rows: Vec<RungRow> = Vec::new();
    for t in LADDER {
        let mut row = measure_rung(fleet, seed, t, samples);
        let base = rows.first().map_or(row.mean_payment, |r| r.mean_payment);
        row.premium = row.mean_payment / base;
        println!(
            "{:5.2}   [{:.2e}, {:.2e}]  {:12.1}  {:7.3}  {:6.3}  {:8.4}",
            row.t,
            row.gamma_min,
            row.gamma_max,
            row.mean_payment,
            row.premium,
            row.max_rate_ratio,
            row.max_analytic_bound
        );
        rows.push(row);
    }
    assert!(
        rows.iter().all(|r| r.max_rate_ratio <= 1.0),
        "some task overspent its shortfall budget"
    );

    let output = BenchOutput {
        bench: "uncertain_premium".into(),
        seed,
        fleet,
        quick,
        rows,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&out, json + "\n").expect("write bench output");
    println!("wrote {}", out.display());
}
