//! Load generator for the `mcs-service` auction daemon.
//!
//! Drives a loopback TCP service with two workloads at several
//! concurrency levels and records throughput and exact client-side
//! latency quantiles into `BENCH_service.json`:
//!
//! * **cold** — every request carries a *distinct* instance, so each one
//!   pays a full schedule + PMF build;
//! * **cached** — every request carries the *same* instance, so after
//!   the first build the service answers from its LRU cache.
//!
//! The ratio of the two p50s (at concurrency 1) is the headline number:
//! the cached path must be at least ~5× faster for the cache to carry
//! a multi-requester platform.
//!
//! ```text
//! usage: service_load [--seed N] [--out PATH] [--quick]
//! ```

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde::Serialize;

use mcs_service::{Request, Response, Service, ServiceConfig, TcpClient, TcpServer};
use mcs_sim::Setting;
use mcs_types::Instance;

/// Table I setting 1 scaled to this worker count: big enough that a
/// schedule build (O(N²K), ~30 ms here) dominates shipping the instance
/// over loopback (O(NK) JSON, ~3 ms here), so the cache's effect on the
/// end-to-end path is visible rather than drowned in transport cost.
const WORKERS_IN_SETTING: usize = 560;
const EPSILON: f64 = 0.1;

#[derive(Debug, Serialize)]
struct ScenarioResult {
    scenario: String,
    concurrency: usize,
    requests: usize,
    busy_responses: u64,
    errors: u64,
    elapsed_ms: f64,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    bench: String,
    transport: String,
    setting: String,
    seed: u64,
    service_workers: usize,
    scenarios: Vec<ScenarioResult>,
    /// cold p50 / cached p50 at concurrency 1.
    cached_speedup_p50: f64,
}

fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One scenario run: fresh service + TCP front-end, `concurrency`
/// connections splitting `requests.len()` pre-built requests, exact
/// per-request latencies measured client-side.
fn run_scenario(name: &str, concurrency: usize, requests: Vec<Request>) -> ScenarioResult {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 1024,
        ..ServiceConfig::default()
    });
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("bind loopback");
    let addr: SocketAddr = tcp.local_addr();
    let total = requests.len();

    // Deal requests round-robin so every connection sees the same mix.
    let mut per_client: Vec<Vec<Request>> = (0..concurrency).map(|_| Vec::new()).collect();
    for (i, request) in requests.into_iter().enumerate() {
        per_client[i % concurrency].push(request);
    }

    let started = Instant::now();
    let handles: Vec<_> = per_client
        .into_iter()
        .map(|batch| {
            thread::spawn(move || {
                let mut conn = TcpClient::connect(addr).expect("connect loopback");
                let mut latencies = Vec::with_capacity(batch.len());
                let mut busy = 0u64;
                let mut errors = 0u64;
                for request in &batch {
                    let t = Instant::now();
                    let response = conn.call(request).expect("transport failure");
                    latencies.push(t.elapsed().as_micros() as u64);
                    match response {
                        Response::Busy { .. } => busy += 1,
                        Response::Error { message } => {
                            eprintln!("request error: {message}");
                            errors += 1;
                        }
                        _ => {}
                    }
                }
                (latencies, busy, errors)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(total);
    let mut busy = 0u64;
    let mut errors = 0u64;
    for handle in handles {
        let (lat, b, e) = handle.join().expect("client thread panicked");
        latencies.extend(lat);
        busy += b;
        errors += e;
    }
    let elapsed = started.elapsed();

    let Response::Metrics(metrics) = service.client().call(Request::Metrics) else {
        panic!("metrics request failed");
    };
    tcp.shutdown();
    service.shutdown();

    latencies.sort_unstable();
    ScenarioResult {
        scenario: name.to_string(),
        concurrency,
        requests: total,
        busy_responses: busy,
        errors,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_rps: total as f64 / elapsed.as_secs_f64(),
        p50_us: quantile_us(&latencies, 0.50),
        p95_us: quantile_us(&latencies, 0.95),
        p99_us: quantile_us(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        cache_hits: metrics.cache_hits,
        cache_misses: metrics.cache_misses,
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_service.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: service_load [--seed N] [--out PATH] [--quick]");
                std::process::exit(2);
            }
        }
    }

    let (cold_n, cached_n) = if quick { (20, 200) } else { (90, 900) };
    let setting = Setting::one(WORKERS_IN_SETTING);
    let shared_instance: Arc<Instance> = Arc::new(setting.generate(seed).instance);

    let cold_requests = |count: usize, salt: u64| -> Vec<Request> {
        (0..count)
            .map(|i| Request::RunAuction {
                instance: setting.generate(seed + salt + i as u64 + 1).instance,
                epsilon: EPSILON,
                seed: i as u64,
            })
            .collect()
    };
    let cached_requests = |count: usize| -> Vec<Request> {
        (0..count)
            .map(|i| Request::RunAuction {
                instance: (*shared_instance).clone(),
                epsilon: EPSILON,
                seed: i as u64,
            })
            .collect()
    };

    println!(
        "service_load: setting one({WORKERS_IN_SETTING}), seed {seed}, \
         {cold_n} cold / {cached_n} cached requests per level"
    );
    let mut scenarios = Vec::new();
    for &concurrency in &[1usize, 2, 4] {
        let cold = run_scenario(
            "cold",
            concurrency,
            cold_requests(cold_n, 1000 * concurrency as u64),
        );
        println!(
            "  cold   c={}: {:>7.1} req/s  p50 {:>6} µs  p95 {:>6} µs  p99 {:>6} µs",
            concurrency, cold.throughput_rps, cold.p50_us, cold.p95_us, cold.p99_us
        );
        scenarios.push(cold);
        let cached = run_scenario("cached", concurrency, cached_requests(cached_n));
        println!(
            "  cached c={}: {:>7.1} req/s  p50 {:>6} µs  p95 {:>6} µs  p99 {:>6} µs",
            concurrency, cached.throughput_rps, cached.p50_us, cached.p95_us, cached.p99_us
        );
        scenarios.push(cached);
        // Let ephemeral loopback sockets settle between levels.
        thread::sleep(Duration::from_millis(50));
    }

    let p50 = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.scenario == name && s.concurrency == 1)
            .map(|s| s.p50_us)
            .unwrap_or(0)
    };
    let speedup = p50("cold") as f64 / p50("cached").max(1) as f64;
    println!("  cached speedup at p50 (c=1): {speedup:.1}×");

    let output = BenchOutput {
        bench: "service_load".to_string(),
        transport: "loopback_tcp_line_json".to_string(),
        setting: format!("table1/setting1 n={WORKERS_IN_SETTING}"),
        seed,
        service_workers: 2,
        scenarios,
        cached_speedup_p50: speedup,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&out, json + "\n").expect("write bench output");
    println!("wrote {}", out.display());
}
