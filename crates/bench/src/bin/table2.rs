//! Table II: execution time of DP-hSRC vs the optimal algorithm.
//!
//! Paper: Setting I with N ∈ {80, 88, …, 136} and Setting II with
//! K ∈ {20, 24, …, 48}. DP-hSRC stays ~0.16 s while the optimal solver's
//! time explodes (6.5 s → 6139 s with GUROBI). Absolute numbers differ
//! from the paper (our exact solver is a from-scratch branch-and-bound,
//! not GUROBI) — the reproduced claim is the *shape*: flat vs exploding.
//!
//! By default the optimal runs with a per-price time budget
//! (`--budget-secs`, default 5 s) so the sweep terminates anywhere;
//! budget-hit rows are flagged `opt_exact = false`. `--full` raises the
//! budget to 120 s per solve. `--no-optimal` times only DP-hSRC.

use std::time::Duration;

use mcs_bench::{axis, emit, Cli};
use mcs_sim::experiments::timing_sweep;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let budget = if cli.full {
        Duration::from_secs(120)
    } else {
        cli.budget()
    };
    let run_optimal = !cli.no_optimal;

    let (xs_n, xs_k) = if cli.quick {
        (axis(16, 30, 2), axis(4, 10, 1))
    } else {
        (axis(80, 136, 8), axis(20, 48, 4))
    };

    let setting_one = |x: usize| {
        if cli.quick {
            Setting::one(x * 4).scaled_down(4)
        } else {
            Setting::one(x)
        }
    };
    let rows = timing_sweep(&xs_n, setting_one, cli.seed, run_optimal, Some(budget))
        .unwrap_or_else(|e| panic!("table 2 (setting I) failed: {e}"));
    emit(
        "Table II (Setting I): execution time vs number of workers",
        &rows,
        &cli,
    );

    let setting_two = |x: usize| {
        if cli.quick {
            Setting::two(x * 4).scaled_down(4)
        } else {
            Setting::two(x)
        }
    };
    let rows = timing_sweep(&xs_k, setting_two, cli.seed, run_optimal, Some(budget))
        .unwrap_or_else(|e| panic!("table 2 (setting II) failed: {e}"));
    emit(
        "Table II (Setting II): execution time vs number of tasks",
        &rows,
        &cli,
    );
}
