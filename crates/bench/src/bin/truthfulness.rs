//! Theorem 3 check: strategic price deviations vs the ε·Δc bound.
//!
//! Sweeps misreported prices for several workers and reports both the
//! strict expected-utility gain (full accounting, including the worker's
//! own winner-membership flips — which the paper's proof does not model)
//! and the price-channel gain, which differential privacy provably caps at
//! `(e^ε − 1)·Δc`. See EXPERIMENTS.md for the discussion of the two
//! accountings.

use mcs_bench::{emit, Cli};
use mcs_sim::experiments::deviation_experiment;
use mcs_sim::Setting;
use mcs_types::WorkerId;

fn main() {
    let cli = Cli::parse();
    let setting = if cli.full {
        Setting::one(100)
    } else {
        Setting::one(80).scaled_down(4)
    };
    let deviations = if cli.full { 26 } else { 12 };
    let mut rows = Vec::new();
    for worker in 0..8u32 {
        let report = deviation_experiment(
            &setting,
            cli.seed,
            WorkerId(worker % setting.num_workers as u32),
            deviations,
        )
        .unwrap_or_else(|e| panic!("deviation experiment failed: {e}"));
        rows.push(report);
    }
    emit(
        "Theorem 3 check: max gain from price misreporting",
        &rows,
        &cli,
    );
    assert!(
        rows.iter().all(|r| r.channel_within_budget()),
        "price-channel gain exceeded the DP bound — contradicts Theorem 2"
    );
    let strict_ok = rows.iter().filter(|r| r.strict_within_budget()).count();
    println!(
        "price-channel bound holds for all workers; strict eps*dc bound held for {}/{} \
         (membership-channel violations are expected — see EXPERIMENTS.md)",
        strict_ok,
        rows.len()
    );
}
