//! Schedule-build scaling along both instance axes.
//!
//! **Task axis (`K`):** for each task count on the axis, one
//! deterministic large-sparse instance (bundles ≪ K, from `mcs-verify`'s
//! sized generator) is scheduled three ways under
//! [`SelectionRule::MarginalCoverage`]:
//!
//! * **dense** — materialize the dense `N×K` coverage matrix first
//!   ([`Strategy::Dense`]), the pre-refactor data path;
//! * **sparse** — the default CSR engine ([`Strategy::Auto`]);
//! * **incremental** — the CSR engine with the ascending price sweep
//!   reusing residual state across intervals ([`Strategy::Incremental`]).
//!
//! **Worker axis (`N`):** for each worker count, one deterministic
//! many-workers instance (`K = N/100` tasks, bundles of 2–4) is
//! scheduled with every scalable strategy:
//!
//! * **lazy** — the serial CELF engine ([`Strategy::Lazy`]), the best
//!   pre-indexed baseline on this axis;
//! * **incremental** — the ascending sweep with winner replay
//!   ([`Strategy::Incremental`]); skipped above
//!   [`INCREMENTAL_N_LIMIT`] workers, where replaying incumbent winners
//!   against the newcomer pool dominates the build;
//! * **indexed** — the candidate index running every price interval's
//!   greedy selection in lockstep over one walk of the global
//!   gain-rank order ([`Strategy::Indexed`]).
//!
//! All engines on an axis point must produce observationally identical
//! schedules (asserted here, exhaustively checked by `verify_sweep`);
//! the point of the bench is the wall-clock gap, recorded into
//! `BENCH_schedule.json`. The acceptance bars: the sparse core wins over
//! dense from `K = 2000` up, and the indexed engine completes the
//! `N = 10⁶` point in single-digit seconds. (The original ≥5× indexed
//! target from `N = 100_000` up was not reached — the recorded run
//! shows 3.5–4.8×; see EXPERIMENTS.md.)
//!
//! ```text
//! usage: schedule_scaling [--seed N] [--out PATH] [--quick]
//! ```
//!
//! `--quick` shrinks both axes and the repetition count to a smoke-test
//! size (used by CI; the checked-in JSON comes from a full run).

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use mcs_auction::{PriceSchedule, ScheduleEngine, SelectionRule, Strategy};
use mcs_types::Instance;
use mcs_verify::gen::{large_sparse_sized, many_workers_sized};

/// Task counts swept by a full run; chosen to straddle the `K = 2000`
/// acceptance threshold and reach the generator's 10k ceiling.
const FULL_AXIS: [usize; 6] = [500, 1000, 2000, 4000, 7000, 10_000];
/// Smoke axis for `--quick` (small enough for debug CI runners).
const QUICK_AXIS: [usize; 2] = [300, 600];
/// Worker counts swept by a full run; straddles the `N = 100_000`
/// acceptance threshold and ends at the million-worker headline point.
const FULL_N_AXIS: [usize; 5] = [10_000, 30_000, 100_000, 300_000, 1_000_000];
/// Smoke worker axis for `--quick`.
const QUICK_N_AXIS: [usize; 1] = [10_000];
/// The incremental sweep replays every incumbent winner against each
/// interval's newcomers; past this pool size that quadratic-ish work
/// dominates and the engine leaves the comparison.
const INCREMENTAL_N_LIMIT: usize = 100_000;

#[derive(Debug, Serialize)]
struct AxisPoint {
    num_tasks: usize,
    num_workers: usize,
    /// Stored coverage entries; the dense path touches `workers × tasks`
    /// cells instead.
    nnz: usize,
    dense_ms: f64,
    sparse_ms: f64,
    incremental_ms: f64,
    /// dense / sparse build-time ratio (> 1 means the CSR core wins).
    speedup_sparse: f64,
    /// dense / incremental build-time ratio.
    speedup_incremental: f64,
}

#[derive(Debug, Serialize)]
struct WorkerAxisPoint {
    num_workers: usize,
    num_tasks: usize,
    nnz: usize,
    lazy_ms: f64,
    /// `None` above [`INCREMENTAL_N_LIMIT`] workers.
    incremental_ms: Option<f64>,
    indexed_ms: f64,
    /// Best pre-indexed engine / indexed build-time ratio (> 1 means the
    /// candidate-index engine wins).
    speedup_indexed: f64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    bench: String,
    rule: String,
    seed: u64,
    reps: usize,
    quick: bool,
    rows: Vec<AxisPoint>,
    worker_rows: Vec<WorkerAxisPoint>,
}

/// Best-of-`reps` wall-clock for one builder, in milliseconds.
fn time_builder(
    reps: usize,
    build: impl Fn() -> Result<PriceSchedule, mcs_types::McsError>,
) -> (PriceSchedule, f64) {
    let mut best = f64::INFINITY;
    let mut schedule = None;
    for _ in 0..reps {
        let t = Instant::now();
        let s = build().expect("generated instance is feasible");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        schedule = Some(s);
    }
    (schedule.expect("reps >= 1"), best)
}

fn build_with(
    instance: &Instance,
    strategy: Strategy,
) -> Result<PriceSchedule, mcs_types::McsError> {
    ScheduleEngine::new(SelectionRule::MarginalCoverage)
        .strategy(strategy)
        .build(instance)
}

/// Observational schedule equality: same prices, same winner sets.
fn assert_same(size: usize, name: &str, a: &PriceSchedule, b: &PriceSchedule) {
    assert_eq!(a.prices(), b.prices(), "size={size}: {name} prices diverge");
    for i in 0..a.len() {
        assert_eq!(
            a.winners(i),
            b.winners(i),
            "size={size}: {name} winners diverge at price index {i}"
        );
    }
}

fn measure(instance: &Instance, reps: usize) -> AxisPoint {
    let (dense, dense_ms) = time_builder(reps, || build_with(instance, Strategy::Dense));
    let (sparse, sparse_ms) = time_builder(reps, || build_with(instance, Strategy::Auto));
    let (incremental, incremental_ms) =
        time_builder(reps, || build_with(instance, Strategy::Incremental));
    let k = instance.num_tasks();
    assert_same(k, "dense-vs-sparse", &dense, &sparse);
    assert_same(k, "dense-vs-incremental", &dense, &incremental);
    AxisPoint {
        num_tasks: k,
        num_workers: instance.num_workers(),
        nnz: instance.sparse_coverage().nnz(),
        dense_ms,
        sparse_ms,
        incremental_ms,
        speedup_sparse: dense_ms / sparse_ms.max(1e-9),
        speedup_incremental: dense_ms / incremental_ms.max(1e-9),
    }
}

fn measure_workers(instance: &Instance, reps: usize) -> WorkerAxisPoint {
    let n = instance.num_workers();
    let (lazy, lazy_ms) = time_builder(reps, || build_with(instance, Strategy::Lazy));
    let incremental_ms = if n <= INCREMENTAL_N_LIMIT {
        let (incremental, ms) = time_builder(reps, || build_with(instance, Strategy::Incremental));
        assert_same(n, "lazy-vs-incremental", &lazy, &incremental);
        Some(ms)
    } else {
        None
    };
    let (indexed, indexed_ms) = time_builder(reps, || build_with(instance, Strategy::Indexed));
    assert_same(n, "lazy-vs-indexed", &lazy, &indexed);
    let best_existing = incremental_ms.map_or(lazy_ms, |ms| ms.min(lazy_ms));
    WorkerAxisPoint {
        num_workers: n,
        num_tasks: instance.num_tasks(),
        nnz: instance.sparse_coverage().nnz(),
        lazy_ms,
        incremental_ms,
        indexed_ms,
        speedup_indexed: best_existing / indexed_ms.max(1e-9),
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_schedule.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: schedule_scaling [--seed N] [--out PATH] [--quick]");
                std::process::exit(2);
            }
        }
    }

    let (axis, n_axis, reps): (&[usize], &[usize], usize) = if quick {
        (&QUICK_AXIS, &QUICK_N_AXIS, 1)
    } else {
        (&FULL_AXIS, &FULL_N_AXIS, 5)
    };

    println!("schedule_scaling: seed {seed}, reps {reps}, K axis {axis:?}");
    println!("        K    N      nnz   dense ms  sparse ms    incr ms  speedup");
    let mut rows = Vec::new();
    for &k in axis {
        let instance = large_sparse_sized(k, seed);
        let row = measure(&instance, reps);
        println!(
            "  {:>7} {:>4} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>7.2}×",
            row.num_tasks,
            row.num_workers,
            row.nnz,
            row.dense_ms,
            row.sparse_ms,
            row.incremental_ms,
            row.speedup_sparse
        );
        rows.push(row);
    }

    println!("worker axis: N axis {n_axis:?}");
    println!("        N      K      nnz    lazy ms    incr ms indexed ms  speedup");
    let mut worker_rows = Vec::new();
    for &n in n_axis {
        // Big pools amortize timing noise on their own; one repetition
        // keeps the headline point affordable.
        let point_reps = if n >= 300_000 { 1 } else { reps };
        let instance = many_workers_sized(n, seed);
        let row = measure_workers(&instance, point_reps);
        println!(
            "  {:>7} {:>6} {:>8} {:>10.3} {:>10} {:>10.3} {:>7.2}×",
            row.num_workers,
            row.num_tasks,
            row.nnz,
            row.lazy_ms,
            row.incremental_ms
                .map_or("—".to_string(), |ms| format!("{ms:.3}")),
            row.indexed_ms,
            row.speedup_indexed
        );
        worker_rows.push(row);
    }

    let output = BenchOutput {
        bench: "schedule_scaling".to_string(),
        rule: "MarginalCoverage".to_string(),
        seed,
        reps,
        quick,
        rows,
        worker_rows,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&out, json + "\n").expect("write bench output");
    println!("wrote {}", out.display());
}
