//! Dense-vs-sparse schedule-build scaling along the task-count axis.
//!
//! For each task count `K` on the axis, one deterministic large-sparse
//! instance (bundles ≪ K, from `mcs-verify`'s sized generator) is
//! scheduled three ways under [`SelectionRule::MarginalCoverage`]:
//!
//! * **dense** — materialize the dense `N×K` coverage matrix first
//!   ([`build_schedule_dense`]), the pre-refactor data path;
//! * **sparse** — the default CSR engine ([`build_schedule`]);
//! * **incremental** — the CSR engine with the ascending price sweep
//!   reusing residual state across intervals
//!   ([`build_schedule_incremental`]).
//!
//! All three must produce observationally identical schedules (asserted
//! here, exhaustively checked by `verify_sweep`); the point of the bench
//! is the wall-clock gap, recorded into `BENCH_schedule.json`. The
//! acceptance bar for the sparse core is a strict win over dense from
//! `K = 2000` up.
//!
//! ```text
//! usage: schedule_scaling [--seed N] [--out PATH] [--quick]
//! ```
//!
//! `--quick` shrinks the axis and repetition count to a smoke-test size
//! (used by CI; the checked-in JSON comes from a full run).

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use mcs_auction::{
    build_schedule, build_schedule_dense, build_schedule_incremental, PriceSchedule, SelectionRule,
};
use mcs_types::Instance;
use mcs_verify::gen::large_sparse_sized;

/// Task counts swept by a full run; chosen to straddle the `K = 2000`
/// acceptance threshold and reach the generator's 10k ceiling.
const FULL_AXIS: [usize; 6] = [500, 1000, 2000, 4000, 7000, 10_000];
/// Smoke axis for `--quick` (small enough for debug CI runners).
const QUICK_AXIS: [usize; 2] = [300, 600];

#[derive(Debug, Serialize)]
struct AxisPoint {
    num_tasks: usize,
    num_workers: usize,
    /// Stored coverage entries; the dense path touches `workers × tasks`
    /// cells instead.
    nnz: usize,
    dense_ms: f64,
    sparse_ms: f64,
    incremental_ms: f64,
    /// dense / sparse build-time ratio (> 1 means the CSR core wins).
    speedup_sparse: f64,
    /// dense / incremental build-time ratio.
    speedup_incremental: f64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    bench: String,
    rule: String,
    seed: u64,
    reps: usize,
    quick: bool,
    rows: Vec<AxisPoint>,
}

/// Best-of-`reps` wall-clock for one builder, in milliseconds.
fn time_builder(
    reps: usize,
    build: impl Fn() -> Result<PriceSchedule, mcs_types::McsError>,
) -> (PriceSchedule, f64) {
    let mut best = f64::INFINITY;
    let mut schedule = None;
    for _ in 0..reps {
        let t = Instant::now();
        let s = build().expect("generated instance is feasible");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        schedule = Some(s);
    }
    (schedule.expect("reps >= 1"), best)
}

/// Observational schedule equality: same prices, same winner sets.
fn assert_same(k: usize, name: &str, a: &PriceSchedule, b: &PriceSchedule) {
    assert_eq!(a.prices(), b.prices(), "K={k}: {name} prices diverge");
    for i in 0..a.len() {
        assert_eq!(
            a.winners(i),
            b.winners(i),
            "K={k}: {name} winners diverge at price index {i}"
        );
    }
}

fn measure(instance: &Instance, reps: usize) -> AxisPoint {
    let rule = SelectionRule::MarginalCoverage;
    let (dense, dense_ms) = time_builder(reps, || build_schedule_dense(instance, rule));
    let (sparse, sparse_ms) = time_builder(reps, || build_schedule(instance, rule));
    let (incremental, incremental_ms) =
        time_builder(reps, || build_schedule_incremental(instance, rule));
    let k = instance.num_tasks();
    assert_same(k, "dense-vs-sparse", &dense, &sparse);
    assert_same(k, "dense-vs-incremental", &dense, &incremental);
    AxisPoint {
        num_tasks: k,
        num_workers: instance.num_workers(),
        nnz: instance.sparse_coverage().nnz(),
        dense_ms,
        sparse_ms,
        incremental_ms,
        speedup_sparse: dense_ms / sparse_ms.max(1e-9),
        speedup_incremental: dense_ms / incremental_ms.max(1e-9),
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_schedule.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: schedule_scaling [--seed N] [--out PATH] [--quick]");
                std::process::exit(2);
            }
        }
    }

    let (axis, reps): (&[usize], usize) = if quick {
        (&QUICK_AXIS, 1)
    } else {
        (&FULL_AXIS, 5)
    };

    println!("schedule_scaling: seed {seed}, reps {reps}, K axis {axis:?}");
    println!("        K    N      nnz   dense ms  sparse ms    incr ms  speedup");
    let mut rows = Vec::new();
    for &k in axis {
        let instance = large_sparse_sized(k, seed);
        let row = measure(&instance, reps);
        println!(
            "  {:>7} {:>4} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>7.2}×",
            row.num_tasks,
            row.num_workers,
            row.nnz,
            row.dense_ms,
            row.sparse_ms,
            row.incremental_ms,
            row.speedup_sparse
        );
        rows.push(row);
    }

    let output = BenchOutput {
        bench: "schedule_scaling".to_string(),
        rule: "MarginalCoverage".to_string(),
        seed,
        reps,
        quick,
        rows,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&out, json + "\n").expect("write bench output");
    println!("wrote {}", out.display());
}
