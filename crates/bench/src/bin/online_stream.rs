//! Streaming-auction bench: per-arrival decision latency through the
//! durable service endpoints, and the incremental vs from-scratch
//! hindsight-pricing comparison in `mcs-sim`'s online module.
//!
//! Two measurements land in `BENCH_online.json`:
//!
//! * **service arrivals** — a seeded stream driven through
//!   `open_stream` / `arrive` / `close_stream` on a durable service
//!   (fsync-on-accept), with exact client-side latency quantiles per
//!   arrival. This is the end-to-end cost of one irrevocable online
//!   decision, WAL included.
//! * **pricing paths** — `StageThreshold` runs with
//!   [`PricingPath::Incremental`] (PR 5 warm-started replay) against
//!   [`PricingPath::FromScratch`] (full residual rebuild per arrival)
//!   on identical timelines. Both must be observationally identical;
//!   the wall-clock ratio is the headline. Elapsed times are the
//!   minimum over `REPEATS` runs, so the speedup is a floor-to-floor
//!   comparison, not noise.
//!
//! ```text
//! usage: online_stream [--seed N] [--out PATH] [--quick]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use ed25519::{hex_encode, SigningKey};
use mcs_service::{
    BidEnvelope, DurabilityConfig, Request, Response, RosterEntry, RoundSpec, Service,
    ServiceConfig, StreamSpec,
};
use mcs_sim::online::{
    ArrivalTimeline, OnlineMechanism, PricingPath, StageThreshold, TimelineConfig,
};
use mcs_sim::Setting;
use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};

const REPEATS: usize = 3;

#[derive(Debug, Serialize)]
struct ArrivalScenario {
    scenario: String,
    roster: usize,
    sample_target: usize,
    arrivals: usize,
    accepted: usize,
    fallback_threshold: bool,
    /// Exact client-side per-arrival decision latency.
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    /// Per-arrival WAL cost context: frames and fsyncs over the stream.
    wal_frames: u64,
    wal_fsyncs: u64,
}

#[derive(Debug, Serialize)]
struct PricingScenario {
    workers: usize,
    arrivals: usize,
    /// Minimum over `REPEATS` runs, milliseconds.
    incremental_ms: f64,
    from_scratch_ms: f64,
    /// `from_scratch_ms / incremental_ms`.
    speedup: f64,
    /// Replay counters of the incremental path's final run.
    replay_skipped: u64,
    replay_confirmed: u64,
    replay_rebuilt: u64,
    /// Whether the two paths produced identical decisions, payments and
    /// competitive ratios (they must).
    observationally_identical: bool,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    bench: String,
    seed: u64,
    repeats: usize,
    service: Vec<ArrivalScenario>,
    pricing: Vec<PricingScenario>,
    /// Geometric mean of the per-size pricing speedups.
    incremental_speedup_geomean: f64,
}

fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn key_for(worker: u32, seed: u64) -> SigningKey {
    let mut key = [0u8; 32];
    key[..4].copy_from_slice(&worker.to_le_bytes());
    key[8..16].copy_from_slice(&seed.to_le_bytes());
    key[31] = 0xB2;
    SigningKey::from_seed(key)
}

fn stream_spec(round_id: u64, roster: u32, sample_target: usize, seed: u64) -> StreamSpec {
    StreamSpec {
        round: RoundSpec {
            round_id,
            num_tasks: 3,
            error_bounds: vec![0.8, 0.8, 0.8],
            price_min: Price::from_f64(1.0),
            price_max: Price::from_f64(30.0),
            price_step: Price::from_f64(1.0),
            cost_min: Price::from_f64(1.0),
            cost_max: Price::from_f64(30.0),
            epsilon: 0.5,
            roster: (0..roster)
                .map(|w| RosterEntry {
                    worker: WorkerId(w),
                    public_key: hex_encode(&key_for(w, seed).verifying_key().to_bytes()),
                    skills: vec![0.9, 0.9, 0.9],
                })
                .collect(),
        },
        sample_target,
        seed,
    }
}

/// Drives one full stream through a fresh durable service and measures
/// every `arrive` round-trip exactly.
fn run_service_scenario(
    name: &str,
    roster: u32,
    sample_target: usize,
    seed: u64,
) -> ArrivalScenario {
    let dir = std::env::temp_dir().join(format!("mcs-bench-online-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Service::start(ServiceConfig {
        workers: 1,
        durability: Some(DurabilityConfig::new(&dir)),
        ..ServiceConfig::default()
    });
    let client = service.client();

    let spec = stream_spec(1, roster, sample_target, seed);
    let Response::StreamOpened { .. } = client.call(Request::OpenStream { spec }) else {
        panic!("open_stream failed");
    };

    // Pre-sign every envelope so signing cost stays out of the timings.
    let envelopes: Vec<BidEnvelope> = (0..roster)
        .map(|w| {
            let bid = Bid::new(
                Bundle::new(vec![TaskId(w % 3), TaskId((w + 1) % 3)]),
                Price::from_f64(2.0 + f64::from(w % 25)),
            );
            BidEnvelope::sign(
                1,
                WorkerId(w),
                bid,
                u64::from(w) + 1,
                u64::MAX,
                &key_for(w, seed),
            )
        })
        .collect();

    let mut latencies = Vec::with_capacity(envelopes.len());
    let mut accepted = 0usize;
    for envelope in envelopes {
        let t = Instant::now();
        let response = client.call(Request::Arrive { envelope });
        latencies.push(t.elapsed().as_micros() as u64);
        match response {
            Response::ArrivalDecided { accepted: a, .. } => accepted += usize::from(a),
            other => panic!("arrival not decided: {other:?}"),
        }
    }

    let Response::Metrics(metrics) = client.call(Request::Metrics) else {
        panic!("metrics failed");
    };
    let Response::StreamStatus(status) = client.call(Request::RoundStatus { round_id: 1 }) else {
        panic!("status failed");
    };
    let fallback = status.posted_price.is_none();
    let Response::StreamClosed(receipt) = client.call(Request::CloseStream { round_id: 1 }) else {
        panic!("close failed");
    };
    assert_eq!(receipt.accepted.len(), accepted);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort_unstable();
    ArrivalScenario {
        scenario: name.to_string(),
        roster: roster as usize,
        sample_target,
        arrivals: latencies.len(),
        accepted,
        fallback_threshold: fallback,
        p50_us: quantile_us(&latencies, 0.50),
        p99_us: quantile_us(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        wal_frames: metrics.wal_frames,
        wal_fsyncs: metrics.wal_fsyncs,
    }
}

/// Times `StageThreshold` over one timeline under both hindsight pricing
/// paths and checks they agree on everything observable.
fn run_pricing_scenario(workers: usize, seed: u64) -> PricingScenario {
    let instance = Setting::one(workers).generate(seed).instance;
    let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), seed);

    let time_path = |path: PricingPath| {
        let mechanism = StageThreshold::new().pricing(path);
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..REPEATS {
            let t = Instant::now();
            let report = mechanism
                .run(&instance, &timeline, seed)
                .expect("online round failed");
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
            last = Some(report);
        }
        (best, last.expect("at least one run"))
    };

    let (incremental_ms, inc) = time_path(PricingPath::Incremental);
    let (from_scratch_ms, fs) = time_path(PricingPath::FromScratch);

    let identical = inc.accepted == fs.accepted
        && inc.total_payment == fs.total_payment
        && inc.competitive_ratio == fs.competitive_ratio
        && inc
            .decisions
            .iter()
            .zip(fs.decisions.iter())
            .all(|(a, b)| a.decision == b.decision && a.hindsight == b.hindsight);

    PricingScenario {
        workers,
        arrivals: timeline.len(),
        incremental_ms,
        from_scratch_ms,
        speedup: from_scratch_ms / incremental_ms.max(1e-9),
        replay_skipped: inc.replay.skipped,
        replay_confirmed: inc.replay.confirmed,
        replay_rebuilt: inc.replay.rebuilt,
        observationally_identical: identical,
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_online.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: online_stream [--seed N] [--out PATH] [--quick]");
                std::process::exit(2);
            }
        }
    }

    let service_sizes: &[(u32, usize)] = if quick {
        &[(100, 25)]
    } else {
        &[(100, 25), (400, 100)]
    };
    let pricing_sizes: &[usize] = if quick { &[80] } else { &[80, 160, 320] };

    let mut service = Vec::new();
    for &(roster, sample) in service_sizes {
        let name = format!("stream-{roster}");
        let s = run_service_scenario(&name, roster, sample, seed);
        println!(
            "service {name}: {} arrivals, {} accepted, p50 {} µs, p99 {} µs, \
             {} fsyncs",
            s.arrivals, s.accepted, s.p50_us, s.p99_us, s.wal_fsyncs
        );
        service.push(s);
    }

    let mut pricing = Vec::new();
    for &workers in pricing_sizes {
        let p = run_pricing_scenario(workers, seed);
        println!(
            "pricing n={workers}: incremental {:.1} ms vs from-scratch {:.1} ms \
             ({:.1}×, identical: {})",
            p.incremental_ms, p.from_scratch_ms, p.speedup, p.observationally_identical
        );
        pricing.push(p);
    }

    let geomean = pricing
        .iter()
        .map(|p| p.speedup.max(1e-9).ln())
        .sum::<f64>()
        / pricing.len().max(1) as f64;
    let geomean = geomean.exp();
    println!("incremental pricing speedup (geomean): {geomean:.1}×");

    let output = BenchOutput {
        bench: "online_stream".to_string(),
        seed,
        repeats: REPEATS,
        service,
        pricing,
        incremental_speedup_geomean: geomean,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&out, json + "\n").expect("write bench output");
    println!("wrote {}", out.display());
}
