//! Accuracy and payment degradation under collusion rings, with and
//! without the reputation gate.
//!
//! The fleet is a redundancy-rich variant of the paper's Setting I
//! (`Setting::one(80).scaled_down(2)` with the per-task error bounds
//! loosened to `δ ∈ [0.7, 0.75]`): the gate can only act if banning a
//! fifth of the pool leaves the coverage problem feasible, so the
//! experiment needs coverage slack — with the stock Table I bounds the
//! engine's feasibility guard (`gate_skipped_rounds`) stands the gate
//! down almost every round and the comparison is vacuous.
//!
//! A label-flip ring is recruited from the workers that actually win a
//! benign probe campaign (colluders who never win cannot poison
//! anything), sized as a fraction of the pool. Each ring size then runs
//! two known-skill campaigns from identical seeds — one with the
//! reputation gate off, one with it on — and reports:
//!
//! * **overall / steady-state accuracy** — mean aggregation accuracy
//!   across all rounds and across the second half, where the gate has
//!   had time to ban the ring;
//! * **recovery** — how much of the steady-state accuracy lost to the
//!   ring the gate wins back: `(gated − ungated) / (benign − ungated)`;
//! * **spend, bans and stand-downs** — total payments, workers banned,
//!   and rounds where restricting to the admitted set would have been
//!   infeasible so the gate stood down;
//! * **ε-DP audit** — every campaign runs the per-round price-channel
//!   audit; any Theorem 2 violation aborts the bench.
//!
//! A second section repeats the 20%-ring rung with estimated skills
//! (`SkillSource::RefitEachRound`). It documents a real blind spot
//! rather than a headline: under-estimated `θ̂` makes the restricted
//! pool look infeasible, the feasibility guard stands the gate down most
//! rounds, and recovery collapses — the gate needs either trustworthy
//! skill estimates or generous coverage slack to act.
//!
//! ```text
//! usage: campaign [--seed N] [--out PATH] [--quick]
//! ```
//!
//! `--quick` shrinks the fleet and the round count to a smoke-test size
//! (used by CI; the checked-in JSON comes from a full run).

use std::path::PathBuf;

use serde::Serialize;

use mcs_auction::DpHsrcAuction;
use mcs_num::rng;
use mcs_sim::campaign::{
    run_campaign, AdversaryGroup, AdversaryPlan, AdversaryStrategy, CampaignOutcome, CampaignSpec,
    DpAuditConfig, ReputationConfig, SkillSource,
};
use mcs_sim::Setting;
use mcs_types::{Instance, WorkerId};
use mcs_verify::campaign::truthful_types;

/// Ring sizes as fractions of the worker pool.
const RING_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];
/// Privacy budget per auction round (Table I's `ε = 0.1`).
const EPSILON: f64 = 0.1;
/// Per-task probability of entering the ring's per-round flip set.
const FLIP_PROB: f64 = 1.0;
/// Loosened per-task error bounds giving the gate feasibility headroom.
const DELTA_RANGE: (f64, f64) = (0.7, 0.75);

#[derive(Debug, Serialize)]
struct RingRow {
    /// Ring size as a fraction of the pool.
    ring_frac: f64,
    /// Mean ring size in workers across the fleet.
    mean_ring_size: f64,
    /// Mean accuracy across all rounds, gate off.
    accuracy_ungated: f64,
    /// Mean accuracy across all rounds, gate on.
    accuracy_gated: f64,
    /// Mean accuracy over the second half of the rounds, gate off.
    steady_accuracy_ungated: f64,
    /// Mean accuracy over the second half of the rounds, gate on.
    steady_accuracy_gated: f64,
    /// Fraction of the steady-state accuracy lost to the ring that the
    /// gate recovers (`NaN` at ring 0, where nothing is lost).
    steady_recovery: f64,
    /// Mean total spend per campaign, gate off, in price units.
    spend_ungated: f64,
    /// Mean total spend per campaign, gate on.
    spend_gated: f64,
    /// Mean workers banned per gated campaign.
    mean_bans: f64,
    /// Mean rounds per gated campaign where the gate stood down because
    /// the admitted-set restriction would have been infeasible.
    mean_gate_skipped: f64,
    /// Largest `|ln(P_a(p) / P_b(p))|` any audit observed on the rung.
    max_audit_log_ratio: f64,
    /// Price-channel ε violations across every audited campaign (the
    /// bench aborts unless this is zero).
    audit_violations: usize,
}

/// The estimated-skill repeat of the 20%-ring rung: same fleet, same
/// ring, `SkillSource::RefitEachRound` instead of known skills.
#[derive(Debug, Serialize)]
struct RefitRow {
    ring_frac: f64,
    steady_accuracy_benign: f64,
    steady_accuracy_ungated: f64,
    steady_accuracy_gated: f64,
    steady_recovery: f64,
    mean_bans: f64,
    mean_gate_skipped: f64,
    audit_violations: usize,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    bench: String,
    seed: u64,
    fleet: u64,
    rounds: usize,
    epsilon: f64,
    flip_prob: f64,
    delta_range: (f64, f64),
    quick: bool,
    rows: Vec<RingRow>,
    refit: RefitRow,
}

/// The redundancy-rich Setting I variant every campaign runs on.
fn bench_setting() -> Setting {
    let mut setting = Setting::one(80).scaled_down(2);
    setting.delta_range = DELTA_RANGE;
    setting
}

/// Workers of one benign probe campaign ranked by rounds won, most
/// first — the recruitment pool for the collusion ring.
fn winners_by_rounds_won(instance: &Instance, rounds: usize, seed: u64) -> Vec<WorkerId> {
    let types = truthful_types(instance);
    let mechanism = DpHsrcAuction::new(EPSILON).expect("valid ε");
    let mut r = rng::derived(seed, 0x5052_4F42); // "PROB"
    let probe = run_campaign(
        &CampaignSpec::benign(rounds),
        &mechanism,
        instance,
        &types,
        &mut r,
    )
    .expect("benign probe campaign runs");
    let mut wins = vec![0usize; instance.num_workers()];
    for round in &probe.rounds {
        for &w in round.outcome.winners() {
            wins[w.index()] += 1;
        }
    }
    let mut order: Vec<WorkerId> = (0..instance.num_workers())
        .map(|i| WorkerId(i as u32))
        .collect();
    order.sort_by_key(|w| std::cmp::Reverse(wins[w.index()]));
    order
}

/// One audited campaign under the given ring.
fn run_ring_campaign(
    instance: &Instance,
    ring: &[WorkerId],
    gated: bool,
    skills: SkillSource,
    rounds: usize,
    seed: u64,
) -> CampaignOutcome {
    let types = truthful_types(instance);
    let mechanism = DpHsrcAuction::new(EPSILON).expect("valid ε");
    let adversaries = if ring.is_empty() {
        AdversaryPlan::none()
    } else {
        AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: ring.to_vec(),
                strategy: AdversaryStrategy::LabelFlipRing {
                    flip_prob: FLIP_PROB,
                },
            }],
            seed,
        }
    };
    let spec = CampaignSpec {
        rounds,
        skills,
        reputation: gated.then(ReputationConfig::default),
        adversaries,
        audit: Some(DpAuditConfig {
            seed: seed ^ 0xBE4C,
            slack: 1e-6,
        }),
    };
    let mut r = rng::derived(seed, 0x52_494E47); // "RING"
    run_campaign(&spec, &mechanism, instance, &types, &mut r).expect("ring campaign runs")
}

/// Mean accuracy over the second half of the rounds — past the default
/// reputation grace window, where the gate is live.
fn steady_accuracy(outcome: &CampaignOutcome) -> f64 {
    let per_round = &outcome.accuracy_per_round;
    let tail = &per_round[per_round.len() / 2..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// The ring recruited for `frac` on the `seed` instance.
fn recruit_ring(instance: &Instance, frac: f64, rounds: usize, seed: u64) -> Vec<WorkerId> {
    let ring_size = (frac * instance.num_workers() as f64).round() as usize;
    winners_by_rounds_won(instance, rounds, seed)
        .into_iter()
        .take(ring_size)
        .collect()
}

fn measure_ring(fleet: u64, base_seed: u64, frac: f64, rounds: usize) -> RingRow {
    let setting = bench_setting();
    let mut acc_un = 0.0f64;
    let mut acc_ga = 0.0f64;
    let mut steady_un = 0.0f64;
    let mut steady_ga = 0.0f64;
    let mut spend_un = 0.0f64;
    let mut spend_ga = 0.0f64;
    let mut bans = 0usize;
    let mut gate_skipped = 0usize;
    let mut ring_sizes = 0usize;
    let mut max_log_ratio = 0.0f64;
    let mut violations = 0usize;
    for i in 0..fleet {
        let seed = base_seed + i;
        let instance = setting.generate(seed).instance;
        let ring = recruit_ring(&instance, frac, rounds, seed);
        ring_sizes += ring.len();
        for gated in [false, true] {
            let outcome =
                run_ring_campaign(&instance, &ring, gated, SkillSource::Known, rounds, seed);
            let audit = outcome.audit.as_ref().expect("audit was configured");
            max_log_ratio = max_log_ratio.max(audit.worst_log_ratio);
            violations += audit.violations;
            let (acc, steady, spend) = (
                outcome.mean_accuracy,
                steady_accuracy(&outcome),
                outcome.total_spend.as_f64(),
            );
            if gated {
                acc_ga += acc;
                steady_ga += steady;
                spend_ga += spend;
                bans += outcome.banned_workers.len();
                gate_skipped += outcome.gate_skipped_rounds;
            } else {
                acc_un += acc;
                steady_un += steady;
                spend_un += spend;
            }
        }
    }
    let n = fleet as f64;
    RingRow {
        ring_frac: frac,
        mean_ring_size: ring_sizes as f64 / n,
        accuracy_ungated: acc_un / n,
        accuracy_gated: acc_ga / n,
        steady_accuracy_ungated: steady_un / n,
        steady_accuracy_gated: steady_ga / n,
        steady_recovery: f64::NAN, // filled in once the benign baseline is known
        spend_ungated: spend_un / n,
        spend_gated: spend_ga / n,
        mean_bans: bans as f64 / n,
        mean_gate_skipped: gate_skipped as f64 / n,
        max_audit_log_ratio: max_log_ratio,
        audit_violations: violations,
    }
}

/// The estimated-skill repeat: the same fleet and 20% rings rerun with
/// `SkillSource::RefitEachRound`, benign / ungated / gated.
fn measure_refit(fleet: u64, base_seed: u64, frac: f64, rounds: usize) -> RefitRow {
    let setting = bench_setting();
    let mut steady_be = 0.0f64;
    let mut steady_un = 0.0f64;
    let mut steady_ga = 0.0f64;
    let mut bans = 0usize;
    let mut gate_skipped = 0usize;
    let mut violations = 0usize;
    for i in 0..fleet {
        let seed = base_seed + i;
        let instance = setting.generate(seed).instance;
        let ring = recruit_ring(&instance, frac, rounds, seed);
        let benign = run_ring_campaign(
            &instance,
            &[],
            false,
            SkillSource::RefitEachRound,
            rounds,
            seed,
        );
        violations += benign.audit.as_ref().expect("audit configured").violations;
        steady_be += steady_accuracy(&benign);
        for gated in [false, true] {
            let outcome = run_ring_campaign(
                &instance,
                &ring,
                gated,
                SkillSource::RefitEachRound,
                rounds,
                seed,
            );
            violations += outcome.audit.as_ref().expect("audit configured").violations;
            if gated {
                steady_ga += steady_accuracy(&outcome);
                bans += outcome.banned_workers.len();
                gate_skipped += outcome.gate_skipped_rounds;
            } else {
                steady_un += steady_accuracy(&outcome);
            }
        }
    }
    let n = fleet as f64;
    let (be, un, ga) = (steady_be / n, steady_un / n, steady_ga / n);
    RefitRow {
        ring_frac: frac,
        steady_accuracy_benign: be,
        steady_accuracy_ungated: un,
        steady_accuracy_gated: ga,
        steady_recovery: (ga - un) / (be - un),
        mean_bans: bans as f64 / n,
        mean_gate_skipped: gate_skipped as f64 / n,
        audit_violations: violations,
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out = PathBuf::from("BENCH_campaign.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: campaign [--seed N] [--out PATH] [--quick]");
                std::process::exit(2);
            }
        }
    }
    let (fleet, rounds) = if quick { (3, 8) } else { (16, 16) };

    println!(" ring  size  acc −gate  acc +gate  steady −gate  steady +gate  recovery  bans  skipped  worst-lr");
    let mut rows: Vec<RingRow> = Vec::new();
    for frac in RING_FRACTIONS {
        let mut row = measure_ring(fleet, seed, frac, rounds);
        // The benign rung's ungated steady-state accuracy is the ceiling
        // the recovery metric is measured against.
        let benign = rows
            .first()
            .map_or(row.steady_accuracy_ungated, |r| r.steady_accuracy_ungated);
        let lost = benign - row.steady_accuracy_ungated;
        row.steady_recovery = if lost > 1e-9 {
            (row.steady_accuracy_gated - row.steady_accuracy_ungated) / lost
        } else {
            f64::NAN
        };
        println!(
            "{:5.2}  {:4.1}  {:9.3}  {:9.3}  {:12.3}  {:12.3}  {:8.3}  {:4.1}  {:7.1}  {:8.4}",
            row.ring_frac,
            row.mean_ring_size,
            row.accuracy_ungated,
            row.accuracy_gated,
            row.steady_accuracy_ungated,
            row.steady_accuracy_gated,
            row.steady_recovery,
            row.mean_bans,
            row.mean_gate_skipped,
            row.max_audit_log_ratio
        );
        assert_eq!(
            row.audit_violations, 0,
            "ε-DP price-channel audit found violations at ring {}",
            row.ring_frac
        );
        rows.push(row);
    }
    if !quick {
        let at_20 = rows
            .iter()
            .find(|r| (r.ring_frac - 0.2).abs() < 1e-9)
            .expect("20% rung is in RING_FRACTIONS");
        if at_20.steady_recovery < 0.5 {
            eprintln!(
                "warning: recovery at the 20% ring is {:.3}, below the 0.5 the default seed achieves",
                at_20.steady_recovery
            );
        }
    }

    let refit = measure_refit(fleet, seed, 0.2, rounds);
    println!(
        "refit 0.20: benign {:.3}  −gate {:.3}  +gate {:.3}  recovery {:.3}  bans {:.1}  stood down {:.1}/{} rounds",
        refit.steady_accuracy_benign,
        refit.steady_accuracy_ungated,
        refit.steady_accuracy_gated,
        refit.steady_recovery,
        refit.mean_bans,
        refit.mean_gate_skipped,
        rounds
    );
    assert_eq!(
        refit.audit_violations, 0,
        "ε-DP price-channel audit found violations on the estimated-skill rung"
    );

    let output = BenchOutput {
        bench: "campaign".into(),
        seed,
        fleet,
        rounds,
        epsilon: EPSILON,
        flip_prob: FLIP_PROB,
        delta_range: DELTA_RANGE,
        quick,
        rows,
        refit,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&out, json + "\n").expect("write bench output");
    println!("wrote {}", out.display());
}
