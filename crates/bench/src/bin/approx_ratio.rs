//! Theorem 6 check: expected payment vs the analytic approximation bound.
//!
//! On Setting-I-sized instances (where the exact optimum is computable),
//! compares `E[R]` of DP-hSRC with `R_OPT` and the guarantee
//! `2βH_m·R_OPT + (6Nc_max/ε)·ln(e + ε|P|βH_m·R_OPT/c_min)`.

use mcs_auction::OptimalMechanism;
use mcs_bench::{emit, Cli};
use mcs_sim::experiments::approx_ratio_experiment;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let setting = if cli.full {
        Setting::one(80)
    } else {
        Setting::one(80).scaled_down(4)
    };
    let optimal = OptimalMechanism::with_budget(cli.budget());
    let mut rows = Vec::new();
    for trial in 0..5u64 {
        let report = approx_ratio_experiment(&setting, cli.seed ^ trial, &optimal)
            .unwrap_or_else(|e| panic!("approx-ratio experiment failed: {e}"));
        rows.push(report);
    }
    emit(
        "Theorem 6 check: E[R] vs R_OPT and the analytic bound",
        &rows,
        &cli,
    );
    assert!(
        rows.iter().all(|r| r.within_bound()),
        "Theorem 6 bound violated"
    );
    println!("all bounds hold.");
}
