//! Figure 3: platform's total payment vs number of workers (Setting III).
//!
//! Paper: N ∈ [800, 1400], K = 200 — too large for the exact optimal, so
//! only DP-hSRC vs Baseline are plotted.

use mcs_bench::{axis, emit, Cli};
use mcs_sim::experiments::payment_sweep;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let xs = if cli.quick {
        axis(80, 140, 20)
    } else {
        axis(800, 1400, 50)
    };
    let make = |x: usize| {
        if cli.quick {
            Setting::three(x * 10).scaled_down(10)
        } else {
            Setting::three(x)
        }
    };
    let rows = payment_sweep(&xs, make, cli.seed, None)
        .unwrap_or_else(|e| panic!("figure 3 sweep failed: {e}"));
    emit(
        "Figure 3: total payment vs number of workers (Setting III, K = 200, eps = 0.1)",
        &rows,
        &cli,
    );
}
