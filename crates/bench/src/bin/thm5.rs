//! Theorem 5 check: DP-hSRC runtime scales as `O(N²K)` and is independent
//! of `|P|`.
//!
//! Times full DP-hSRC runs while sweeping each of `N`, `K`, and the price
//! grid density separately (the latter must leave the runtime flat thanks
//! to interval compression).

use std::time::Instant;

use mcs_auction::{DpHsrcAuction, Mechanism, ScheduledMechanism};
use mcs_bench::{emit, Cli};
use mcs_num::rng;
use mcs_sim::output::TableRow;
use mcs_sim::Setting;
use mcs_types::{Instance, PriceGrid};

struct ScaleRow {
    axis: &'static str,
    value: String,
    seconds: f64,
    feasible_prices: usize,
}

impl TableRow for ScaleRow {
    fn headers() -> Vec<&'static str> {
        vec!["axis", "value", "seconds", "|P_feasible|"]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.axis.into(),
            self.value.clone(),
            format!("{:.4}", self.seconds),
            self.feasible_prices.to_string(),
        ]
    }
}

fn time_run(instance: &Instance, seed: u64, reps: usize) -> (f64, usize) {
    let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
    let mut r = rng::seeded(seed);
    // Warm-up + measured repetitions.
    let pmf = auction.pmf(instance).expect("feasible");
    let support = pmf.schedule().len();
    let started = Instant::now();
    for _ in 0..reps {
        let _ = auction.run(instance, &mut r).expect("feasible");
    }
    (started.elapsed().as_secs_f64() / reps as f64, support)
}

/// Rebuilds the instance with a different candidate grid. Grid steps are
/// limited to the 0.1 fixed-point atom, so |P| is scaled by widening the
/// range and coarsening/refining the step: (35..60 @ 2.0) = 13 prices,
/// (35..60 @ 0.1) = 251, (35..335 @ 0.1) = 3001.
fn with_grid(instance: &Instance, min: f64, max: f64, step: f64) -> Instance {
    Instance::builder(instance.num_tasks())
        .bid_profile(instance.bids().clone())
        .skills(instance.skills().clone())
        .error_bounds(instance.deltas().to_vec())
        .price_grid(PriceGrid::from_f64(min, max, step).expect("valid grid"))
        .cost_range(instance.cmin(), instance.cmax())
        .build()
        .expect("rebuilt instance")
}

fn main() {
    let cli = Cli::parse();
    let reps = if cli.quick { 3 } else { 10 };
    let mut rows = Vec::new();

    for n in [80usize, 100, 120, 140] {
        let g = Setting::one(n).generate(cli.seed);
        let (secs, support) = time_run(&g.instance, cli.seed, reps);
        rows.push(ScaleRow {
            axis: "N",
            value: n.to_string(),
            seconds: secs,
            feasible_prices: support,
        });
    }
    for k in [20usize, 30, 40, 50] {
        let g = Setting::two(k).generate(cli.seed);
        let (secs, support) = time_run(&g.instance, cli.seed, reps);
        rows.push(ScaleRow {
            axis: "K",
            value: k.to_string(),
            seconds: secs,
            feasible_prices: support,
        });
    }
    // Grid density: runtime must stay flat as |P| grows ~230x.
    let base = Setting::one(100).generate(cli.seed);
    for (min, max, step) in [(35.0, 60.0, 2.0), (35.0, 60.0, 0.1), (35.0, 335.0, 0.1)] {
        let inst = with_grid(&base.instance, min, max, step);
        let (secs, support) = time_run(&inst, cli.seed, reps);
        rows.push(ScaleRow {
            axis: "|P| (grid)",
            value: format!("[{min},{max}]@{step}"),
            seconds: secs,
            feasible_prices: support,
        });
    }

    emit(
        "Theorem 5 check: DP-hSRC runtime vs N, K, and price-grid density",
        &rows,
        &cli,
    );
}
