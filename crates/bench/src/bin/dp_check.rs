//! Theorem 2 check: empirical differential privacy of DP-hSRC.
//!
//! For a batch of random and worst-case (price pushed to c_min / c_max)
//! neighbouring bid profiles, computes the exact output PMFs and verifies
//! `max_x |ln(P(x)/P′(x))| ≤ ε`. Support-shifting neighbours (where the
//! bid change moves the feasible price floor) are counted separately —
//! the paper's analysis assumes a fixed feasible price set.

use mcs_auction::{privacy, DpHsrcAuction, ScheduledMechanism};
use mcs_bench::{emit, Cli};
use mcs_num::rng;
use mcs_sim::neighbour::{price_push_neighbour, random_worker, resample_neighbour, PricePush};
use mcs_sim::output::TableRow;
use mcs_sim::Setting;

struct CheckRow {
    epsilon: f64,
    neighbours: usize,
    max_log_ratio: f64,
    max_kl: f64,
    support_shifts: usize,
    holds: bool,
}

impl TableRow for CheckRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "epsilon",
            "neighbours",
            "max_log_ratio",
            "max_kl",
            "support_shifts",
            "bound_holds",
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{}", self.epsilon),
            self.neighbours.to_string(),
            format!("{:.6}", self.max_log_ratio),
            format!("{:.6}", self.max_kl),
            self.support_shifts.to_string(),
            self.holds.to_string(),
        ]
    }
}

fn main() {
    let cli = Cli::parse();
    let setting = if cli.quick || !cli.full {
        Setting::one(80).scaled_down(2)
    } else {
        Setting::one(100)
    };
    let generated = setting.generate(cli.seed);
    let instance = &generated.instance;
    let mut r = rng::derived(cli.seed, 0xC0FFEE);

    let mut rows = Vec::new();
    for eps in [0.1f64, 0.5, 1.0, 5.0] {
        let auction = DpHsrcAuction::new(eps).expect("valid epsilon");
        let base = auction.pmf(instance).expect("base instance is feasible");
        let mut max_ratio = 0.0f64;
        let mut max_kl = 0.0f64;
        let mut shifts = 0usize;
        let mut tried = 0usize;
        for k in 0..cli.neighbours.max(1) {
            let w = random_worker(instance, &mut r);
            // Alternate random resampling with worst-case price pushes.
            let nbs = match k % 3 {
                0 => vec![resample_neighbour(instance, &setting, w, &mut r).unwrap()],
                1 => vec![price_push_neighbour(instance, w, PricePush::ToMin).unwrap()],
                _ => vec![price_push_neighbour(instance, w, PricePush::ToMax).unwrap()],
            };
            for nb in nbs {
                tried += 1;
                let Ok(nb_pmf) = auction.pmf(&nb) else {
                    shifts += 1;
                    continue;
                };
                match (
                    privacy::dp_log_ratio(&base, &nb_pmf),
                    privacy::kl_leakage(&base, &nb_pmf),
                ) {
                    (Some(ratio), Some(kl)) => {
                        max_ratio = max_ratio.max(ratio);
                        max_kl = max_kl.max(kl);
                    }
                    _ => shifts += 1,
                }
            }
        }
        rows.push(CheckRow {
            epsilon: eps,
            neighbours: tried,
            max_log_ratio: max_ratio,
            max_kl,
            support_shifts: shifts,
            holds: max_ratio <= eps + 1e-9,
        });
    }
    emit(
        "Theorem 2 check: empirical differential privacy",
        &rows,
        &cli,
    );
    assert!(
        rows.iter().all(|r| r.holds),
        "DP bound violated — this contradicts Theorem 2"
    );
    println!("all bounds hold.");
}
