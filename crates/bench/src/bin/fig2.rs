//! Figure 2: platform's total payment vs number of tasks (Setting II).
//!
//! Paper: N = 120, K ∈ [20, 50]; Optimal ≤ DP-hSRC ≪ Baseline.

use mcs_auction::OptimalMechanism;
use mcs_bench::{axis, emit, Cli};
use mcs_sim::experiments::payment_sweep;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let xs = if cli.quick {
        axis(5, 12, 1)
    } else {
        axis(20, 50, 2)
    };
    let make = |x: usize| {
        if cli.quick {
            Setting::two(x * 4).scaled_down(4)
        } else {
            Setting::two(x)
        }
    };
    let optimal = (!cli.no_optimal).then(|| OptimalMechanism::with_budget(cli.budget()));
    let rows = payment_sweep(&xs, make, cli.seed, optimal.as_ref())
        .unwrap_or_else(|e| panic!("figure 2 sweep failed: {e}"));
    emit(
        "Figure 2: total payment vs number of tasks (Setting II, N = 120, eps = 0.1)",
        &rows,
        &cli,
    );
}
