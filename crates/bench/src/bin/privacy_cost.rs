//! Extension: the price of privacy.
//!
//! Compares DP-hSRC's expected payment over an ε grid against a
//! non-private truthful critical-payment auction and (on small instances)
//! the exact optimum. Large ε approaches the non-private greedy payment;
//! small ε pays a measurable privacy premium.

use mcs_auction::OptimalMechanism;
use mcs_bench::{emit, Cli};
use mcs_sim::experiments::privacy_cost_experiment;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let setting = if cli.full {
        Setting::one(100)
    } else {
        Setting::one(80).scaled_down(4)
    };
    let epsilons = [0.05, 0.1, 0.25, 0.5, 1.0, 5.0, 25.0, 100.0];
    let optimal =
        (!cli.no_optimal && !cli.full).then(|| OptimalMechanism::with_budget(cli.budget()));
    let trials = if cli.full { 3 } else { 5 };
    let rows = privacy_cost_experiment(&setting, &epsilons, trials, cli.seed, optimal.as_ref())
        .unwrap_or_else(|e| panic!("privacy-cost experiment failed: {e}"));
    emit(
        "Price of privacy: DP-hSRC vs non-private critical-payment auction",
        &rows,
        &cli,
    );
}
