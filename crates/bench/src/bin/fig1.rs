//! Figure 1: platform's total payment vs number of workers (Setting I).
//!
//! Paper: N ∈ [80, 140], K = 30; Optimal ≤ DP-hSRC ≪ Baseline, DP-hSRC
//! close to Optimal. Run with `--quick` for a scaled-down smoke test,
//! `--no-optimal` to skip the exact baseline, `--budget-secs` to bound
//! each exact ILP solve.

use mcs_auction::OptimalMechanism;
use mcs_bench::{axis, emit, Cli};
use mcs_sim::experiments::payment_sweep;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let xs = if cli.quick {
        axis(20, 35, 5)
    } else {
        axis(80, 140, 4)
    };
    let make = |x: usize| {
        if cli.quick {
            // Scale all Table I proportions down 4x; the axis value is the
            // *scaled* worker count.
            Setting::one(x * 4).scaled_down(4)
        } else {
            Setting::one(x)
        }
    };
    let optimal = (!cli.no_optimal).then(|| OptimalMechanism::with_budget(cli.budget()));
    let rows = payment_sweep(&xs, make, cli.seed, optimal.as_ref())
        .unwrap_or_else(|e| panic!("figure 1 sweep failed: {e}"));
    emit(
        "Figure 1: total payment vs number of workers (Setting I, K = 30, eps = 0.1)",
        &rows,
        &cli,
    );
}
