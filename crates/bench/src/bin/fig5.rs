//! Figure 5: trade-off between total payment and privacy leakage over ε.
//!
//! Paper: ε swept over {0.25, …, 1000}; the platform's average total
//! payment falls with ε while the KL privacy leakage (Definition 8)
//! rises. The default instance is Setting-IV scale (N = 1000, K = 200);
//! `--quick` shrinks it 10×. `--neighbours` controls how many
//! neighbouring profiles the leakage is averaged over.

use mcs_bench::{emit, Cli};
use mcs_sim::experiments::{tradeoff_sweep, FIGURE5_EPSILONS};
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let setting = if cli.quick {
        Setting::four(200).scaled_down(10)
    } else {
        Setting::four(200)
    };
    let rows = tradeoff_sweep(&setting, FIGURE5_EPSILONS, cli.neighbours, cli.seed)
        .unwrap_or_else(|e| panic!("figure 5 sweep failed: {e}"));
    emit(
        "Figure 5: payment vs privacy leakage over epsilon (N = 1000, K = 200)",
        &rows,
        &cli,
    );
}
