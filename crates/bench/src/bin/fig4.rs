//! Figure 4: platform's total payment vs number of tasks (Setting IV).
//!
//! Paper: N = 1000, K ∈ [200, 500] — only DP-hSRC vs Baseline.

use mcs_bench::{axis, emit, Cli};
use mcs_sim::experiments::payment_sweep;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let xs = if cli.quick {
        axis(20, 50, 10)
    } else {
        axis(200, 500, 20)
    };
    let make = |x: usize| {
        if cli.quick {
            Setting::four(x * 10).scaled_down(10)
        } else {
            Setting::four(x)
        }
    };
    let rows = payment_sweep(&xs, make, cli.seed, None)
        .unwrap_or_else(|e| panic!("figure 4 sweep failed: {e}"));
    emit(
        "Figure 4: total payment vs number of tasks (Setting IV, N = 1000, eps = 0.1)",
        &rows,
        &cli,
    );
}
