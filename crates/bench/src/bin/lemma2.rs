//! Lemma 2 check: greedy winner-set cardinality vs the exact optimum at
//! every candidate price, against the `2βH_m` guarantee.

use mcs_auction::OptimalMechanism;
use mcs_bench::{emit, Cli};
use mcs_sim::experiments::lemma2_experiment;
use mcs_sim::Setting;

fn main() {
    let cli = Cli::parse();
    let setting = if cli.full {
        Setting::one(80)
    } else {
        Setting::one(80).scaled_down(4)
    };
    let optimal = OptimalMechanism::with_budget(cli.budget());
    let report = lemma2_experiment(&setting, cli.seed, &optimal)
        .unwrap_or_else(|e| panic!("lemma 2 experiment failed: {e}"));
    emit(
        "Lemma 2 check: |S(p)| vs |S_OPT(p)| per candidate price",
        &report.rows,
        &cli,
    );
    println!(
        "max ratio {:.3} vs analytic bound 2*beta*H_m = {:.1}",
        report.max_ratio, report.bound
    );
    assert!(report.within_bound(), "Lemma 2 bound violated");
    println!("bound holds.");
}
