//! Extension: the honest-but-curious attacker's view.
//!
//! For each ε, runs the optimal likelihood-ratio attack over increasing
//! numbers of observed auction rounds and reports the attacker's posterior
//! (from a 50/50 prior) about a target worker's bid, together with the
//! `ε·R` composition cap. Complements Figure 5: the same leakage numbers,
//! expressed as attacker success.

use mcs_auction::{DpHsrcAuction, ScheduledMechanism};
use mcs_bench::{emit, Cli};
use mcs_num::rng;
use mcs_sim::adversary::{expected_evidence_per_round, likelihood_ratio_attack};
use mcs_sim::neighbour::{price_push_neighbour, PricePush};
use mcs_sim::output::TableRow;
use mcs_sim::Setting;
use mcs_types::WorkerId;

struct AttackRow {
    epsilon: f64,
    rounds: usize,
    kl_per_round: f64,
    llr: f64,
    cap: f64,
    posterior: f64,
}

impl TableRow for AttackRow {
    fn headers() -> Vec<&'static str> {
        vec!["epsilon", "rounds", "kl/round", "llr", "cap", "posterior"]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{}", self.epsilon),
            self.rounds.to_string(),
            format!("{:.6}", self.kl_per_round),
            format!("{:+.4}", self.llr),
            format!("{:.1}", self.cap),
            format!("{:.3}", self.posterior),
        ]
    }
}

fn main() {
    let cli = Cli::parse();
    let setting = Setting::one(80).scaled_down(if cli.full { 1 } else { 2 });
    let generated = setting.generate(cli.seed);
    let instance = &generated.instance;

    let mut rows = Vec::new();
    for eps in [0.1f64, 1.0, 10.0] {
        let auction = DpHsrcAuction::new(eps).expect("valid epsilon");
        let Ok(pmf_a) = auction.pmf(instance) else {
            continue;
        };
        // Find an informative, support-preserving target.
        let mut target = None;
        for i in 0..instance.num_workers() {
            let w = WorkerId(i as u32);
            let Ok(alt) = price_push_neighbour(instance, w, PricePush::ToMax) else {
                continue;
            };
            let Ok(pmf_b) = auction.pmf(&alt) else {
                continue;
            };
            if pmf_a.schedule().prices() == pmf_b.schedule().prices()
                && pmf_a.probs() != pmf_b.probs()
            {
                target = Some((w, pmf_b));
                break;
            }
        }
        let Some((_, pmf_b)) = target else { continue };
        let kl = expected_evidence_per_round(&pmf_a, &pmf_b).unwrap_or(f64::NAN);
        for rounds in [10usize, 100, 1000] {
            let mut r = rng::derived(cli.seed, rounds as u64);
            let out = likelihood_ratio_attack(&pmf_a, &pmf_b, eps, rounds, &mut r);
            assert!(out.within_bound(), "composition bound violated");
            rows.push(AttackRow {
                epsilon: eps,
                rounds,
                kl_per_round: kl,
                llr: out.log_likelihood_ratio,
                cap: out.bound,
                posterior: out.posterior_a(0.5),
            });
        }
    }
    emit(
        "Adversary inference: posterior about a target bid vs rounds observed",
        &rows,
        &cli,
    );
}
