//! Numeric substrate for the `dp-mcs` workspace.
//!
//! Everything here is deliberately dependency-light and deterministic:
//!
//! * [`logsumexp`] / [`softmax_from_logits`] / [`sample_logits`] — the
//!   numerically stable kernel of the exponential mechanism (Eq. 11 of the
//!   paper). Probabilities proportional to `exp(−ε·payment/(2Nc_max))` can
//!   underflow to zero for large ε·payment; all mechanism code works in the
//!   log domain.
//! * [`kl_divergence`] — the privacy-leakage measure of Definition 8.
//! * [`OnlineStats`] — Welford-style running mean/variance used for the
//!   mean ± std error bars of Figures 1–4.
//! * [`Histogram`] — fixed-bin counts for diagnosing sampled price
//!   distributions against exact PMFs.
//! * [`wilson_interval`] — binomial confidence intervals for the empirical
//!   aggregation-error checks (Lemma 1's `Pr[l̂ ≠ l] ≤ δ`).
//! * [`rng`] — seeded, portable ChaCha8 RNG streams so every experiment is
//!   exactly reproducible from a `--seed`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binomial;
mod histogram;
mod kl;
mod logexp;
pub mod rng;
mod stats;

pub use binomial::{rate_consistent_with_bound, wilson_interval};
pub use histogram::Histogram;
pub use kl::{kl_divergence, max_abs_log_ratio};
pub use logexp::{logsumexp, sample_logits, softmax_from_logits};
pub use stats::{OnlineStats, Summary};
