//! Stable log-domain primitives for the exponential mechanism.

use rand::Rng;

/// Computes `ln(Σ exp(x_i))` without overflow or underflow.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the sum of no terms is
/// zero). `−∞` entries are handled as zero terms.
///
/// # Examples
///
/// ```
/// use mcs_num::logsumexp;
///
/// let lse = logsumexp(&[0.0, 0.0]);
/// assert!((lse - (2.0f64).ln()).abs() < 1e-12);
/// // Huge magnitudes that would overflow exp() directly:
/// let lse = logsumexp(&[-1.0e4, -1.0e4 + 1.0]);
/// assert!((lse - (-1.0e4 + (1.0 + 1.0f64.exp()).ln())).abs() < 1e-9);
/// ```
pub fn logsumexp(logits: &[f64]) -> f64 {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = logits.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Normalizes logits into a probability vector: `p_i = exp(x_i) / Σ exp(x_j)`.
///
/// The result sums to 1 up to rounding, even when logits span hundreds of
/// orders of magnitude.
///
/// # Panics
///
/// Panics if `logits` is empty or all entries are `−∞` (no valid
/// distribution exists).
///
/// # Examples
///
/// ```
/// use mcs_num::softmax_from_logits;
///
/// let p = softmax_from_logits(&[0.0, (2.0f64).ln()]);
/// assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
/// assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn softmax_from_logits(logits: &[f64]) -> Vec<f64> {
    let lse = logsumexp(logits);
    assert!(
        lse > f64::NEG_INFINITY,
        "softmax of empty or all -inf logits is undefined"
    );
    logits.iter().map(|&x| (x - lse).exp()).collect()
}

/// Samples an index from the distribution `p_i ∝ exp(x_i)` by inverse
/// transform over the stable softmax.
///
/// # Panics
///
/// Panics if `logits` is empty or all `−∞`.
///
/// # Examples
///
/// ```
/// use mcs_num::{rng, sample_logits};
///
/// let mut r = rng::seeded(7);
/// let idx = sample_logits(&mut r, &[0.0, 1000.0]);
/// assert_eq!(idx, 1); // overwhelmingly more likely
/// ```
pub fn sample_logits<R: Rng + ?Sized>(rng: &mut R, logits: &[f64]) -> usize {
    let probs = softmax_from_logits(logits);
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    // Rounding may leave acc slightly below 1; fall back to the last
    // index with positive probability.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("softmax produced at least one positive probability")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use proptest::prelude::*;

    #[test]
    fn logsumexp_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn logsumexp_single() {
        assert!((logsumexp(&[3.5]) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_ignores_neg_inf_terms() {
        let v = logsumexp(&[f64::NEG_INFINITY, 0.0]);
        assert!((v - 0.0).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_extreme_magnitudes() {
        // exp(-50000) underflows; the stable version must not return -inf.
        let v = logsumexp(&[-50_000.0, -50_001.0]);
        assert!(v.is_finite());
        assert!((v - (-50_000.0 + (1.0 + (-1.0f64).exp()).ln())).abs() < 1e-9);
    }

    #[test]
    fn softmax_sums_to_one_with_extreme_spread() {
        let p = softmax_from_logits(&[-1.0e6, 0.0, -1.0e6]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn softmax_empty_panics() {
        let _ = softmax_from_logits(&[]);
    }

    #[test]
    fn sample_logits_is_unbiased_empirically() {
        let mut r = rng::seeded(42);
        let logits = [0.0, (3.0f64).ln()]; // p = [0.25, 0.75]
        let n = 40_000;
        let ones = (0..n)
            .filter(|_| sample_logits(&mut r, &logits) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn sample_logits_never_picks_zero_probability() {
        let mut r = rng::seeded(1);
        let logits = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        for _ in 0..100 {
            assert_eq!(sample_logits(&mut r, &logits), 1);
        }
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(
            logits in proptest::collection::vec(-700.0f64..700.0, 1..64)
        ) {
            let p = softmax_from_logits(&logits);
            prop_assert_eq!(p.len(), logits.len());
            prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_logsumexp_shift_invariance(
            logits in proptest::collection::vec(-100.0f64..100.0, 1..32),
            shift in -50.0f64..50.0,
        ) {
            let shifted: Vec<f64> = logits.iter().map(|&x| x + shift).collect();
            let a = logsumexp(&logits) + shift;
            let b = logsumexp(&shifted);
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn prop_sampled_index_in_range(
            logits in proptest::collection::vec(-50.0f64..50.0, 1..16),
            seed in 0u64..1000,
        ) {
            let mut r = rng::seeded(seed);
            let idx = sample_logits(&mut r, &logits);
            prop_assert!(idx < logits.len());
        }
    }
}
