//! Deterministic, portable random-number streams.
//!
//! Every experiment in the workspace derives its randomness from an explicit
//! `u64` seed so that each figure and table is exactly reproducible. We use
//! ChaCha8 rather than `StdRng` because the `rand` documentation reserves
//! the right to change `StdRng`'s algorithm between releases, which would
//! silently change every recorded result.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded ChaCha8 generator.
///
/// # Examples
///
/// ```
/// use mcs_num::rng;
/// use rand::Rng;
///
/// let mut a = rng::seeded(1);
/// let mut b = rng::seeded(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A generator for an independent named sub-stream of a master seed.
///
/// Experiments that need several independent sources (instance generation,
/// mechanism sampling, adversary choices, …) derive one stream per purpose
/// so that, e.g., increasing the number of price samples does not perturb
/// the generated instances.
///
/// The derivation mixes `seed` and `stream` through SplitMix64 steps, so
/// nearby `(seed, stream)` pairs yield unrelated states.
///
/// # Examples
///
/// ```
/// use mcs_num::rng;
/// use rand::Rng;
///
/// let mut gen_stream = rng::derived(42, 0);
/// let mut mech_stream = rng::derived(42, 1);
/// assert_ne!(gen_stream.gen::<u64>(), mech_stream.gen::<u64>());
/// ```
pub fn derived(seed: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(mix(seed, stream))
}

/// SplitMix64-style mixing of a seed and stream id into one 64-bit state.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = seeded(7)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = seeded(7)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(seeded(1).gen::<u64>(), seeded(2).gen::<u64>());
    }

    #[test]
    fn derived_streams_are_independent_of_each_other() {
        let mut s0 = derived(9, 0);
        let mut s1 = derived(9, 1);
        let a: Vec<u64> = (0..4).map(|_| s0.gen()).collect();
        let b: Vec<u64> = (0..4).map(|_| s1.gen()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_is_deterministic() {
        assert_eq!(derived(3, 5).gen::<u64>(), derived(3, 5).gen::<u64>());
    }

    #[test]
    fn mix_avalanche() {
        // Flipping one input bit should change roughly half the output bits.
        let base = mix(0x1234_5678, 0);
        let flipped = mix(0x1234_5679, 0);
        let differing = (base ^ flipped).count_ones();
        assert!(differing > 12, "only {differing} bits changed");
    }
}
