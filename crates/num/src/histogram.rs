//! Fixed-bin histograms over a known finite support.

/// A histogram over `n` known categories (e.g. the indices of a price
/// grid).
///
/// Used to compare the *sampled* exponential-mechanism output against the
/// *exact* PMF: accumulate sampled indices, then read the empirical
/// distribution with [`Histogram::to_distribution`].
///
/// # Examples
///
/// ```
/// use mcs_num::Histogram;
///
/// let mut h = Histogram::new(3);
/// h.record(0);
/// h.record(2);
/// h.record(2);
/// assert_eq!(h.count(2), 2);
/// assert_eq!(h.total(), 3);
/// let d = h.to_distribution();
/// assert!((d[2] - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` empty categories.
    pub fn new(bins: usize) -> Self {
        Histogram {
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of categories.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Records one observation of category `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn record(&mut self, bin: usize) {
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Count in one category.
    #[inline]
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// Total observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical probability of each category.
    ///
    /// Returns all zeros when no observations have been recorded.
    pub fn to_distribution(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The smallest bin index at which the cumulative share of
    /// observations reaches `q` (a quantile over the *bin index* axis).
    ///
    /// `q` is clamped to `[0, 1]`; `q = 0` returns the first non-empty
    /// bin. Returns `None` when the histogram is empty or `q` is NaN (a
    /// NaN would otherwise slip through the clamp and silently act like
    /// `q = 0`). Callers that bin a continuous quantity (e.g. latency
    /// buckets) map the index back to the bucket's upper bound themselves.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcs_num::Histogram;
    ///
    /// let mut h = Histogram::new(4);
    /// for bin in [0, 0, 1, 3] {
    ///     h.record(bin);
    /// }
    /// assert_eq!(h.quantile(0.5), Some(0));
    /// assert_eq!(h.quantile(0.75), Some(1));
    /// assert_eq!(h.quantile(1.0), Some(3));
    /// assert_eq!(Histogram::new(2).quantile(0.5), None);
    /// ```
    pub fn quantile(&self, q: f64) -> Option<usize> {
        // NaN propagates through `clamp` and the `.max(1.0)` below would
        // then mask it into `target = 1` (i.e. behave like q = 0); reject
        // it instead of answering a question that was never asked.
        if self.total == 0 || q.is_nan() {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(i);
            }
        }
        // Unreachable while `total == Σ counts`, but stay total-order safe.
        Some(self.counts.len().saturating_sub(1))
    }

    /// Merges another histogram with the same bin count.
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bin counts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Largest absolute difference between the empirical distribution and a
    /// reference distribution (an L∞ goodness-of-fit statistic).
    ///
    /// # Panics
    ///
    /// Panics if `reference.len()` differs from the bin count.
    pub fn max_deviation_from(&self, reference: &[f64]) -> f64 {
        assert_eq!(
            reference.len(),
            self.counts.len(),
            "reference length differs from bin count"
        );
        self.to_distribution()
            .iter()
            .zip(reference)
            .map(|(e, r)| (e - r).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_distribution() {
        let mut h = Histogram::new(4);
        for b in [0, 1, 1, 3] {
            h.record(b);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        let d = h.to_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d[1], 0.5);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let h = Histogram::new(3);
        assert_eq!(h.to_distribution(), vec![0.0; 3]);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_bin_panics() {
        let mut h = Histogram::new(2);
        h.record(2);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2);
        a.record(0);
        let mut b = Histogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_mismatched_panics() {
        let mut a = Histogram::new(2);
        a.merge(&Histogram::new(3));
    }

    #[test]
    fn quantile_skips_empty_leading_bins() {
        let mut h = Histogram::new(5);
        h.record(2);
        h.record(4);
        assert_eq!(h.quantile(0.0), Some(2));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.51), Some(4));
        assert_eq!(h.quantile(2.0), Some(4)); // clamped
    }

    #[test]
    fn deviation_from_reference() {
        let mut h = Histogram::new(2);
        h.record(0);
        h.record(0);
        h.record(1);
        h.record(1);
        assert_eq!(h.max_deviation_from(&[0.5, 0.5]), 0.0);
        assert!((h.max_deviation_from(&[0.25, 0.75]) - 0.25).abs() < 1e-12);
    }
}
