//! Binomial confidence intervals for Monte-Carlo rate estimates.

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` such that the true success probability lies in
/// the interval with the confidence implied by the normal quantile `z`
/// (e.g. `z = 1.96` for 95%). Unlike the naive Wald interval it behaves
/// sensibly at rates near 0 or 1 and for small samples — exactly the
/// regime of per-task aggregation-error estimates (`δ_j ∈ [0.1, 0.2]`
/// with a few hundred trials).
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or `z` is not positive.
///
/// # Examples
///
/// ```
/// use mcs_num::wilson_interval;
///
/// let (lo, hi) = wilson_interval(8, 10, 1.96);
/// assert!(lo > 0.4 && hi < 0.98);
/// assert!(lo < 0.8 && 0.8 < hi);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    assert!(z > 0.0, "z must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Tests whether an empirical rate is consistent with a hypothesized
/// bound: returns `true` when `bound` is at or above the lower end of the
/// Wilson interval — i.e. the data does *not* reject `rate ≤ bound`.
///
/// # Examples
///
/// ```
/// use mcs_num::rate_consistent_with_bound;
///
/// // 45 errors in 400 trials is consistent with a 10% bound at 95%.
/// assert!(rate_consistent_with_bound(45, 400, 0.10, 1.96));
/// // 90 errors in 400 trials is not.
/// assert!(!rate_consistent_with_bound(90, 400, 0.10, 1.96));
/// ```
pub fn rate_consistent_with_bound(successes: u64, trials: u64, bound: f64, z: f64) -> bool {
    let (lo, _) = wilson_interval(successes, trials, z);
    lo <= bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(30, 100, 1.96);
        assert!(lo < 0.3 && 0.3 < hi);
    }

    #[test]
    fn extreme_rates_stay_in_unit_interval() {
        let (lo, hi) = wilson_interval(0, 10, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.5);
        let (lo, hi) = wilson_interval(10, 10, 1.96);
        assert!(lo > 0.5 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn interval_narrows_with_more_data() {
        let (lo1, hi1) = wilson_interval(30, 100, 1.96);
        let (lo2, hi2) = wilson_interval(300, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = wilson_interval(0, 0, 1.96);
    }

    #[test]
    #[should_panic(expected = "more successes")]
    fn too_many_successes_panics() {
        let _ = wilson_interval(5, 4, 1.96);
    }

    proptest! {
        #[test]
        fn prop_interval_valid(
            trials in 1u64..10_000,
            frac in 0.0f64..=1.0,
            z in 0.5f64..4.0,
        ) {
            let successes = (trials as f64 * frac) as u64;
            let (lo, hi) = wilson_interval(successes, trials, z);
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!((0.0..=1.0).contains(&hi));
            prop_assert!(lo <= hi);
            let p = successes as f64 / trials as f64;
            prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        }
    }
}
