//! Running statistics for experiment measurements.

use std::fmt;

/// Welford-style online accumulator for mean, variance and extrema.
///
/// Numerically stable for long streams (the 10 000-sample payment series of
/// Figures 1–4) — unlike naive `Σx², Σx` accumulation, which cancels
/// catastrophically when the variance is small relative to the mean.
///
/// # Examples
///
/// ```
/// use mcs_num::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `Σ(x−μ)²/n` (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance `Σ(x−μ)²/(n−1)` (0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean, `s/√n` (0 when `n < 2`).
    pub fn standard_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.sample_std_dev(),
            self.min,
            self.max
        )
    }
}

/// A five-number-plus summary of a finished sample: count, mean, standard
/// deviation, extrema and selected percentiles.
///
/// Built from a full sample vector (sorting it once); use [`OnlineStats`]
/// when you only need moments and don't want to keep the data.
///
/// # Examples
///
/// ```
/// use mcs_num::Summary;
///
/// let s = Summary::from_sample(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.percentile(0.0), 1.0);
/// assert_eq!(s.percentile(100.0), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Builds a summary from a sample (empty samples are allowed).
    pub fn from_sample(sample: &[f64]) -> Self {
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample contains NaN"));
        let stats = sample.iter().copied().collect();
        Summary { sorted, stats }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.stats.sample_std_dev()
    }

    /// The `p`-th percentile by nearest-rank interpolation, `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty sample");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = data.iter().copied().collect();
        let mut a: OnlineStats = data[..37].iter().copied().collect();
        let b: OnlineStats = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-8);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stability_large_offset() {
        // Mean 1e9, tiny variance — naive Σx² would lose all precision.
        let s: OnlineStats = (0..1000).map(|i| 1.0e9 + (i % 2) as f64).collect();
        assert!((s.population_variance() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_sample(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert_eq!(s.count(), 4);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_percentile_empty_panics() {
        let _ = Summary::from_sample(&[]).percentile(50.0);
    }

    #[test]
    fn display_nonempty() {
        let s: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let txt = s.to_string();
        assert!(txt.contains("n=2"));
    }

    proptest! {
        #[test]
        fn prop_mean_within_extrema(
            data in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)
        ) {
            let s: OnlineStats = data.iter().copied().collect();
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.sample_variance() >= 0.0);
        }

        #[test]
        fn prop_merge_equals_sequential(
            a in proptest::collection::vec(-100.0f64..100.0, 0..50),
            b in proptest::collection::vec(-100.0f64..100.0, 0..50),
        ) {
            let mut merged: OnlineStats = a.iter().copied().collect();
            merged.merge(&b.iter().copied().collect());
            let seq: OnlineStats = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged.count(), seq.count());
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-8);
            prop_assert!((merged.m2 - seq.m2).abs() < 1e-5);
        }

        #[test]
        fn prop_percentile_monotone(
            data in proptest::collection::vec(-100.0f64..100.0, 1..100),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let s = Summary::from_sample(&data);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-12);
        }
    }
}
