//! Divergence measures between discrete distributions.

/// Kullback–Leibler divergence `D_KL(P‖P′) = Σ P(x) ln(P(x)/P′(x))`.
///
/// This is exactly the *privacy leakage* of Definition 8 in the paper when
/// `P` and `P′` are the exponential-mechanism price PMFs of two
/// neighbouring bid profiles.
///
/// Terms with `P(x) = 0` contribute zero regardless of `P′(x)` (the usual
/// `0 ln 0 = 0` convention). If `P(x) > 0` while `P′(x) = 0` the divergence
/// is `+∞` — which cannot happen for exponential-mechanism PMFs over the
/// same support, but is handled for robustness.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcs_num::kl_divergence;
///
/// let p = [0.5, 0.5];
/// assert_eq!(kl_divergence(&p, &p), 0.0);
/// let q = [0.25, 0.75];
/// assert!(kl_divergence(&p, &q) > 0.0);
/// ```
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(
        p.len(),
        q.len(),
        "kl_divergence requires equal-length distributions"
    );
    let mut sum = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f64::INFINITY;
            }
            sum += pi * (pi / qi).ln();
        }
    }
    // Guard against tiny negative results from float cancellation when
    // p ≈ q (KL is provably non-negative).
    sum.max(0.0)
}

/// Maximum absolute log-probability ratio `max_x |ln(P(x)/P′(x))|` over the
/// common support.
///
/// For an ε-differentially private mechanism this is at most ε for every
/// neighbouring pair — the quantity the empirical DP check measures
/// directly (Theorem 2). Points where both PMFs are zero are skipped;
/// if exactly one is zero the ratio is `+∞`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use mcs_num::max_abs_log_ratio;
///
/// let p = [0.5, 0.5];
/// let q = [0.25, 0.75];
/// let r = max_abs_log_ratio(&p, &q);
/// assert!((r - (2.0f64).ln()).abs() < 1e-12);
/// ```
pub fn max_abs_log_ratio(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(
        p.len(),
        q.len(),
        "max_abs_log_ratio requires equal-length distributions"
    );
    let mut worst = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 && qi == 0.0 {
            continue;
        }
        if pi == 0.0 || qi == 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max((pi / qi).ln().abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.2, 0.3, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_handles_zero_in_p() {
        let p = [0.0, 1.0];
        let q = [0.5, 0.5];
        let d = kl_divergence(&p, &q);
        assert!((d - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_when_support_escapes() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert_eq!(kl_divergence(&p, &q), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn kl_length_mismatch_panics() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn log_ratio_infinite_on_one_sided_zero() {
        assert_eq!(max_abs_log_ratio(&[0.0, 1.0], &[0.5, 0.5]), f64::INFINITY);
    }

    #[test]
    fn log_ratio_skips_common_zeros() {
        let r = max_abs_log_ratio(&[0.0, 1.0], &[0.0, 1.0]);
        assert_eq!(r, 0.0);
    }

    fn normalize(v: Vec<f64>) -> Vec<f64> {
        let s: f64 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect()
    }

    proptest! {
        #[test]
        fn prop_kl_nonnegative(
            a in proptest::collection::vec(0.01f64..1.0, 2..32),
        ) {
            let n = a.len();
            let p = normalize(a.clone());
            let q = normalize(a.iter().rev().copied().collect::<Vec<_>>());
            prop_assert_eq!(p.len(), n);
            prop_assert!(kl_divergence(&p, &q) >= 0.0);
        }

        #[test]
        fn prop_kl_bounded_by_max_log_ratio(
            a in proptest::collection::vec(0.01f64..1.0, 2..16),
            b in proptest::collection::vec(0.01f64..1.0, 2..16),
        ) {
            // KL(P||Q) = E_P[ln(P/Q)] ≤ max |ln(P/Q)|.
            let n = a.len().min(b.len());
            let p = normalize(a[..n].to_vec());
            let q = normalize(b[..n].to_vec());
            let kl = kl_divergence(&p, &q);
            let ratio = max_abs_log_ratio(&p, &q);
            prop_assert!(kl <= ratio + 1e-12);
        }
    }
}
