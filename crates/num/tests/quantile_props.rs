//! Property tests for `Histogram::quantile` edge cases: empty histograms,
//! single samples, the q = 0 / q = 1 endpoints, NaN rejection, and
//! monotonicity — the contract the service's latency quantiles and the
//! verification harness's empirical-PMF comparisons both lean on.

use mcs_num::Histogram;
use proptest::prelude::*;

fn histogram_from(bins: usize, observations: &[usize]) -> Histogram {
    let mut h = Histogram::new(bins);
    for &b in observations {
        h.record(b % bins);
    }
    h
}

#[test]
fn empty_histogram_has_no_quantiles() {
    for bins in [0usize, 1, 7] {
        let h = Histogram::new(bins);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), None, "bins {bins}, q {q}");
        }
    }
}

#[test]
fn nan_is_rejected_even_when_populated() {
    let mut h = Histogram::new(3);
    h.record(1);
    h.record(2);
    assert_eq!(h.quantile(f64::NAN), None);
    // But real quantiles still answer.
    assert_eq!(h.quantile(0.0), Some(1));
    assert_eq!(h.quantile(1.0), Some(2));
}

#[test]
fn single_sample_answers_its_bin_for_every_q() {
    let mut h = Histogram::new(5);
    h.record(3);
    for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
        assert_eq!(h.quantile(q), Some(3));
    }
    // Out-of-range q clamps rather than erroring.
    assert_eq!(h.quantile(-0.5), Some(3));
    assert_eq!(h.quantile(42.0), Some(3));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn endpoints_hit_first_and_last_nonempty_bins(
        bins in 1usize..12,
        observations in proptest::collection::vec(0usize..64, 1..40),
    ) {
        let h = histogram_from(bins, &observations);
        let first = (0..h.bins()).find(|&i| h.count(i) > 0);
        let last = (0..h.bins()).rev().find(|&i| h.count(i) > 0);
        prop_assert_eq!(h.quantile(0.0), first);
        prop_assert_eq!(h.quantile(1.0), last);
        // Clamping agrees with the endpoints.
        prop_assert_eq!(h.quantile(-3.0), first);
        prop_assert_eq!(h.quantile(7.0), last);
    }

    #[test]
    fn quantile_is_monotone_and_lands_on_nonempty_bins(
        bins in 1usize..12,
        observations in proptest::collection::vec(0usize..64, 1..40),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = histogram_from(bins, &observations);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let at_lo = h.quantile(lo);
        let at_hi = h.quantile(hi);
        prop_assert!(at_lo.is_some() && at_hi.is_some());
        prop_assert!(at_lo <= at_hi, "quantile({lo}) = {at_lo:?} > quantile({hi}) = {at_hi:?}");
        // The answering bin always holds at least one observation.
        for idx in [at_lo, at_hi].into_iter().flatten() {
            prop_assert!(h.count(idx) > 0, "bin {idx} is empty");
        }
    }

    #[test]
    fn cumulative_mass_up_to_the_answer_reaches_q(
        bins in 1usize..12,
        observations in proptest::collection::vec(0usize..64, 1..40),
        q in 0.0f64..=1.0,
    ) {
        let h = histogram_from(bins, &observations);
        let idx = h.quantile(q).expect("non-empty histogram");
        let upto: u64 = (0..=idx).map(|i| h.count(i)).sum();
        let before: u64 = (0..idx).map(|i| h.count(i)).sum();
        let target = (q * h.total() as f64).ceil().max(1.0) as u64;
        prop_assert!(upto >= target, "mass {upto} below target {target}");
        prop_assert!(before < target, "an earlier bin already reached {target}");
    }
}
