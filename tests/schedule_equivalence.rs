//! Property-based equivalence of the lazy-greedy (CELF) schedule engine
//! against the naive full-rescan reference.
//!
//! The lazy engine caches stale marginal-coverage upper bounds in a heap
//! and only re-evaluates the top candidate; submodularity makes that safe,
//! but the *exact* winner sequence (including float tie-breaking) must
//! still match the eager reference winner-for-winner — the privacy and
//! payment analyses quantify over the schedule, so any divergence is a
//! correctness bug, not a performance trade-off.

use proptest::prelude::*;

use dp_mcs::auction::{
    build_schedule, build_schedule_eager, build_schedule_incremental, build_schedule_naive,
    build_schedule_serial, SelectionRule,
};
use dp_mcs::types::{CoverageView, SparseCoverage, DEFAULT_THETA};
use dp_mcs::{
    Bid, DpHsrcAuction, Instance, ScheduledMechanism, Setting, SkillMatrix, TaskId, WorkerId,
};

fn small_setting(workers: usize) -> Setting {
    Setting::one(workers.max(8) * 4).scaled_down(4)
}

/// Rebuilds `instance` twice with logically identical skills: once from
/// dense rows, once from sparse `(worker, task, θ)` entries with the
/// `DEFAULT_THETA` cells omitted. Everything else is shared.
fn dense_and_sparse_built(instance: &Instance) -> (Instance, Instance) {
    let bids: Vec<Bid> = instance.bids().iter().map(|(_, b)| b.clone()).collect();
    let rows: Vec<Vec<f64>> = (0..instance.num_workers())
        .map(|w| instance.skills().worker_row(WorkerId(w as u32)))
        .collect();
    let entries: Vec<(WorkerId, TaskId, f64)> = rows
        .iter()
        .enumerate()
        .flat_map(|(w, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &theta)| theta != DEFAULT_THETA)
                .map(move |(t, &theta)| (WorkerId(w as u32), TaskId(t as u32), theta))
        })
        .collect();
    let build = |skills: SkillMatrix| {
        Instance::builder(instance.num_tasks())
            .bids(bids.clone())
            .skills(skills)
            .error_bounds(instance.deltas().to_vec())
            .price_grid(instance.price_grid().clone())
            .cost_range(instance.cmin(), instance.cmax())
            .build()
            .expect("rebuilding a valid instance stays valid")
    };
    let dense = build(SkillMatrix::from_rows(rows.clone()).expect("valid rows"));
    let sparse = build(
        SkillMatrix::from_sparse(instance.num_workers(), instance.num_tasks(), entries)
            .expect("valid entries"),
    );
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The default engine (lazy; parallel when the feature is on) matches
    /// the naive per-price reference exactly — same prices, same winner
    /// sets in the same order — for both selection rules.
    #[test]
    fn default_engine_matches_naive(
        seed in 0u64..1000,
        workers in 8usize..32,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let fast = build_schedule(&g.instance, rule)
            .expect("generated instances are coverable");
        let naive = build_schedule_naive(&g.instance, rule)
            .expect("generated instances are coverable");
        prop_assert_eq!(fast.prices(), naive.prices());
        for i in 0..fast.len() {
            prop_assert_eq!(
                fast.winners(i),
                naive.winners(i),
                "winner divergence at price index {}",
                i
            );
        }
    }

    /// The serial lazy engine and the eager full-rescan engine agree with
    /// the default engine winner-for-winner, so the `parallel` feature and
    /// the CELF cache are both behaviour-preserving.
    #[test]
    fn all_engines_agree(
        seed in 0u64..1000,
        workers in 8usize..32,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let default = build_schedule(&g.instance, rule).expect("coverable");
        let serial = build_schedule_serial(&g.instance, rule).expect("coverable");
        let eager = build_schedule_eager(&g.instance, rule).expect("coverable");
        prop_assert_eq!(&default, &serial);
        prop_assert_eq!(&default, &eager);
        // The incremental price sweep reuses residual state across
        // adjacent intervals; it may compress intervals identically, so
        // full struct equality must hold here too.
        let incremental = build_schedule_incremental(&g.instance, rule).expect("coverable");
        prop_assert_eq!(&default, &incremental);
    }

    /// An instance whose skills were built densely and one whose skills
    /// were built from CSR entries are *the same instance*: byte-identical
    /// digest (so the service's `PmfCache` and batching keys coincide) and
    /// identical auction pipeline outputs — prices, winner sets, and the
    /// exponential-mechanism PMF, bit for bit.
    #[test]
    fn dense_and_sparse_built_instances_are_indistinguishable(
        seed in 0u64..1000,
        workers in 8usize..24,
    ) {
        let g = small_setting(workers).generate(seed);
        let (dense, sparse) = dense_and_sparse_built(&g.instance);
        prop_assert_eq!(dense.digest(), sparse.digest(), "digest divergence");
        prop_assert_eq!(g.instance.digest(), sparse.digest(), "rebuild changed the digest");

        let auction = DpHsrcAuction::new(0.5).expect("valid epsilon");
        let sd = auction.schedule(&dense).expect("coverable");
        let ss = auction.schedule(&sparse).expect("coverable");
        prop_assert_eq!(&sd, &ss);

        let pd = auction.pmf(&dense).expect("coverable");
        let ps = auction.pmf(&sparse).expect("coverable");
        prop_assert_eq!(pd.probs(), ps.probs(), "PMF divergence");
    }

    /// `SparseCoverage::restrict_to` commutes with the dense restriction:
    /// restricting the CSR view and sparsifying the restricted dense view
    /// land on the same object, with the same worker mapping, and the sub
    /// view's rows are exactly the selected originals.
    #[test]
    fn sparse_restrict_to_round_trips(
        seed in 0u64..1000,
        workers in 8usize..24,
        parity in 0u32..2,
    ) {
        let g = small_setting(workers).generate(seed);
        let sparse = g.instance.sparse_coverage();
        let dense = g.instance.coverage_problem();
        let mut subset: Vec<WorkerId> = (0..g.instance.num_workers() as u32)
            .filter(|w| w % 2 == parity)
            .map(WorkerId)
            .collect();
        if subset.is_empty() {
            subset.push(WorkerId(0));
        }
        let (sub_sparse, map_sparse) = sparse.restrict_to(&subset);
        let (sub_dense, map_dense) = dense.restrict_to(&subset);
        prop_assert_eq!(&map_sparse, &map_dense);
        prop_assert_eq!(&SparseCoverage::from_dense(&sub_dense), &sub_sparse);
        prop_assert_eq!(sub_sparse.requirements(), sparse.requirements());
        for (sub_row, &orig) in map_sparse.iter().enumerate() {
            let got: Vec<(usize, f64)> = sub_sparse.row(sub_row).collect();
            let want: Vec<(usize, f64)> = sparse.row(orig.index()).collect();
            prop_assert_eq!(got, want, "row mismatch for original worker {}", orig.0);
        }
    }
}
