//! Property-based equivalence of the lazy-greedy (CELF) schedule engine
//! against the naive full-rescan reference.
//!
//! The lazy engine caches stale marginal-coverage upper bounds in a heap
//! and only re-evaluates the top candidate; submodularity makes that safe,
//! but the *exact* winner sequence (including float tie-breaking) must
//! still match the eager reference winner-for-winner — the privacy and
//! payment analyses quantify over the schedule, so any divergence is a
//! correctness bug, not a performance trade-off.

use proptest::prelude::*;

use dp_mcs::auction::{
    build_schedule, build_schedule_eager, build_schedule_naive, build_schedule_serial,
    SelectionRule,
};
use dp_mcs::Setting;

fn small_setting(workers: usize) -> Setting {
    Setting::one(workers.max(8) * 4).scaled_down(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The default engine (lazy; parallel when the feature is on) matches
    /// the naive per-price reference exactly — same prices, same winner
    /// sets in the same order — for both selection rules.
    #[test]
    fn default_engine_matches_naive(
        seed in 0u64..1000,
        workers in 8usize..32,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let fast = build_schedule(&g.instance, rule)
            .expect("generated instances are coverable");
        let naive = build_schedule_naive(&g.instance, rule)
            .expect("generated instances are coverable");
        prop_assert_eq!(fast.prices(), naive.prices());
        for i in 0..fast.len() {
            prop_assert_eq!(
                fast.winners(i),
                naive.winners(i),
                "winner divergence at price index {}",
                i
            );
        }
    }

    /// The serial lazy engine and the eager full-rescan engine agree with
    /// the default engine winner-for-winner, so the `parallel` feature and
    /// the CELF cache are both behaviour-preserving.
    #[test]
    fn all_engines_agree(
        seed in 0u64..1000,
        workers in 8usize..32,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let default = build_schedule(&g.instance, rule).expect("coverable");
        let serial = build_schedule_serial(&g.instance, rule).expect("coverable");
        let eager = build_schedule_eager(&g.instance, rule).expect("coverable");
        prop_assert_eq!(&default, &serial);
        prop_assert_eq!(&default, &eager);
    }
}
