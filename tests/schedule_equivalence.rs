//! Property-based equivalence of every schedule strategy against the
//! naive full-rescan reference.
//!
//! The fast engines cache stale marginal-coverage upper bounds (the CELF
//! heap, the indexed engine's global rank order) and reuse residual state
//! across price intervals; submodularity makes that safe, but the *exact*
//! winner sequence (including float tie-breaking) must still match the
//! reference winner-for-winner — the privacy and payment analyses
//! quantify over the schedule, so any divergence is a correctness bug,
//! not a performance trade-off. Coarsening is the one knob that is
//! *allowed* to change the schedule, and its proptest pins exactly how
//! far: reused winner sets come from cheaper evaluated prices, so the
//! minimum total payment never drops below the exact schedule's.

use proptest::prelude::*;

use dp_mcs::types::{CoverageView, SparseCoverage, DEFAULT_THETA};
use dp_mcs::{
    Bid, Coarsening, DpHsrcAuction, Instance, PriceSchedule, ScheduleEngine, ScheduledMechanism,
    SelectionRule, Setting, SkillMatrix, Strategy, TaskId, WorkerId,
};
use mcs_verify::gen::{self, Shape};

fn small_setting(workers: usize) -> Setting {
    Setting::one(workers.max(8) * 4).scaled_down(4)
}

/// Builds with one strategy, coarsening off.
fn build(instance: &Instance, rule: SelectionRule, strategy: Strategy) -> PriceSchedule {
    ScheduleEngine::new(rule)
        .strategy(strategy)
        .build(instance)
        .expect("generated instances are coverable")
}

/// `(price, winners)` pairs must match even when interval compression
/// differs (the naive reference compresses after the fact).
fn assert_observationally_equal(a: &PriceSchedule, b: &PriceSchedule, context: &str) {
    assert_eq!(a.prices(), b.prices(), "{context}: price divergence");
    for i in 0..a.len() {
        assert_eq!(
            a.winners(i),
            b.winners(i),
            "{context}: winner divergence at price index {i}"
        );
    }
}

/// Rebuilds `instance` twice with logically identical skills: once from
/// dense rows, once from sparse `(worker, task, θ)` entries with the
/// `DEFAULT_THETA` cells omitted. Everything else is shared.
fn dense_and_sparse_built(instance: &Instance) -> (Instance, Instance) {
    let bids: Vec<Bid> = instance.bids().iter().map(|(_, b)| b.clone()).collect();
    let rows: Vec<Vec<f64>> = (0..instance.num_workers())
        .map(|w| instance.skills().worker_row(WorkerId(w as u32)))
        .collect();
    let entries: Vec<(WorkerId, TaskId, f64)> = rows
        .iter()
        .enumerate()
        .flat_map(|(w, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &theta)| theta != DEFAULT_THETA)
                .map(move |(t, &theta)| (WorkerId(w as u32), TaskId(t as u32), theta))
        })
        .collect();
    let build = |skills: SkillMatrix| {
        Instance::builder(instance.num_tasks())
            .bids(bids.clone())
            .skills(skills)
            .error_bounds(instance.deltas().to_vec())
            .price_grid(instance.price_grid().clone())
            .cost_range(instance.cmin(), instance.cmax())
            .build()
            .expect("rebuilding a valid instance stays valid")
    };
    let dense = build(SkillMatrix::from_rows(rows.clone()).expect("valid rows"));
    let sparse = build(
        SkillMatrix::from_sparse(instance.num_workers(), instance.num_tasks(), entries)
            .expect("valid entries"),
    );
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The default engine (lazy; parallel when the feature is on) matches
    /// the naive per-price reference exactly — same prices, same winner
    /// sets in the same order — for both selection rules.
    #[test]
    fn default_engine_matches_naive(
        seed in 0u64..1000,
        workers in 8usize..32,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let fast = build(&g.instance, rule, Strategy::Auto);
        let naive = build(&g.instance, rule, Strategy::Naive);
        assert_observationally_equal(&fast, &naive, "default vs naive");
    }

    /// Every strategy agrees with the default engine winner-for-winner,
    /// so the `parallel` feature, the CELF cache, the incremental sweep's
    /// residual reuse, and the indexed engine's rank order are all
    /// behaviour-preserving. The interval-based strategies share the
    /// assembly layer, so they must match as full structs (identical
    /// interval compression); the naive reference compresses after the
    /// fact and is held to observational equality.
    #[test]
    fn all_strategies_agree(
        seed in 0u64..1000,
        workers in 8usize..32,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let default = build(&g.instance, rule, Strategy::Auto);
        for strategy in Strategy::ALL {
            let other = build(&g.instance, rule, strategy);
            if strategy == Strategy::Naive {
                assert_observationally_equal(&default, &other, strategy.name());
            } else {
                prop_assert_eq!(&default, &other, "strategy {}", strategy.name());
            }
        }
    }

    /// The indexed engine with coarsening off is byte-identical to the
    /// dense reference on *every* generator shape — the adversarial
    /// structural regimes (ties, degenerate bundles, skewed skills,
    /// infeasibility) as well as both scaling shapes at reduced size.
    #[test]
    fn indexed_matches_dense_reference_across_shapes(
        seed in 0u64..200,
        shape_idx in 0usize..Shape::ALL.len(),
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let shape = Shape::ALL[shape_idx];
        // The scaling shapes are sized down so the dense reference stays
        // cheap; the small shapes run at their native size.
        let instance = match shape {
            Shape::LargeSparse => gen::large_sparse_sized(200, seed),
            Shape::ManyWorkers => gen::many_workers_sized(500, seed),
            _ => gen::generate(shape, seed),
        };
        let indexed = ScheduleEngine::new(rule)
            .strategy(Strategy::Indexed)
            .build(&instance);
        let dense = ScheduleEngine::new(rule)
            .strategy(Strategy::Dense)
            .build(&instance);
        match (indexed, dense) {
            (Ok(a), Ok(b)) => prop_assert_eq!(&a, &b, "shape {}", shape.name()),
            (Err(a), Err(b)) => prop_assert_eq!(
                std::mem::discriminant(&a),
                std::mem::discriminant(&b),
                "shape {}: {a} vs {b}",
                shape.name()
            ),
            (a, b) => prop_assert!(
                false,
                "shape {}: indexed {:?} but dense {:?}",
                shape.name(),
                a.map(|s| s.len()),
                b.map(|s| s.len())
            ),
        }
    }

    /// Price-grid coarsening keeps the documented guarantees: the price
    /// axis is unchanged, every winner set is feasible and price-feasible,
    /// each coarse set is the exact winner set of some evaluated price at
    /// or below its own, and — the headline bound — the minimum total
    /// payment over the schedule never drops below the exact schedule's
    /// (the exponential mechanism's mode never looks cheaper than it is).
    #[test]
    fn coarsening_respects_the_payment_bound(
        seed in 0u64..500,
        workers in 8usize..32,
        stride in 2usize..10,
        marginal in 0u8..2,
    ) {
        let rule = if marginal == 1 {
            SelectionRule::MarginalCoverage
        } else {
            SelectionRule::StaticTotal
        };
        let g = small_setting(workers).generate(seed);
        let exact = build(&g.instance, rule, Strategy::Indexed);
        let coarse = ScheduleEngine::new(rule)
            .strategy(Strategy::Indexed)
            .coarsening(Coarsening::Stride(stride))
            .build(&g.instance)
            .expect("coverable");
        prop_assert_eq!(exact.prices(), coarse.prices());
        let cover = g.instance.sparse_coverage();
        for i in 0..coarse.len() {
            let winners = coarse.winners(i);
            prop_assert!(cover.is_satisfied_by(winners.iter().copied()));
            let price = coarse.price(i);
            for &w in winners {
                prop_assert!(g.instance.bids().bid(w).price() <= price);
            }
            prop_assert!(
                (0..=i).any(|j| exact.winners(j) == winners),
                "coarse set at index {} is not an exact set from below",
                i
            );
        }
        prop_assert!(coarse.min_total_payment() >= exact.min_total_payment());
    }

    /// An instance whose skills were built densely and one whose skills
    /// were built from CSR entries are *the same instance*: byte-identical
    /// digest (so the service's `PmfCache` and batching keys coincide) and
    /// identical auction pipeline outputs — prices, winner sets, and the
    /// exponential-mechanism PMF, bit for bit.
    #[test]
    fn dense_and_sparse_built_instances_are_indistinguishable(
        seed in 0u64..1000,
        workers in 8usize..24,
    ) {
        let g = small_setting(workers).generate(seed);
        let (dense, sparse) = dense_and_sparse_built(&g.instance);
        prop_assert_eq!(dense.digest(), sparse.digest(), "digest divergence");
        prop_assert_eq!(g.instance.digest(), sparse.digest(), "rebuild changed the digest");

        let auction = DpHsrcAuction::new(0.5).expect("valid epsilon");
        let sd = auction.schedule(&dense).expect("coverable");
        let ss = auction.schedule(&sparse).expect("coverable");
        prop_assert_eq!(&sd, &ss);

        let pd = auction.pmf(&dense).expect("coverable");
        let ps = auction.pmf(&sparse).expect("coverable");
        prop_assert_eq!(pd.probs(), ps.probs(), "PMF divergence");
    }

    /// `SparseCoverage::restrict_to` commutes with the dense restriction:
    /// restricting the CSR view and sparsifying the restricted dense view
    /// land on the same object, with the same worker mapping, and the sub
    /// view's rows are exactly the selected originals.
    #[test]
    fn sparse_restrict_to_round_trips(
        seed in 0u64..1000,
        workers in 8usize..24,
        parity in 0u32..2,
    ) {
        let g = small_setting(workers).generate(seed);
        let sparse = g.instance.sparse_coverage();
        let dense = g.instance.coverage_problem();
        let mut subset: Vec<WorkerId> = (0..g.instance.num_workers() as u32)
            .filter(|w| w % 2 == parity)
            .map(WorkerId)
            .collect();
        if subset.is_empty() {
            subset.push(WorkerId(0));
        }
        let (sub_sparse, map_sparse) = sparse.restrict_to(&subset);
        let (sub_dense, map_dense) = dense.restrict_to(&subset);
        prop_assert_eq!(&map_sparse, &map_dense);
        prop_assert_eq!(&SparseCoverage::from_dense(&sub_dense), &sub_sparse);
        prop_assert_eq!(sub_sparse.requirements(), sparse.requirements());
        for (sub_row, &orig) in map_sparse.iter().enumerate() {
            let got: Vec<(usize, f64)> = sub_sparse.row(sub_row).collect();
            let want: Vec<(usize, f64)> = sparse.row(orig.index()).collect();
            prop_assert_eq!(got, want, "row mismatch for original worker {}", orig.0);
        }
    }
}
