//! Cross-crate integration tests of the paper's four claimed properties
//! (Theorems 2–4 and 6) on generated Table-I-proportioned instances.

use dp_mcs::auction::{privacy, utility, BaselineAuction, OptimalMechanism};
use dp_mcs::num::rng;
use dp_mcs::sim::neighbour::{price_push_neighbour, random_worker, resample_neighbour, PricePush};
use dp_mcs::{DpHsrcAuction, ScheduledMechanism, Setting, WorkerId};

fn setting() -> Setting {
    Setting::one(80).scaled_down(4)
}

/// Theorem 2: ε-differential privacy, checked on exact PMFs for random and
/// worst-case neighbours across several ε.
#[test]
fn differential_privacy_bound_holds() {
    let s = setting();
    let g = s.generate(7);
    let mut r = rng::seeded(40);
    for eps in [0.1, 1.0, 5.0] {
        let auction = DpHsrcAuction::new(eps).unwrap();
        let base = auction.pmf(&g.instance).unwrap();
        for k in 0..12 {
            let w = random_worker(&g.instance, &mut r);
            let nb = match k % 3 {
                0 => resample_neighbour(&g.instance, &s, w, &mut r).unwrap(),
                1 => price_push_neighbour(&g.instance, w, PricePush::ToMin).unwrap(),
                _ => price_push_neighbour(&g.instance, w, PricePush::ToMax).unwrap(),
            };
            let Ok(nb_pmf) = auction.pmf(&nb) else {
                continue;
            };
            if let Some(ratio) = privacy::dp_log_ratio(&base, &nb_pmf) {
                assert!(
                    ratio <= eps + 1e-9,
                    "eps {eps}, neighbour {k}: ratio {ratio}"
                );
            }
        }
    }
}

/// The baseline enjoys the same DP guarantee (it shares the exponential
/// mechanism).
#[test]
fn baseline_is_also_differentially_private() {
    let s = setting();
    let g = s.generate(8);
    let mut r = rng::seeded(41);
    let eps = 0.5;
    let auction = BaselineAuction::new(eps).unwrap();
    let base = auction.pmf(&g.instance).unwrap();
    for _ in 0..8 {
        let w = random_worker(&g.instance, &mut r);
        let nb = resample_neighbour(&g.instance, &s, w, &mut r).unwrap();
        let Ok(nb_pmf) = auction.pmf(&nb) else {
            continue;
        };
        if let Some(ratio) = privacy::dp_log_ratio(&base, &nb_pmf) {
            assert!(ratio <= eps + 1e-9);
        }
    }
}

/// Theorem 3 (price channel): the DP lottery shifts expected utility by at
/// most (e^ε − 1)·Δc for a fixed membership function.
#[test]
fn truthfulness_price_channel_bounded() {
    let s = setting();
    let g = s.generate(9);
    let auction = DpHsrcAuction::new(s.epsilon).unwrap();
    let truthful = auction.pmf(&g.instance).unwrap();
    let channel_budget = (s.epsilon.exp() - 1.0) * (s.cmax - s.cmin);
    for widx in [0u32, 5, 11] {
        let w = WorkerId(widx);
        let cost = g.types[widx as usize].cost();
        for dev in [15.0, 30.0, 45.0, 60.0] {
            let bid = g
                .instance
                .bids()
                .bid(w)
                .with_price(dp_mcs::Price::from_f64(dev));
            let deviated = g.instance.with_bid(w, bid).unwrap();
            let dev_pmf = auction.pmf(&deviated).unwrap();
            let Some(cross) = utility::cross_expected_utility(&truthful, &dev_pmf, w, cost) else {
                continue;
            };
            let gain = utility::expected_utility(&dev_pmf, w, cost) - cross;
            assert!(
                gain <= channel_budget + 1e-9,
                "worker {widx} deviating to {dev}: channel gain {gain}"
            );
        }
    }
}

/// Theorem 4: individual rationality under truthful bidding, for every
/// price in the support.
#[test]
fn individual_rationality_over_entire_support() {
    let g = setting().generate(10);
    let pmf = DpHsrcAuction::new(0.1).unwrap().pmf(&g.instance).unwrap();
    for i in 0..pmf.schedule().len() {
        let price = pmf.schedule().price(i);
        for &w in pmf.schedule().winners(i) {
            let cost = g.types[w.index()].cost();
            assert!(cost <= price, "winner {w} at price {price} has cost {cost}");
        }
    }
}

/// Figure 1/2 ordering: Optimal ≤ E[DP-hSRC] ≤ E[Baseline] on fixed seeds.
#[test]
fn payment_ordering_matches_figures() {
    for seed in [20, 21, 22] {
        let g = setting().generate(seed);
        let opt = OptimalMechanism::new().solve(&g.instance).unwrap();
        assert!(opt.exact);
        let dp = DpHsrcAuction::new(0.1).unwrap().pmf(&g.instance).unwrap();
        let base = BaselineAuction::new(0.1).unwrap().pmf(&g.instance).unwrap();
        let r_opt = opt.total_payment().as_f64();
        assert!(
            r_opt <= dp.expected_total_payment() + 1e-9,
            "seed {seed}: optimal above dp"
        );
        assert!(
            dp.expected_total_payment() <= base.expected_total_payment() + 1e-9,
            "seed {seed}: dp {} above baseline {}",
            dp.expected_total_payment(),
            base.expected_total_payment()
        );
    }
}

/// Theorem 6 sanity: expected payment within the analytic bound.
#[test]
fn approximation_bound_holds() {
    use dp_mcs::sim::experiments::approx_ratio_experiment;
    let report = approx_ratio_experiment(&setting(), 30, &OptimalMechanism::new()).unwrap();
    assert!(report.exact);
    assert!(report.within_bound());
    assert!(report.empirical_ratio >= 1.0 - 1e-9);
}

/// Table II shape at test scale: the exact solver explores orders of
/// magnitude more work than DP-hSRC even when both succeed.
#[test]
fn optimal_work_dwarfs_dp_hsrc_work() {
    use std::time::Instant;
    let g = setting().generate(77);
    let t0 = Instant::now();
    let _ = DpHsrcAuction::new(0.1).unwrap().pmf(&g.instance).unwrap();
    let dp_time = t0.elapsed();
    let t0 = Instant::now();
    let opt = OptimalMechanism::new().solve(&g.instance).unwrap();
    let opt_time = t0.elapsed();
    assert!(opt.exact);
    // Node counts are the platform-independent work measure.
    let nodes: u64 = opt.solves.iter().map(|s| s.nodes).sum();
    assert!(nodes >= 1);
    // The exact solver costs at least as much wall-clock as DP-hSRC
    // (usually vastly more; keep the assertion robust to fast hosts).
    assert!(opt_time >= dp_time);
}

/// ε → ∞ recovers the greedy payment minimum; ε → 0 approaches the uniform
/// average over feasible prices.
#[test]
fn epsilon_limits_are_correct() {
    let g = setting().generate(31);
    let schedule = DpHsrcAuction::new(1.0)
        .unwrap()
        .schedule(&g.instance)
        .unwrap();
    let min_payment = schedule.min_total_payment().unwrap().as_f64();
    let uniform_mean: f64 = schedule
        .total_payments()
        .iter()
        .map(|p| p.as_f64())
        .sum::<f64>()
        / schedule.len() as f64;

    let tight = DpHsrcAuction::new(5000.0)
        .unwrap()
        .pmf(&g.instance)
        .unwrap();
    assert!((tight.expected_total_payment() - min_payment).abs() < 0.5);

    let loose = DpHsrcAuction::new(1e-6).unwrap().pmf(&g.instance).unwrap();
    assert!((loose.expected_total_payment() - uniform_mean).abs() < 0.5);
}
