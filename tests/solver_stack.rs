//! Integration tests of the exact-solver substrate against the auction
//! layer: branch-and-bound vs exhaustive search on real TPM instances, and
//! the compressed schedule vs the naive per-price reference.

use dp_mcs::auction::{ScheduleEngine, SelectionRule, Strategy};
use dp_mcs::ilp::{solve_exhaustive, BnbOptions, CoveringIlp};
use dp_mcs::{Setting, TaskId, WorkerId};

/// Builds the TPM covering ILP for a generated instance restricted to the
/// cheapest `pool` workers.
fn tpm_ilp(instance: &dp_mcs::Instance, pool: usize) -> CoveringIlp {
    let cover = instance.coverage_problem();
    let mut ids: Vec<WorkerId> = (0..instance.num_workers() as u32).map(WorkerId).collect();
    ids.sort_by_key(|&w| (instance.bids().bid(w).price(), w));
    ids.truncate(pool);
    let weights: Vec<Vec<f64>> = ids.iter().map(|&w| cover.worker_row(w).to_vec()).collect();
    let reqs: Vec<f64> = (0..instance.num_tasks())
        .map(|j| cover.requirement(TaskId(j as u32)))
        .collect();
    CoveringIlp::uniform_cost(weights, reqs).unwrap()
}

#[test]
fn bnb_matches_exhaustive_on_generated_tpm_instances() {
    // Tiny pools keep 2^n enumeration tractable while using *real*
    // generated coverage structure, not synthetic toys.
    let mut s = Setting::one(80).scaled_down(6);
    s.num_workers = 14;
    for seed in [1u64, 2, 3, 4] {
        let g = s.generate(seed);
        let ilp = tpm_ilp(&g.instance, 14);
        let exact = solve_exhaustive(&ilp);
        let bnb = ilp.solve(&BnbOptions::default()).unwrap();
        match exact {
            None => assert!(
                bnb.best.is_none(),
                "seed {seed}: bnb found infeasible cover"
            ),
            Some(sel) => {
                let best = bnb.best.unwrap();
                assert!(
                    (best.objective - sel.objective).abs() < 1e-9,
                    "seed {seed}: bnb {} vs exhaustive {}",
                    best.objective,
                    sel.objective
                );
                assert!(ilp.is_feasible(&best.selected));
            }
        }
    }
}

#[test]
fn compressed_schedule_equals_naive_reference_on_generated_instances() {
    let s = Setting::one(80).scaled_down(3);
    for seed in [11u64, 12] {
        let g = s.generate(seed);
        for rule in [SelectionRule::MarginalCoverage, SelectionRule::StaticTotal] {
            let fast = ScheduleEngine::new(rule).build(&g.instance).unwrap();
            let naive = ScheduleEngine::new(rule)
                .strategy(Strategy::Naive)
                .build(&g.instance)
                .unwrap();
            assert_eq!(fast.prices(), naive.prices(), "seed {seed} {rule:?}");
            for i in 0..fast.len() {
                assert_eq!(
                    fast.winners(i),
                    naive.winners(i),
                    "seed {seed} {rule:?} price {}",
                    fast.price(i)
                );
            }
        }
    }
}

#[test]
fn greedy_winner_sets_never_smaller_than_optimal() {
    // Lemma 2 direction check: |S_greedy(p)| ≥ |S_OPT(p)| at every price.
    use dp_mcs::auction::OptimalMechanism;
    let mut s = Setting::one(80).scaled_down(6);
    s.num_workers = 16;
    let g = s.generate(5);
    let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
        .build(&g.instance)
        .unwrap();
    let opt = OptimalMechanism::new().solve(&g.instance).unwrap();
    // The optimal mechanism reports per-interval cardinalities; each
    // corresponds to the first grid price of the interval.
    for solve in &opt.solves {
        let idx = schedule
            .prices()
            .iter()
            .position(|&p| p == solve.price)
            .expect("same feasible support");
        assert!(
            schedule.winners(idx).len() >= solve.cardinality,
            "greedy beat the optimum at {} — impossible",
            solve.price
        );
    }
}

#[test]
fn lp_relaxation_lower_bounds_integer_optimum() {
    use dp_mcs::lp::{LinearProgram, LpOutcome};
    let mut s = Setting::one(80).scaled_down(6);
    s.num_workers = 12;
    let g = s.generate(6);
    let ilp = tpm_ilp(&g.instance, 12);
    let n = ilp.num_vars();
    let mut lp = LinearProgram::minimize(vec![1.0; n]);
    for j in 0..ilp.num_constraints() {
        let row: Vec<f64> = (0..n).map(|i| ilp.weights_of(i)[j]).collect();
        lp = lp.geq(row, ilp.requirements()[j]);
    }
    lp = lp.upper_bounds(1.0);
    let lp_obj = match lp.solve().unwrap() {
        LpOutcome::Optimal(sol) => sol.objective(),
        LpOutcome::Infeasible => return, // integer version infeasible too
        LpOutcome::Unbounded => panic!("covering LP cannot be unbounded"),
    };
    if let Some(sel) = solve_exhaustive(&ilp) {
        assert!(
            lp_obj <= sel.objective + 1e-7,
            "LP bound {lp_obj} above integer optimum {}",
            sel.objective
        );
    }
}
