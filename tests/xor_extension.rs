//! Integration tests for the multi-minded (XOR-bid) extension against the
//! single-minded mechanism on generated workloads.

use dp_mcs::auction::xor::{XorBid, XorDpHsrcAuction, XorInstance};
use dp_mcs::auction::{ScheduleEngine, SelectionRule};
use dp_mcs::num::rng;
use dp_mcs::Mechanism;
use dp_mcs::{Bid, Bundle, Price, Setting, TaskId, WorkerId};

/// Converts a generated single-minded instance into the XOR form, with
/// every worker additionally offered a half-bundle option at a
/// proportionally lower price.
fn with_package_options(instance: &dp_mcs::Instance) -> XorInstance {
    with_package_options_grid(instance, instance.price_grid().clone())
}

fn with_package_options_grid(instance: &dp_mcs::Instance, grid: dp_mcs::PriceGrid) -> XorInstance {
    let bids: Vec<XorBid> = instance
        .bids()
        .iter()
        .map(|(_, bid)| {
            let full = bid.clone();
            let tasks: Vec<TaskId> = bid.bundle().iter().collect();
            let half: Vec<TaskId> = tasks[..tasks.len().div_ceil(2)].to_vec();
            let half_price = Price::from_f64((bid.price().as_f64() * 0.6).max(10.0));
            let mut options = vec![full];
            if !half.is_empty() && half.len() < tasks.len() {
                options.push(Bid::new(Bundle::new(half), half_price));
            }
            XorBid::new(options).expect("non-empty options")
        })
        .collect();
    XorInstance::new(
        instance.num_tasks(),
        bids,
        instance.skills().clone(),
        instance.deltas().to_vec(),
        grid,
        instance.cmin(),
        instance.cmax(),
    )
    .expect("converted instance is valid")
}

#[test]
fn single_option_xor_matches_single_minded_winners() {
    let g = Setting::one(80).scaled_down(4).generate(71);
    let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
        .build(&g.instance)
        .unwrap();
    let xor = XorInstance::new(
        g.instance.num_tasks(),
        g.instance
            .bids()
            .iter()
            .map(|(_, b)| XorBid::single(b.clone()))
            .collect(),
        g.instance.skills().clone(),
        g.instance.deltas().to_vec(),
        g.instance.price_grid().clone(),
        g.instance.cmin(),
        g.instance.cmax(),
    )
    .unwrap();
    let auction = XorDpHsrcAuction::new(0.1).unwrap();
    let mut r = rng::seeded(4);
    for _ in 0..20 {
        let out = auction.run(&xor, &mut r).unwrap();
        // The awarded worker set at the sampled price equals the
        // single-minded schedule's winner set at that price.
        let idx = schedule
            .prices()
            .iter()
            .position(|&p| p == out.price)
            .expect("same feasible support");
        let workers: Vec<WorkerId> = out.awards.iter().map(|a| a.worker).collect();
        assert_eq!(workers, schedule.winners(idx));
    }
}

#[test]
fn package_options_keep_single_minded_prices_feasible() {
    // Every original option still exists, so any price feasible for the
    // single-minded profile stays feasible for the XOR profile: pin the
    // grid to the single-minded support's cheapest price and the XOR
    // auction must still clear.
    let g = Setting::one(80).scaled_down(4).generate(72);
    let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
        .build(&g.instance)
        .unwrap();
    let first = *schedule.prices().first().unwrap();
    let narrow = dp_mcs::PriceGrid::new(first, first, Price::from_f64(0.1)).unwrap();
    let xor = with_package_options_grid(&g.instance, narrow);
    let auction = XorDpHsrcAuction::new(0.1).unwrap();
    let mut r = rng::seeded(5);
    let out = auction.run(&xor, &mut r).unwrap();
    assert_eq!(out.price, first);
    // Sampled outcomes stay valid.
    for a in &out.awards {
        let opt = &xor.bids()[a.worker.index()].options()[a.option];
        assert!(opt.price() <= out.price);
    }
}

#[test]
fn mixed_single_and_multi_minded_workers_coexist() {
    let g = Setting::one(80).scaled_down(4).generate(73);
    let xor = with_package_options(&g.instance);
    // At least one worker should actually have two options.
    assert!(xor.bids().iter().any(|b| b.options().len() == 2));
    assert!(xor.bids().iter().all(|b| !b.options().is_empty()));
    let auction = XorDpHsrcAuction::new(0.5).unwrap();
    let mut r = rng::seeded(6);
    let out = auction.run(&xor, &mut r).unwrap();
    assert!(!out.awards.is_empty());
    assert_eq!(out.total_payment(), out.price * out.awards.len());
}
