//! Property-based invariants of the full mechanism stack on randomly
//! generated (but always coverable) instances.

use proptest::prelude::*;

use dp_mcs::auction::{privacy, CriticalPaymentAuction, ScheduleEngine, SelectionRule};
use dp_mcs::num::rng;
use dp_mcs::sim::neighbour::{random_worker, resample_neighbour};
use dp_mcs::{DpHsrcAuction, ScheduledMechanism, Setting};

fn small_setting(workers: usize) -> Setting {
    // Scale the full Table-I proportions down 4x so the δ retuning in
    // `scaled_down` matches the worker count.
    Setting::one(workers.max(8) * 4).scaled_down(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The schedule's structural invariants hold for any generated
    /// instance: ascending in-grid prices, winners bid at most the price,
    /// every winner set covers, and compression never stores more sets
    /// than prices.
    #[test]
    fn schedule_invariants(seed in 0u64..500, workers in 8usize..28) {
        let s = small_setting(workers);
        let g = s.generate(seed);
        let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build(&g.instance)
            .expect("generated instances are coverable");
        let cover = g.instance.coverage_problem();
        prop_assert!(!schedule.is_empty());
        prop_assert!(schedule.num_distinct_sets() <= schedule.len());
        let mut prev = None;
        for i in 0..schedule.len() {
            let price = schedule.price(i);
            prop_assert!(g.instance.price_grid().contains(price));
            if let Some(p) = prev {
                prop_assert!(price > p, "prices not ascending");
            }
            prev = Some(price);
            let winners = schedule.winners(i);
            prop_assert!(!winners.is_empty());
            prop_assert!(cover.is_satisfied_by(winners.iter().copied()));
            for &w in winners {
                prop_assert!(g.instance.bids().bid(w).price() <= price);
            }
            // Winner lists are sorted and deduplicated.
            prop_assert!(winners.windows(2).all(|p| p[0] < p[1]));
        }
    }

    /// The exponential-mechanism PMF is a valid distribution whose
    /// probabilities order inversely to total payments.
    #[test]
    fn pmf_invariants(seed in 0u64..500, eps_exp in -2i32..3) {
        let eps = 10f64.powi(eps_exp);
        let g = small_setting(16).generate(seed);
        let pmf = DpHsrcAuction::new(eps).unwrap().pmf(&g.instance).expect("coverable");
        let total: f64 = pmf.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let payments = pmf.schedule().total_payments();
        for i in 0..payments.len() {
            for j in 0..payments.len() {
                if payments[i] < payments[j] {
                    prop_assert!(pmf.probs()[i] >= pmf.probs()[j] - 1e-12);
                } else if payments[i] == payments[j] {
                    prop_assert!((pmf.probs()[i] - pmf.probs()[j]).abs() < 1e-12);
                }
            }
        }
    }

    /// Differential privacy holds on random neighbours at random ε.
    #[test]
    fn dp_holds_on_random_neighbours(seed in 0u64..300, eps_tenths in 1u32..30) {
        let eps = eps_tenths as f64 / 10.0;
        let s = small_setting(16);
        let g = s.generate(seed);
        let auction = DpHsrcAuction::new(eps).unwrap();
        let base = auction.pmf(&g.instance).expect("coverable");
        let mut r = rng::derived(seed, 77);
        let w = random_worker(&g.instance, &mut r);
        let nb = resample_neighbour(&g.instance, &s, w, &mut r).expect("valid worker");
        if let Ok(nb_pmf) = auction.pmf(&nb) {
            if let Some(ratio) = privacy::dp_log_ratio(&base, &nb_pmf) {
                prop_assert!(ratio <= eps + 1e-9, "ratio {ratio} > eps {eps}");
            }
        }
    }

    /// The greedy rule never pays more in expectation than the static
    /// baseline at equal ε, and the critical-payment comparator is
    /// individually rational with payments at least the bids.
    #[test]
    fn mechanism_comparisons(seed in 0u64..300) {
        let s = small_setting(20);
        let g = s.generate(seed);
        let dp = DpHsrcAuction::new(0.1).unwrap().pmf(&g.instance).expect("coverable");
        let base = dp_mcs::BaselineAuction::new(0.1)
            .unwrap()
            .pmf(&g.instance)
            .expect("coverable");
        prop_assert!(
            dp.expected_total_payment() <= base.expected_total_payment() + 1e-9
        );

        let crit = CriticalPaymentAuction.run(&g.instance).expect("coverable");
        let cover = g.instance.coverage_problem();
        prop_assert!(cover.is_satisfied_by(crit.winners().iter().copied()));
        for &w in crit.winners() {
            prop_assert!(crit.payment_to(w) >= g.instance.bids().bid(w).price());
        }
    }

    /// Myerson properties of the critical-payment comparator on generated
    /// instances: a winner who shades her bid lower still wins at the same
    /// payment; bidding above her critical value loses.
    #[test]
    fn critical_payments_are_myerson(seed in 0u64..120) {
        let s = small_setting(14);
        let g = s.generate(seed);
        let Ok(base) = CriticalPaymentAuction.run(&g.instance) else {
            return Ok(()); // uncoverable draws are rejected upstream anyway
        };
        let Some(&w) = base.winners().first() else { return Ok(()) };
        let pay = base.payment_to(w);
        // Shade to the floor: still wins, same payment.
        let floor = g.instance.cmin();
        let shaded = g
            .instance
            .with_bid(w, g.instance.bids().bid(w).with_price(floor))
            .expect("floor bid is valid");
        let after = CriticalPaymentAuction.run(&shaded).expect("still coverable");
        prop_assert!(after.winners().contains(&w));
        prop_assert_eq!(after.payment_to(w), pay);
        // Overbid past the critical value: loses (when the overbid is
        // representable inside the cost range).
        let over = pay + dp_mcs::Price::from_f64(0.1);
        if over <= g.instance.cmax() && pay < g.instance.cmax() {
            let raised = g
                .instance
                .with_bid(w, g.instance.bids().bid(w).with_price(over))
                .expect("raised bid is valid");
            if let Ok(after) = CriticalPaymentAuction.run(&raised) {
                prop_assert!(
                    !after.winners().contains(&w),
                    "worker still wins above her critical value"
                );
            }
        }
    }

    /// Sampling from the PMF always returns a feasible in-support outcome
    /// and never pays a winner below her bid.
    #[test]
    fn sampled_outcomes_are_consistent(seed in 0u64..300) {
        let g = small_setting(12).generate(seed);
        let pmf = DpHsrcAuction::new(0.5).unwrap().pmf(&g.instance).expect("coverable");
        let mut r = rng::derived(seed, 5);
        for _ in 0..16 {
            let o = pmf.sample(&mut r);
            prop_assert!(pmf.schedule().prices().contains(&o.price()));
            for &w in o.winners() {
                prop_assert!(g.instance.bids().bid(w).price() <= o.price());
            }
        }
    }
}
