//! End-to-end integration: the full platform loop across crates
//! (generation → auction → labelling → aggregation → payment).

use dp_mcs::agg::lemma1_threshold;
use dp_mcs::num::rng;
use dp_mcs::sim::platform::{empirical_task_error, run_round};
use dp_mcs::{DpHsrcAuction, ScheduledMechanism, Setting, TaskId, WorkerId};

fn small_setting() -> Setting {
    Setting::one(80).scaled_down(4)
}

#[test]
fn full_round_is_consistent() {
    let g = small_setting().generate(100);
    let mut r = rng::seeded(1);
    let report = run_round(
        &g.instance,
        &g.types,
        &DpHsrcAuction::new(0.1).unwrap(),
        &mut r,
    )
    .unwrap();

    // The winner set satisfies every error-bound constraint.
    let cover = g.instance.coverage_problem();
    assert!(cover.is_satisfied_by(report.outcome.winners().iter().copied()));

    // Payments: winners get the price, losers get zero; totals match.
    let profile = report.outcome.payment_profile(g.instance.num_workers());
    let sum: dp_mcs::Price = profile.iter().copied().sum();
    assert_eq!(sum, report.total_paid);

    // Individual rationality under truthful types.
    assert!(report.outcome.is_individually_rational(&g.types));

    // Every task received at least one label and an estimate.
    for j in 0..g.instance.num_tasks() {
        assert!(!report.labels.for_task(TaskId(j as u32)).is_empty());
        assert!(report.estimates[j].is_some());
    }
}

#[test]
fn aggregation_error_respects_delta_bounds() {
    let g = small_setting().generate(101);
    let mut r = rng::seeded(2);
    let errors = empirical_task_error(
        &g.instance,
        &g.types,
        &DpHsrcAuction::new(0.1).unwrap(),
        400,
        &mut r,
    )
    .unwrap();
    for (j, (&err, &delta)) in errors.iter().zip(g.instance.deltas()).enumerate() {
        assert!(
            err <= delta + 0.07,
            "task {j}: empirical error {err} vs bound {delta}"
        );
    }
}

#[test]
fn winner_coverage_meets_lemma1_threshold_per_task() {
    let g = small_setting().generate(102);
    let auction = DpHsrcAuction::new(0.1).unwrap();
    let pmf = auction.pmf(&g.instance).unwrap();
    let cover = g.instance.coverage_problem();
    // At every feasible price, every task's achieved coverage clears its
    // Lemma 1 threshold.
    for i in 0..pmf.schedule().len() {
        let winners = pmf.schedule().winners(i);
        for j in 0..g.instance.num_tasks() {
            let t = TaskId(j as u32);
            let achieved: f64 = winners.iter().map(|&w| cover.q(w, t)).sum();
            let needed = lemma1_threshold(g.instance.deltas()[j]);
            assert!(
                achieved >= needed - 1e-9,
                "price {}, task {j}: {achieved} < {needed}",
                pmf.schedule().price(i)
            );
        }
    }
}

#[test]
fn winners_only_execute_bundles_they_bid() {
    let g = small_setting().generate(103);
    let mut r = rng::seeded(3);
    let report = run_round(
        &g.instance,
        &g.types,
        &DpHsrcAuction::new(0.1).unwrap(),
        &mut r,
    )
    .unwrap();
    for obs in report.labels.iter() {
        assert!(
            report.outcome.is_winner(obs.worker),
            "loser reported a label"
        );
        assert!(
            g.instance
                .bids()
                .bid(obs.worker)
                .bundle()
                .contains(obs.task),
            "{} labelled a task outside her bundle",
            obs.worker
        );
    }
    // And every winner labelled every task in her bundle exactly once.
    for &w in report.outcome.winners() {
        let bundle = g.instance.bids().bid(w).bundle();
        let count = report.labels.iter().filter(|o| o.worker == w).count();
        assert_eq!(count, bundle.len());
    }
    let _ = WorkerId(0); // silence unused-import lint in some cfgs
}

#[test]
fn repeated_rounds_are_reproducible() {
    let g = small_setting().generate(104);
    let a = run_round(
        &g.instance,
        &g.types,
        &DpHsrcAuction::new(0.1).unwrap(),
        &mut rng::seeded(9),
    )
    .unwrap();
    let b = run_round(
        &g.instance,
        &g.types,
        &DpHsrcAuction::new(0.1).unwrap(),
        &mut rng::seeded(9),
    )
    .unwrap();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.estimates, b.estimates);
}
